/root/repo/target/debug/examples/quickstart-5ff722c3a4d08337.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5ff722c3a4d08337: examples/quickstart.rs

examples/quickstart.rs:

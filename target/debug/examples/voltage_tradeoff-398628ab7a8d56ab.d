/root/repo/target/debug/examples/voltage_tradeoff-398628ab7a8d56ab.d: examples/voltage_tradeoff.rs

/root/repo/target/debug/examples/voltage_tradeoff-398628ab7a8d56ab: examples/voltage_tradeoff.rs

examples/voltage_tradeoff.rs:

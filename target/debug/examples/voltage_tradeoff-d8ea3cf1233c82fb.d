/root/repo/target/debug/examples/voltage_tradeoff-d8ea3cf1233c82fb.d: examples/voltage_tradeoff.rs Cargo.toml

/root/repo/target/debug/examples/libvoltage_tradeoff-d8ea3cf1233c82fb.rmeta: examples/voltage_tradeoff.rs Cargo.toml

examples/voltage_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

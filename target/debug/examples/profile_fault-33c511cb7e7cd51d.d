/root/repo/target/debug/examples/profile_fault-33c511cb7e7cd51d.d: crates/volt/examples/profile_fault.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_fault-33c511cb7e7cd51d.rmeta: crates/volt/examples/profile_fault.rs Cargo.toml

crates/volt/examples/profile_fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

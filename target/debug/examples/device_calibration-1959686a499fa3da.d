/root/repo/target/debug/examples/device_calibration-1959686a499fa3da.d: examples/device_calibration.rs Cargo.toml

/root/repo/target/debug/examples/libdevice_calibration-1959686a499fa3da.rmeta: examples/device_calibration.rs Cargo.toml

examples/device_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/evasion_campaign-0649e250de119527.d: examples/evasion_campaign.rs

/root/repo/target/debug/examples/evasion_campaign-0649e250de119527: examples/evasion_campaign.rs

examples/evasion_campaign.rs:

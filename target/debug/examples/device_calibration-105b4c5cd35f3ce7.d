/root/repo/target/debug/examples/device_calibration-105b4c5cd35f3ce7.d: examples/device_calibration.rs

/root/repo/target/debug/examples/device_calibration-105b4c5cd35f3ce7: examples/device_calibration.rs

examples/device_calibration.rs:

/root/repo/target/debug/examples/profile_fault-f5ea8ccd1daa171c.d: crates/volt/examples/profile_fault.rs

/root/repo/target/debug/examples/profile_fault-f5ea8ccd1daa171c: crates/volt/examples/profile_fault.rs

crates/volt/examples/profile_fault.rs:

/root/repo/target/debug/examples/tee_deployment-d5b8cb9ea9ac123d.d: examples/tee_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libtee_deployment-d5b8cb9ea9ac123d.rmeta: examples/tee_deployment.rs Cargo.toml

examples/tee_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

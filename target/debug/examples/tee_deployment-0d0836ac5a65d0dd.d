/root/repo/target/debug/examples/tee_deployment-0d0836ac5a65d0dd.d: examples/tee_deployment.rs

/root/repo/target/debug/examples/tee_deployment-0d0836ac5a65d0dd: examples/tee_deployment.rs

examples/tee_deployment.rs:

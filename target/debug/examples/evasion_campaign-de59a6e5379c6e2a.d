/root/repo/target/debug/examples/evasion_campaign-de59a6e5379c6e2a.d: examples/evasion_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libevasion_campaign-de59a6e5379c6e2a.rmeta: examples/evasion_campaign.rs Cargo.toml

examples/evasion_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/stage_profile-c9f39e851d209ae0.d: crates/volt/examples/stage_profile.rs

/root/repo/target/debug/examples/stage_profile-c9f39e851d209ae0: crates/volt/examples/stage_profile.rs

crates/volt/examples/stage_profile.rs:

/root/repo/target/debug/deps/serde-ceed13163f9325fe.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ceed13163f9325fe.so: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_adaptive-cdc2594bc2f5e4bf.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/debug/deps/ablation_adaptive-cdc2594bc2f5e4bf: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:

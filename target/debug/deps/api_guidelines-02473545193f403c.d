/root/repo/target/debug/deps/api_guidelines-02473545193f403c.d: tests/api_guidelines.rs Cargo.toml

/root/repo/target/debug/deps/libapi_guidelines-02473545193f403c.rmeta: tests/api_guidelines.rs Cargo.toml

tests/api_guidelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table_memory-2f0421346dfc4a01.d: crates/bench/src/bin/table_memory.rs Cargo.toml

/root/repo/target/debug/deps/libtable_memory-2f0421346dfc4a01.rmeta: crates/bench/src/bin/table_memory.rs Cargo.toml

crates/bench/src/bin/table_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

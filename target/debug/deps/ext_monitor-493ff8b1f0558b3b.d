/root/repo/target/debug/deps/ext_monitor-493ff8b1f0558b3b.d: crates/bench/src/bin/ext_monitor.rs

/root/repo/target/debug/deps/ext_monitor-493ff8b1f0558b3b: crates/bench/src/bin/ext_monitor.rs

crates/bench/src/bin/ext_monitor.rs:

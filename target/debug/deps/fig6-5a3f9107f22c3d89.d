/root/repo/target/debug/deps/fig6-5a3f9107f22c3d89.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-5a3f9107f22c3d89: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:

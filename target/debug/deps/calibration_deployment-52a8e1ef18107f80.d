/root/repo/target/debug/deps/calibration_deployment-52a8e1ef18107f80.d: tests/calibration_deployment.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration_deployment-52a8e1ef18107f80.rmeta: tests/calibration_deployment.rs Cargo.toml

tests/calibration_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

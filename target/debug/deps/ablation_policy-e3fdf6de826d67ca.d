/root/repo/target/debug/deps/ablation_policy-e3fdf6de826d67ca.d: crates/bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-e3fdf6de826d67ca: crates/bench/src/bin/ablation_policy.rs

crates/bench/src/bin/ablation_policy.rs:

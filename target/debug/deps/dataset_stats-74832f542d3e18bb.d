/root/repo/target/debug/deps/dataset_stats-74832f542d3e18bb.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/debug/deps/dataset_stats-74832f542d3e18bb: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:

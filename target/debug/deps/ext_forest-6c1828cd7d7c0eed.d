/root/repo/target/debug/deps/ext_forest-6c1828cd7d7c0eed.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/debug/deps/libext_forest-6c1828cd7d7c0eed.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

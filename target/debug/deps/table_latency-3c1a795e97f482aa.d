/root/repo/target/debug/deps/table_latency-3c1a795e97f482aa.d: crates/bench/src/bin/table_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable_latency-3c1a795e97f482aa.rmeta: crates/bench/src/bin/table_latency.rs Cargo.toml

crates/bench/src/bin/table_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_throughput-d7abf222b88d2bd5.d: crates/bench/src/bin/bench_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbench_throughput-d7abf222b88d2bd5.rmeta: crates/bench/src/bin/bench_throughput.rs Cargo.toml

crates/bench/src/bin/bench_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/shmd_power-1f8a45dd02df9435.d: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/debug/deps/shmd_power-1f8a45dd02df9435: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

crates/power/src/lib.rs:
crates/power/src/battery.rs:
crates/power/src/cmos.rs:
crates/power/src/dvfs.rs:
crates/power/src/latency.rs:
crates/power/src/memory.rs:
crates/power/src/rng_cost.rs:

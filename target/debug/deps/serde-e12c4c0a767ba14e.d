/root/repo/target/debug/deps/serde-e12c4c0a767ba14e.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e12c4c0a767ba14e.so: crates/serde/src/lib.rs

crates/serde/src/lib.rs:

/root/repo/target/debug/deps/stochastic_hmds-e7b37436aeccaaad.d: src/lib.rs

/root/repo/target/debug/deps/libstochastic_hmds-e7b37436aeccaaad.rlib: src/lib.rs

/root/repo/target/debug/deps/libstochastic_hmds-e7b37436aeccaaad.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/table_latency-4f8e0cb5919b4c3b.d: crates/bench/src/bin/table_latency.rs

/root/repo/target/debug/deps/table_latency-4f8e0cb5919b4c3b: crates/bench/src/bin/table_latency.rs

crates/bench/src/bin/table_latency.rs:

/root/repo/target/debug/deps/char_undervolt-1ad42c208dd44b4e.d: crates/bench/src/bin/char_undervolt.rs Cargo.toml

/root/repo/target/debug/deps/libchar_undervolt-1ad42c208dd44b4e.rmeta: crates/bench/src/bin/char_undervolt.rs Cargo.toml

crates/bench/src/bin/char_undervolt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig3-eeb15c1ca235af80.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-eeb15c1ca235af80: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:

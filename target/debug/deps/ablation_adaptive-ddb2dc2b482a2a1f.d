/root/repo/target/debug/deps/ablation_adaptive-ddb2dc2b482a2a1f.d: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablation_adaptive-ddb2dc2b482a2a1f.rmeta: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

crates/bench/src/bin/ablation_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig2a-532cc636d5a59612.d: crates/bench/src/bin/fig2a.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a-532cc636d5a59612.rmeta: crates/bench/src/bin/fig2a.rs Cargo.toml

crates/bench/src/bin/fig2a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ext_validated-7ea5646eba21d820.d: crates/bench/src/bin/ext_validated.rs

/root/repo/target/debug/deps/ext_validated-7ea5646eba21d820: crates/bench/src/bin/ext_validated.rs

crates/bench/src/bin/ext_validated.rs:

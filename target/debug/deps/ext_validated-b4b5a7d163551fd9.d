/root/repo/target/debug/deps/ext_validated-b4b5a7d163551fd9.d: crates/bench/src/bin/ext_validated.rs

/root/repo/target/debug/deps/ext_validated-b4b5a7d163551fd9: crates/bench/src/bin/ext_validated.rs

crates/bench/src/bin/ext_validated.rs:

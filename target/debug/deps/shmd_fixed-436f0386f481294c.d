/root/repo/target/debug/deps/shmd_fixed-436f0386f481294c.d: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/libshmd_fixed-436f0386f481294c.rlib: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/libshmd_fixed-436f0386f481294c.rmeta: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:

/root/repo/target/debug/deps/shmd_volt-da647a3bfec7f2a8.d: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

/root/repo/target/debug/deps/shmd_volt-da647a3bfec7f2a8: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

crates/volt/src/lib.rs:
crates/volt/src/calibration.rs:
crates/volt/src/characterize.rs:
crates/volt/src/controller.rs:
crates/volt/src/delay.rs:
crates/volt/src/entropy.rs:
crates/volt/src/fault.rs:
crates/volt/src/math.rs:
crates/volt/src/multiplier.rs:
crates/volt/src/voltage.rs:

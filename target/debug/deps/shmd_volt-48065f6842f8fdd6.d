/root/repo/target/debug/deps/shmd_volt-48065f6842f8fdd6.d: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

/root/repo/target/debug/deps/libshmd_volt-48065f6842f8fdd6.rlib: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

/root/repo/target/debug/deps/libshmd_volt-48065f6842f8fdd6.rmeta: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

crates/volt/src/lib.rs:
crates/volt/src/calibration.rs:
crates/volt/src/characterize.rs:
crates/volt/src/controller.rs:
crates/volt/src/delay.rs:
crates/volt/src/entropy.rs:
crates/volt/src/fault.rs:
crates/volt/src/math.rs:
crates/volt/src/multiplier.rs:
crates/volt/src/voltage.rs:

/root/repo/target/debug/deps/stochastic_hmd-c01c7c5ff748b76e.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs Cargo.toml

/root/repo/target/debug/deps/libstochastic_hmd-c01c7c5ff748b76e.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/deploy.rs:
crates/core/src/detector.rs:
crates/core/src/enclave.rs:
crates/core/src/exec.rs:
crates/core/src/explore.rs:
crates/core/src/monitor.rs:
crates/core/src/rhmd.rs:
crates/core/src/roc.rs:
crates/core/src/stochastic.rs:
crates/core/src/train.rs:
crates/core/src/xval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/shmd_power-1049d4451000d722.d: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_power-1049d4451000d722.rmeta: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/battery.rs:
crates/power/src/cmos.rs:
crates/power/src/dvfs.rs:
crates/power/src/latency.rs:
crates/power/src/memory.rs:
crates/power/src/rng_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

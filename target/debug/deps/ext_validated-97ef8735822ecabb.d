/root/repo/target/debug/deps/ext_validated-97ef8735822ecabb.d: crates/bench/src/bin/ext_validated.rs Cargo.toml

/root/repo/target/debug/deps/libext_validated-97ef8735822ecabb.rmeta: crates/bench/src/bin/ext_validated.rs Cargo.toml

crates/bench/src/bin/ext_validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-edb971087ad29b59.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-edb971087ad29b59.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-edb971087ad29b59.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:

/root/repo/target/debug/deps/hmd_bench-2b42f204825c5523.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libhmd_bench-2b42f204825c5523.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/shmd_fixed-7a35663313eed077.d: crates/fixed/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_fixed-7a35663313eed077.rmeta: crates/fixed/src/lib.rs Cargo.toml

crates/fixed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/determinism-a4829125b1a65216.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a4829125b1a65216: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/debug/deps/ablation_adaptive-a52dd745353b41c6.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/debug/deps/ablation_adaptive-a52dd745353b41c6: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:

/root/repo/target/debug/deps/model_persistence-6a0f162117c2b648.d: tests/model_persistence.rs

/root/repo/target/debug/deps/model_persistence-6a0f162117c2b648: tests/model_persistence.rs

tests/model_persistence.rs:

/root/repo/target/debug/deps/ext_forest-805357e2ef9d3475.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-805357e2ef9d3475: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:

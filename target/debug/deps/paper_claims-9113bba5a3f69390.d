/root/repo/target/debug/deps/paper_claims-9113bba5a3f69390.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-9113bba5a3f69390: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/fig8-2faed9158474645d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-2faed9158474645d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

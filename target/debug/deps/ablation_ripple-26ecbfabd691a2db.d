/root/repo/target/debug/deps/ablation_ripple-26ecbfabd691a2db.d: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ripple-26ecbfabd691a2db.rmeta: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

crates/bench/src/bin/ablation_ripple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_adaptive-456fef8487609c14.d: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablation_adaptive-456fef8487609c14.rmeta: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

crates/bench/src/bin/ablation_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

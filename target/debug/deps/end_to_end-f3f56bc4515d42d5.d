/root/repo/target/debug/deps/end_to_end-f3f56bc4515d42d5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f3f56bc4515d42d5: tests/end_to_end.rs

tests/end_to_end.rs:

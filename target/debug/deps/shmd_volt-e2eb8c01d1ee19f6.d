/root/repo/target/debug/deps/shmd_volt-e2eb8c01d1ee19f6.d: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_volt-e2eb8c01d1ee19f6.rmeta: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs Cargo.toml

crates/volt/src/lib.rs:
crates/volt/src/calibration.rs:
crates/volt/src/characterize.rs:
crates/volt/src/controller.rs:
crates/volt/src/delay.rs:
crates/volt/src/entropy.rs:
crates/volt/src/fault.rs:
crates/volt/src/math.rs:
crates/volt/src/multiplier.rs:
crates/volt/src/voltage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

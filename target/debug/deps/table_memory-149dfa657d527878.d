/root/repo/target/debug/deps/table_memory-149dfa657d527878.d: crates/bench/src/bin/table_memory.rs

/root/repo/target/debug/deps/table_memory-149dfa657d527878: crates/bench/src/bin/table_memory.rs

crates/bench/src/bin/table_memory.rs:

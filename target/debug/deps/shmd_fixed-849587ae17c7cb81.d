/root/repo/target/debug/deps/shmd_fixed-849587ae17c7cb81.d: crates/fixed/src/lib.rs

/root/repo/target/debug/deps/shmd_fixed-849587ae17c7cb81: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:

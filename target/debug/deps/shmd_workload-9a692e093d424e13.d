/root/repo/target/debug/deps/shmd_workload-9a692e093d424e13.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_workload-9a692e093d424e13.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/dataset.rs:
crates/workload/src/export.rs:
crates/workload/src/families.rs:
crates/workload/src/features.rs:
crates/workload/src/isa.rs:
crates/workload/src/program.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table_latency-077b12a11dea78c1.d: crates/bench/src/bin/table_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable_latency-077b12a11dea78c1.rmeta: crates/bench/src/bin/table_latency.rs Cargo.toml

crates/bench/src/bin/table_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

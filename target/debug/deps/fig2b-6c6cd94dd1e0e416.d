/root/repo/target/debug/deps/fig2b-6c6cd94dd1e0e416.d: crates/bench/src/bin/fig2b.rs Cargo.toml

/root/repo/target/debug/deps/libfig2b-6c6cd94dd1e0e416.rmeta: crates/bench/src/bin/fig2b.rs Cargo.toml

crates/bench/src/bin/fig2b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/dataset_stats-4346be307656efa7.d: crates/bench/src/bin/dataset_stats.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_stats-4346be307656efa7.rmeta: crates/bench/src/bin/dataset_stats.rs Cargo.toml

crates/bench/src/bin/dataset_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig3-ec34c0fd582d1927.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-ec34c0fd582d1927.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench_throughput-b82308ee0ec1a882.d: crates/bench/src/bin/bench_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbench_throughput-b82308ee0ec1a882.rmeta: crates/bench/src/bin/bench_throughput.rs Cargo.toml

crates/bench/src/bin/bench_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

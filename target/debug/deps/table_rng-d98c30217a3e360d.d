/root/repo/target/debug/deps/table_rng-d98c30217a3e360d.d: crates/bench/src/bin/table_rng.rs

/root/repo/target/debug/deps/table_rng-d98c30217a3e360d: crates/bench/src/bin/table_rng.rs

crates/bench/src/bin/table_rng.rs:

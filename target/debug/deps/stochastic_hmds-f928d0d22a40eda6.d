/root/repo/target/debug/deps/stochastic_hmds-f928d0d22a40eda6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstochastic_hmds-f928d0d22a40eda6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

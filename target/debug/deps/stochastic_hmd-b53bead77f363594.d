/root/repo/target/debug/deps/stochastic_hmd-b53bead77f363594.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs

/root/repo/target/debug/deps/stochastic_hmd-b53bead77f363594: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/deploy.rs:
crates/core/src/detector.rs:
crates/core/src/enclave.rs:
crates/core/src/exec.rs:
crates/core/src/explore.rs:
crates/core/src/monitor.rs:
crates/core/src/rhmd.rs:
crates/core/src/roc.rs:
crates/core/src/stochastic.rs:
crates/core/src/train.rs:
crates/core/src/xval.rs:

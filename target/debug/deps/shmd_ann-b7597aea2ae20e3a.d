/root/repo/target/debug/deps/shmd_ann-b7597aea2ae20e3a.d: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_ann-b7597aea2ae20e3a.rmeta: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs Cargo.toml

crates/ann/src/lib.rs:
crates/ann/src/activation.rs:
crates/ann/src/builder.rs:
crates/ann/src/io.rs:
crates/ann/src/layer.rs:
crates/ann/src/mac.rs:
crates/ann/src/network.rs:
crates/ann/src/train/mod.rs:
crates/ann/src/train/data.rs:
crates/ann/src/train/quantaware.rs:
crates/ann/src/train/rprop.rs:
crates/ann/src/train/sgd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/shmd_attack-671fc6f170d78653.d: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_attack-671fc6f170d78653.rmeta: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/adaptive.rs:
crates/attack/src/campaign.rs:
crates/attack/src/evasion.rs:
crates/attack/src/gradient.rs:
crates/attack/src/reverse.rs:
crates/attack/src/transfer.rs:
crates/attack/src/validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

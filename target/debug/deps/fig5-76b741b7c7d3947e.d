/root/repo/target/debug/deps/fig5-76b741b7c7d3947e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-76b741b7c7d3947e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

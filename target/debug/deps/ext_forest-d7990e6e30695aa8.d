/root/repo/target/debug/deps/ext_forest-d7990e6e30695aa8.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/debug/deps/libext_forest-d7990e6e30695aa8.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ext_power_modes-081ab484b0aec884.d: crates/bench/src/bin/ext_power_modes.rs

/root/repo/target/debug/deps/ext_power_modes-081ab484b0aec884: crates/bench/src/bin/ext_power_modes.rs

crates/bench/src/bin/ext_power_modes.rs:

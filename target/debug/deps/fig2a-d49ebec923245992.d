/root/repo/target/debug/deps/fig2a-d49ebec923245992.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/debug/deps/fig2a-d49ebec923245992: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:

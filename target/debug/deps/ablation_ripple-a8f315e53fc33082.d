/root/repo/target/debug/deps/ablation_ripple-a8f315e53fc33082.d: crates/bench/src/bin/ablation_ripple.rs

/root/repo/target/debug/deps/ablation_ripple-a8f315e53fc33082: crates/bench/src/bin/ablation_ripple.rs

crates/bench/src/bin/ablation_ripple.rs:

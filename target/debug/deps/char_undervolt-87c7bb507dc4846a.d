/root/repo/target/debug/deps/char_undervolt-87c7bb507dc4846a.d: crates/bench/src/bin/char_undervolt.rs

/root/repo/target/debug/deps/char_undervolt-87c7bb507dc4846a: crates/bench/src/bin/char_undervolt.rs

crates/bench/src/bin/char_undervolt.rs:

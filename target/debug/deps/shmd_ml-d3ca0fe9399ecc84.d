/root/repo/target/debug/deps/shmd_ml-d3ca0fe9399ecc84.d: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_ml-d3ca0fe9399ecc84.rmeta: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/forest.rs:
crates/ml/src/logistic.rs:
crates/ml/src/metrics.rs:
crates/ml/src/scaler.rs:
crates/ml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

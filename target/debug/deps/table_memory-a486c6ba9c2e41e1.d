/root/repo/target/debug/deps/table_memory-a486c6ba9c2e41e1.d: crates/bench/src/bin/table_memory.rs

/root/repo/target/debug/deps/table_memory-a486c6ba9c2e41e1: crates/bench/src/bin/table_memory.rs

crates/bench/src/bin/table_memory.rs:

/root/repo/target/debug/deps/char_undervolt-460362e406156129.d: crates/bench/src/bin/char_undervolt.rs

/root/repo/target/debug/deps/char_undervolt-460362e406156129: crates/bench/src/bin/char_undervolt.rs

crates/bench/src/bin/char_undervolt.rs:

/root/repo/target/debug/deps/table_latency-4fa468d53b050883.d: crates/bench/src/bin/table_latency.rs

/root/repo/target/debug/deps/table_latency-4fa468d53b050883: crates/bench/src/bin/table_latency.rs

crates/bench/src/bin/table_latency.rs:

/root/repo/target/debug/deps/table_rng-421a5bfe4975a89f.d: crates/bench/src/bin/table_rng.rs

/root/repo/target/debug/deps/table_rng-421a5bfe4975a89f: crates/bench/src/bin/table_rng.rs

crates/bench/src/bin/table_rng.rs:

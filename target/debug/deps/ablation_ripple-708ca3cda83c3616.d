/root/repo/target/debug/deps/ablation_ripple-708ca3cda83c3616.d: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ripple-708ca3cda83c3616.rmeta: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

crates/bench/src/bin/ablation_ripple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

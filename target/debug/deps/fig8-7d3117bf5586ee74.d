/root/repo/target/debug/deps/fig8-7d3117bf5586ee74.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7d3117bf5586ee74: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

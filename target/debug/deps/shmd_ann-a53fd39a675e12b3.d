/root/repo/target/debug/deps/shmd_ann-a53fd39a675e12b3.d: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

/root/repo/target/debug/deps/shmd_ann-a53fd39a675e12b3: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

crates/ann/src/lib.rs:
crates/ann/src/activation.rs:
crates/ann/src/builder.rs:
crates/ann/src/io.rs:
crates/ann/src/layer.rs:
crates/ann/src/mac.rs:
crates/ann/src/network.rs:
crates/ann/src/train/mod.rs:
crates/ann/src/train/data.rs:
crates/ann/src/train/quantaware.rs:
crates/ann/src/train/rprop.rs:
crates/ann/src/train/sgd.rs:

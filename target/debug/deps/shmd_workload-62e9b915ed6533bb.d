/root/repo/target/debug/deps/shmd_workload-62e9b915ed6533bb.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/shmd_workload-62e9b915ed6533bb: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/dataset.rs:
crates/workload/src/export.rs:
crates/workload/src/families.rs:
crates/workload/src/features.rs:
crates/workload/src/isa.rs:
crates/workload/src/program.rs:
crates/workload/src/trace.rs:

/root/repo/target/debug/deps/ext_monitor-f709bce1f042ef0b.d: crates/bench/src/bin/ext_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libext_monitor-f709bce1f042ef0b.rmeta: crates/bench/src/bin/ext_monitor.rs Cargo.toml

crates/bench/src/bin/ext_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/inference-e4a0741210c6d0c7.d: crates/bench/benches/inference.rs Cargo.toml

/root/repo/target/debug/deps/libinference-e4a0741210c6d0c7.rmeta: crates/bench/benches/inference.rs Cargo.toml

crates/bench/benches/inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

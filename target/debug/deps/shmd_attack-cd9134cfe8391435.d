/root/repo/target/debug/deps/shmd_attack-cd9134cfe8391435.d: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

/root/repo/target/debug/deps/shmd_attack-cd9134cfe8391435: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

crates/attack/src/lib.rs:
crates/attack/src/adaptive.rs:
crates/attack/src/campaign.rs:
crates/attack/src/evasion.rs:
crates/attack/src/gradient.rs:
crates/attack/src/reverse.rs:
crates/attack/src/transfer.rs:
crates/attack/src/validated.rs:

/root/repo/target/debug/deps/ablation_ripple-a89ce3f459ae6a96.d: crates/bench/src/bin/ablation_ripple.rs

/root/repo/target/debug/deps/ablation_ripple-a89ce3f459ae6a96: crates/bench/src/bin/ablation_ripple.rs

crates/bench/src/bin/ablation_ripple.rs:

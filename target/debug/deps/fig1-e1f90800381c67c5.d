/root/repo/target/debug/deps/fig1-e1f90800381c67c5.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-e1f90800381c67c5: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:

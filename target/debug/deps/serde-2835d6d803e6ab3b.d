/root/repo/target/debug/deps/serde-2835d6d803e6ab3b.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/serde-2835d6d803e6ab3b: crates/serde/src/lib.rs

crates/serde/src/lib.rs:

/root/repo/target/debug/deps/bench_throughput-fd5f83a4b7d16bf1.d: crates/bench/src/bin/bench_throughput.rs

/root/repo/target/debug/deps/bench_throughput-fd5f83a4b7d16bf1: crates/bench/src/bin/bench_throughput.rs

crates/bench/src/bin/bench_throughput.rs:

/root/repo/target/debug/deps/ext_monitor-95e677b6a9055c7d.d: crates/bench/src/bin/ext_monitor.rs

/root/repo/target/debug/deps/ext_monitor-95e677b6a9055c7d: crates/bench/src/bin/ext_monitor.rs

crates/bench/src/bin/ext_monitor.rs:

/root/repo/target/debug/deps/ext_power_modes-339f8248ede8da3e.d: crates/bench/src/bin/ext_power_modes.rs

/root/repo/target/debug/deps/ext_power_modes-339f8248ede8da3e: crates/bench/src/bin/ext_power_modes.rs

crates/bench/src/bin/ext_power_modes.rs:

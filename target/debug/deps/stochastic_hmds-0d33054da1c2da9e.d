/root/repo/target/debug/deps/stochastic_hmds-0d33054da1c2da9e.d: src/lib.rs

/root/repo/target/debug/deps/stochastic_hmds-0d33054da1c2da9e: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/calibration_deployment-30ffdc261f60d5d5.d: tests/calibration_deployment.rs

/root/repo/target/debug/deps/calibration_deployment-30ffdc261f60d5d5: tests/calibration_deployment.rs

tests/calibration_deployment.rs:

/root/repo/target/debug/deps/ext_forest-46cec3320bf3ae02.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/debug/deps/ext_forest-46cec3320bf3ae02: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:

/root/repo/target/debug/deps/shmd_attack-4f230426392e25b6.d: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

/root/repo/target/debug/deps/libshmd_attack-4f230426392e25b6.rlib: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

/root/repo/target/debug/deps/libshmd_attack-4f230426392e25b6.rmeta: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

crates/attack/src/lib.rs:
crates/attack/src/adaptive.rs:
crates/attack/src/campaign.rs:
crates/attack/src/evasion.rs:
crates/attack/src/gradient.rs:
crates/attack/src/reverse.rs:
crates/attack/src/transfer.rs:
crates/attack/src/validated.rs:

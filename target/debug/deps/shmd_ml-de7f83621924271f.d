/root/repo/target/debug/deps/shmd_ml-de7f83621924271f.d: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/shmd_ml-de7f83621924271f: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/forest.rs:
crates/ml/src/logistic.rs:
crates/ml/src/metrics.rs:
crates/ml/src/scaler.rs:
crates/ml/src/tree.rs:

/root/repo/target/debug/deps/shmd_power-03e7954b60b70bf5.d: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/debug/deps/libshmd_power-03e7954b60b70bf5.rlib: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/debug/deps/libshmd_power-03e7954b60b70bf5.rmeta: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

crates/power/src/lib.rs:
crates/power/src/battery.rs:
crates/power/src/cmos.rs:
crates/power/src/dvfs.rs:
crates/power/src/latency.rs:
crates/power/src/memory.rs:
crates/power/src/rng_cost.rs:

/root/repo/target/debug/deps/dataset_stats-7fa8eb6a93800b92.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/debug/deps/dataset_stats-7fa8eb6a93800b92: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:

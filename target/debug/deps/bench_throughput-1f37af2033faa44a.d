/root/repo/target/debug/deps/bench_throughput-1f37af2033faa44a.d: crates/bench/src/bin/bench_throughput.rs

/root/repo/target/debug/deps/bench_throughput-1f37af2033faa44a: crates/bench/src/bin/bench_throughput.rs

crates/bench/src/bin/bench_throughput.rs:

/root/repo/target/debug/deps/ext_validated-922946f83de52be6.d: crates/bench/src/bin/ext_validated.rs Cargo.toml

/root/repo/target/debug/deps/libext_validated-922946f83de52be6.rmeta: crates/bench/src/bin/ext_validated.rs Cargo.toml

crates/bench/src/bin/ext_validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

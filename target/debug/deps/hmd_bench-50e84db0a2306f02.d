/root/repo/target/debug/deps/hmd_bench-50e84db0a2306f02.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libhmd_bench-50e84db0a2306f02.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libhmd_bench-50e84db0a2306f02.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

/root/repo/target/debug/deps/fig1-521abc1c29ff6b04.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-521abc1c29ff6b04.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig4-54d87d30c9bf8dce.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-54d87d30c9bf8dce: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

/root/repo/target/debug/deps/table_memory-3af47df9b216bd93.d: crates/bench/src/bin/table_memory.rs Cargo.toml

/root/repo/target/debug/deps/libtable_memory-3af47df9b216bd93.rmeta: crates/bench/src/bin/table_memory.rs Cargo.toml

crates/bench/src/bin/table_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig2b-86317a85a1b0beb0.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-86317a85a1b0beb0: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:

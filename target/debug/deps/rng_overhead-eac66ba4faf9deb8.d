/root/repo/target/debug/deps/rng_overhead-eac66ba4faf9deb8.d: crates/bench/benches/rng_overhead.rs Cargo.toml

/root/repo/target/debug/deps/librng_overhead-eac66ba4faf9deb8.rmeta: crates/bench/benches/rng_overhead.rs Cargo.toml

crates/bench/benches/rng_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

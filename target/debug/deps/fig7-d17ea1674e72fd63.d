/root/repo/target/debug/deps/fig7-d17ea1674e72fd63.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d17ea1674e72fd63: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

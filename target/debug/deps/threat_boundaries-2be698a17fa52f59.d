/root/repo/target/debug/deps/threat_boundaries-2be698a17fa52f59.d: tests/threat_boundaries.rs

/root/repo/target/debug/deps/threat_boundaries-2be698a17fa52f59: tests/threat_boundaries.rs

tests/threat_boundaries.rs:

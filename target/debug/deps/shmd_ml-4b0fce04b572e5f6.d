/root/repo/target/debug/deps/shmd_ml-4b0fce04b572e5f6.d: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libshmd_ml-4b0fce04b572e5f6.rlib: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libshmd_ml-4b0fce04b572e5f6.rmeta: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/forest.rs:
crates/ml/src/logistic.rs:
crates/ml/src/metrics.rs:
crates/ml/src/scaler.rs:
crates/ml/src/tree.rs:

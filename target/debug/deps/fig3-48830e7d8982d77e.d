/root/repo/target/debug/deps/fig3-48830e7d8982d77e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-48830e7d8982d77e: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:

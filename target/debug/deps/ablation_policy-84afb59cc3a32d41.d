/root/repo/target/debug/deps/ablation_policy-84afb59cc3a32d41.d: crates/bench/src/bin/ablation_policy.rs

/root/repo/target/debug/deps/ablation_policy-84afb59cc3a32d41: crates/bench/src/bin/ablation_policy.rs

crates/bench/src/bin/ablation_policy.rs:

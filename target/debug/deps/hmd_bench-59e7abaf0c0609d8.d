/root/repo/target/debug/deps/hmd_bench-59e7abaf0c0609d8.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/hmd_bench-59e7abaf0c0609d8: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

/root/repo/target/debug/deps/fig1-dc488af2ae8dc157.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-dc488af2ae8dc157: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:

/root/repo/target/debug/deps/threat_boundaries-e41e3d293d9eaa76.d: tests/threat_boundaries.rs Cargo.toml

/root/repo/target/debug/deps/libthreat_boundaries-e41e3d293d9eaa76.rmeta: tests/threat_boundaries.rs Cargo.toml

tests/threat_boundaries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

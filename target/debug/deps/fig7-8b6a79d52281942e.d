/root/repo/target/debug/deps/fig7-8b6a79d52281942e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-8b6a79d52281942e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

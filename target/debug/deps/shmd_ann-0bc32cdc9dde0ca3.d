/root/repo/target/debug/deps/shmd_ann-0bc32cdc9dde0ca3.d: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_ann-0bc32cdc9dde0ca3.rmeta: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs Cargo.toml

crates/ann/src/lib.rs:
crates/ann/src/activation.rs:
crates/ann/src/builder.rs:
crates/ann/src/io.rs:
crates/ann/src/layer.rs:
crates/ann/src/mac.rs:
crates/ann/src/network.rs:
crates/ann/src/train/mod.rs:
crates/ann/src/train/data.rs:
crates/ann/src/train/quantaware.rs:
crates/ann/src/train/rprop.rs:
crates/ann/src/train/sgd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

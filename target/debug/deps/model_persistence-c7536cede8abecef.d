/root/repo/target/debug/deps/model_persistence-c7536cede8abecef.d: tests/model_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_persistence-c7536cede8abecef.rmeta: tests/model_persistence.rs Cargo.toml

tests/model_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

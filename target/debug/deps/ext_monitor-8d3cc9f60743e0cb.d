/root/repo/target/debug/deps/ext_monitor-8d3cc9f60743e0cb.d: crates/bench/src/bin/ext_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libext_monitor-8d3cc9f60743e0cb.rmeta: crates/bench/src/bin/ext_monitor.rs Cargo.toml

crates/bench/src/bin/ext_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

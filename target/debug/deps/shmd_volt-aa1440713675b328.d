/root/repo/target/debug/deps/shmd_volt-aa1440713675b328.d: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs Cargo.toml

/root/repo/target/debug/deps/libshmd_volt-aa1440713675b328.rmeta: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs Cargo.toml

crates/volt/src/lib.rs:
crates/volt/src/calibration.rs:
crates/volt/src/characterize.rs:
crates/volt/src/controller.rs:
crates/volt/src/delay.rs:
crates/volt/src/entropy.rs:
crates/volt/src/fault.rs:
crates/volt/src/math.rs:
crates/volt/src/multiplier.rs:
crates/volt/src/voltage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/stochastic_hmds-46f0b4e02be0db35.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstochastic_hmds-46f0b4e02be0db35.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

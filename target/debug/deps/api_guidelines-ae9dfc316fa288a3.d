/root/repo/target/debug/deps/api_guidelines-ae9dfc316fa288a3.d: tests/api_guidelines.rs

/root/repo/target/debug/deps/api_guidelines-ae9dfc316fa288a3: tests/api_guidelines.rs

tests/api_guidelines.rs:

/root/repo/target/debug/deps/fig4-4eed161df80739bc.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4eed161df80739bc: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

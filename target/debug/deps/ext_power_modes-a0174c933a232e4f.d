/root/repo/target/debug/deps/ext_power_modes-a0174c933a232e4f.d: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

/root/repo/target/debug/deps/libext_power_modes-a0174c933a232e4f.rmeta: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

crates/bench/src/bin/ext_power_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table_rng-417a788e75b13a33.d: crates/bench/src/bin/table_rng.rs Cargo.toml

/root/repo/target/debug/deps/libtable_rng-417a788e75b13a33.rmeta: crates/bench/src/bin/table_rng.rs Cargo.toml

crates/bench/src/bin/table_rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ext_power_modes-577ac15edabcb66b.d: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

/root/repo/target/debug/deps/libext_power_modes-577ac15edabcb66b.rmeta: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

crates/bench/src/bin/ext_power_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-ec2a9ad882ddadd8.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ec2a9ad882ddadd8.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig2b-b013ac3805e8336f.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-b013ac3805e8336f: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:

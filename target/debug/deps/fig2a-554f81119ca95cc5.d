/root/repo/target/debug/deps/fig2a-554f81119ca95cc5.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/debug/deps/fig2a-554f81119ca95cc5: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:

/root/repo/target/debug/deps/fig5-63b7222586efaa01.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-63b7222586efaa01: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

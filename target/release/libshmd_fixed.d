/root/repo/target/release/libshmd_fixed.rlib: /root/repo/crates/fixed/src/lib.rs /root/repo/crates/serde/src/lib.rs

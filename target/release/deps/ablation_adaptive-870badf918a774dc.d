/root/repo/target/release/deps/ablation_adaptive-870badf918a774dc.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/release/deps/ablation_adaptive-870badf918a774dc: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:

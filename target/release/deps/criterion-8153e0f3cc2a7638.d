/root/repo/target/release/deps/criterion-8153e0f3cc2a7638.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-8153e0f3cc2a7638.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

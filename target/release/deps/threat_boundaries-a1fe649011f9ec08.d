/root/repo/target/release/deps/threat_boundaries-a1fe649011f9ec08.d: tests/threat_boundaries.rs Cargo.toml

/root/repo/target/release/deps/libthreat_boundaries-a1fe649011f9ec08.rmeta: tests/threat_boundaries.rs Cargo.toml

tests/threat_boundaries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/table_latency-1f9e465fd2807870.d: crates/bench/src/bin/table_latency.rs Cargo.toml

/root/repo/target/release/deps/libtable_latency-1f9e465fd2807870.rmeta: crates/bench/src/bin/table_latency.rs Cargo.toml

crates/bench/src/bin/table_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

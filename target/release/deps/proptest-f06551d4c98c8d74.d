/root/repo/target/release/deps/proptest-f06551d4c98c8d74.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-f06551d4c98c8d74: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:

/root/repo/target/release/deps/fig1-278ad116222f1882.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/release/deps/libfig1-278ad116222f1882.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

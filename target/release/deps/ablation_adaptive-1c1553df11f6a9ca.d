/root/repo/target/release/deps/ablation_adaptive-1c1553df11f6a9ca.d: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

/root/repo/target/release/deps/libablation_adaptive-1c1553df11f6a9ca.rmeta: crates/bench/src/bin/ablation_adaptive.rs Cargo.toml

crates/bench/src/bin/ablation_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde-325c89fb167c8ad5.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-325c89fb167c8ad5.so: crates/serde/src/lib.rs

crates/serde/src/lib.rs:

/root/repo/target/release/deps/fig7-84d89ea9b6916cdc.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/release/deps/libfig7-84d89ea9b6916cdc.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/api_guidelines-1b280120c41fb269.d: tests/api_guidelines.rs Cargo.toml

/root/repo/target/release/deps/libapi_guidelines-1b280120c41fb269.rmeta: tests/api_guidelines.rs Cargo.toml

tests/api_guidelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/table_latency-0cc89ac6452c08d7.d: crates/bench/src/bin/table_latency.rs

/root/repo/target/release/deps/table_latency-0cc89ac6452c08d7: crates/bench/src/bin/table_latency.rs

crates/bench/src/bin/table_latency.rs:

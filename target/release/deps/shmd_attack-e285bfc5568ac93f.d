/root/repo/target/release/deps/shmd_attack-e285bfc5568ac93f.d: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

/root/repo/target/release/deps/libshmd_attack-e285bfc5568ac93f.rlib: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

/root/repo/target/release/deps/libshmd_attack-e285bfc5568ac93f.rmeta: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs

crates/attack/src/lib.rs:
crates/attack/src/adaptive.rs:
crates/attack/src/campaign.rs:
crates/attack/src/evasion.rs:
crates/attack/src/gradient.rs:
crates/attack/src/reverse.rs:
crates/attack/src/transfer.rs:
crates/attack/src/validated.rs:

/root/repo/target/release/deps/scratch_width_probe-0e410329da68b330.d: tests/scratch_width_probe.rs

/root/repo/target/release/deps/scratch_width_probe-0e410329da68b330: tests/scratch_width_probe.rs

tests/scratch_width_probe.rs:

/root/repo/target/release/deps/shmd_ml-75eff2f260958ccd.d: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libshmd_ml-75eff2f260958ccd.rlib: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libshmd_ml-75eff2f260958ccd.rmeta: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/forest.rs:
crates/ml/src/logistic.rs:
crates/ml/src/metrics.rs:
crates/ml/src/scaler.rs:
crates/ml/src/tree.rs:

/root/repo/target/release/deps/fig1-677b21ebaafb3646.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-677b21ebaafb3646: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:

/root/repo/target/release/deps/rand-5881b8ddbde55287.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/rand-5881b8ddbde55287: crates/rand/src/lib.rs

crates/rand/src/lib.rs:

/root/repo/target/release/deps/shmd_workload-e7991c2828c2ffb8.d: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libshmd_workload-e7991c2828c2ffb8.rmeta: crates/workload/src/lib.rs crates/workload/src/builder.rs crates/workload/src/dataset.rs crates/workload/src/export.rs crates/workload/src/families.rs crates/workload/src/features.rs crates/workload/src/isa.rs crates/workload/src/program.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/builder.rs:
crates/workload/src/dataset.rs:
crates/workload/src/export.rs:
crates/workload/src/families.rs:
crates/workload/src/features.rs:
crates/workload/src/isa.rs:
crates/workload/src/program.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

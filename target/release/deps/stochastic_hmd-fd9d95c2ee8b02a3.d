/root/repo/target/release/deps/stochastic_hmd-fd9d95c2ee8b02a3.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs

/root/repo/target/release/deps/libstochastic_hmd-fd9d95c2ee8b02a3.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs

/root/repo/target/release/deps/libstochastic_hmd-fd9d95c2ee8b02a3.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/deploy.rs crates/core/src/detector.rs crates/core/src/enclave.rs crates/core/src/exec.rs crates/core/src/explore.rs crates/core/src/monitor.rs crates/core/src/rhmd.rs crates/core/src/roc.rs crates/core/src/stochastic.rs crates/core/src/train.rs crates/core/src/xval.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/deploy.rs:
crates/core/src/detector.rs:
crates/core/src/enclave.rs:
crates/core/src/exec.rs:
crates/core/src/explore.rs:
crates/core/src/monitor.rs:
crates/core/src/rhmd.rs:
crates/core/src/roc.rs:
crates/core/src/stochastic.rs:
crates/core/src/train.rs:
crates/core/src/xval.rs:

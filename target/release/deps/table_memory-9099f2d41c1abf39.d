/root/repo/target/release/deps/table_memory-9099f2d41c1abf39.d: crates/bench/src/bin/table_memory.rs

/root/repo/target/release/deps/table_memory-9099f2d41c1abf39: crates/bench/src/bin/table_memory.rs

crates/bench/src/bin/table_memory.rs:

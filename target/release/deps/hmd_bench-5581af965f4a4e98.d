/root/repo/target/release/deps/hmd_bench-5581af965f4a4e98.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libhmd_bench-5581af965f4a4e98.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libhmd_bench-5581af965f4a4e98.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/perf.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments.rs:
crates/bench/src/perf.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

/root/repo/target/release/deps/ext_validated-7597b9db11b9398e.d: crates/bench/src/bin/ext_validated.rs

/root/repo/target/release/deps/ext_validated-7597b9db11b9398e: crates/bench/src/bin/ext_validated.rs

crates/bench/src/bin/ext_validated.rs:

/root/repo/target/release/deps/serde-0400f8433e18864a.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-0400f8433e18864a.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

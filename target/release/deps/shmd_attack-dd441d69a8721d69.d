/root/repo/target/release/deps/shmd_attack-dd441d69a8721d69.d: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs Cargo.toml

/root/repo/target/release/deps/libshmd_attack-dd441d69a8721d69.rmeta: crates/attack/src/lib.rs crates/attack/src/adaptive.rs crates/attack/src/campaign.rs crates/attack/src/evasion.rs crates/attack/src/gradient.rs crates/attack/src/reverse.rs crates/attack/src/transfer.rs crates/attack/src/validated.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/adaptive.rs:
crates/attack/src/campaign.rs:
crates/attack/src/evasion.rs:
crates/attack/src/gradient.rs:
crates/attack/src/reverse.rs:
crates/attack/src/transfer.rs:
crates/attack/src/validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig5-4243a48bc35200ee.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-4243a48bc35200ee: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

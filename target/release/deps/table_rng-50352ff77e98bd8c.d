/root/repo/target/release/deps/table_rng-50352ff77e98bd8c.d: crates/bench/src/bin/table_rng.rs Cargo.toml

/root/repo/target/release/deps/libtable_rng-50352ff77e98bd8c.rmeta: crates/bench/src/bin/table_rng.rs Cargo.toml

crates/bench/src/bin/table_rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig2a-f59ec6256ca2e89c.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/release/deps/fig2a-f59ec6256ca2e89c: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:

/root/repo/target/release/deps/dataset_stats-6a277db9f94b81b3.d: crates/bench/src/bin/dataset_stats.rs Cargo.toml

/root/repo/target/release/deps/libdataset_stats-6a277db9f94b81b3.rmeta: crates/bench/src/bin/dataset_stats.rs Cargo.toml

crates/bench/src/bin/dataset_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

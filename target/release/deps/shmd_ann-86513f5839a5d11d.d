/root/repo/target/release/deps/shmd_ann-86513f5839a5d11d.d: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

/root/repo/target/release/deps/libshmd_ann-86513f5839a5d11d.rlib: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

/root/repo/target/release/deps/libshmd_ann-86513f5839a5d11d.rmeta: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

crates/ann/src/lib.rs:
crates/ann/src/activation.rs:
crates/ann/src/builder.rs:
crates/ann/src/io.rs:
crates/ann/src/layer.rs:
crates/ann/src/mac.rs:
crates/ann/src/network.rs:
crates/ann/src/train/mod.rs:
crates/ann/src/train/data.rs:
crates/ann/src/train/quantaware.rs:
crates/ann/src/train/rprop.rs:
crates/ann/src/train/sgd.rs:

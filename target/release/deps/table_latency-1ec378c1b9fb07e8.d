/root/repo/target/release/deps/table_latency-1ec378c1b9fb07e8.d: crates/bench/src/bin/table_latency.rs

/root/repo/target/release/deps/table_latency-1ec378c1b9fb07e8: crates/bench/src/bin/table_latency.rs

crates/bench/src/bin/table_latency.rs:

/root/repo/target/release/deps/shmd_fixed-5ecb0465bfa9471d.d: crates/fixed/src/lib.rs

/root/repo/target/release/deps/libshmd_fixed-5ecb0465bfa9471d.rlib: crates/fixed/src/lib.rs

/root/repo/target/release/deps/libshmd_fixed-5ecb0465bfa9471d.rmeta: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:

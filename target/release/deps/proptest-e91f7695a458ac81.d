/root/repo/target/release/deps/proptest-e91f7695a458ac81.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-e91f7695a458ac81.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig2a-eb8842e9274f71de.d: crates/bench/src/bin/fig2a.rs Cargo.toml

/root/repo/target/release/deps/libfig2a-eb8842e9274f71de.rmeta: crates/bench/src/bin/fig2a.rs Cargo.toml

crates/bench/src/bin/fig2a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/stochastic_hmds-8af9331d79442776.d: src/lib.rs

/root/repo/target/release/deps/stochastic_hmds-8af9331d79442776: src/lib.rs

src/lib.rs:

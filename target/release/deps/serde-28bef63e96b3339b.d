/root/repo/target/release/deps/serde-28bef63e96b3339b.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/serde-28bef63e96b3339b: crates/serde/src/lib.rs

crates/serde/src/lib.rs:

/root/repo/target/release/deps/bench_throughput-2ba1f24cdde0897e.d: crates/bench/src/bin/bench_throughput.rs

/root/repo/target/release/deps/bench_throughput-2ba1f24cdde0897e: crates/bench/src/bin/bench_throughput.rs

crates/bench/src/bin/bench_throughput.rs:

/root/repo/target/release/deps/fig2a-1e910d0dc3a4e521.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/release/deps/fig2a-1e910d0dc3a4e521: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:

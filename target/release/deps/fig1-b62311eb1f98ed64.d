/root/repo/target/release/deps/fig1-b62311eb1f98ed64.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-b62311eb1f98ed64: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:

/root/repo/target/release/deps/stochastic_hmds-30b1c3497a8a0b4a.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libstochastic_hmds-30b1c3497a8a0b4a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig7-576c07abc0dd9cfa.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-576c07abc0dd9cfa: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

/root/repo/target/release/deps/shmd_power-7ca7d8a4d8357d18.d: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/release/deps/libshmd_power-7ca7d8a4d8357d18.rlib: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/release/deps/libshmd_power-7ca7d8a4d8357d18.rmeta: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

crates/power/src/lib.rs:
crates/power/src/battery.rs:
crates/power/src/cmos.rs:
crates/power/src/dvfs.rs:
crates/power/src/latency.rs:
crates/power/src/memory.rs:
crates/power/src/rng_cost.rs:

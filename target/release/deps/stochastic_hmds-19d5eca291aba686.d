/root/repo/target/release/deps/stochastic_hmds-19d5eca291aba686.d: src/lib.rs

/root/repo/target/release/deps/libstochastic_hmds-19d5eca291aba686.rlib: src/lib.rs

/root/repo/target/release/deps/libstochastic_hmds-19d5eca291aba686.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/ablation_ripple-6f3508a11aaf22a6.d: crates/bench/src/bin/ablation_ripple.rs

/root/repo/target/release/deps/ablation_ripple-6f3508a11aaf22a6: crates/bench/src/bin/ablation_ripple.rs

crates/bench/src/bin/ablation_ripple.rs:

/root/repo/target/release/deps/ext_validated-45b5658aba6201c1.d: crates/bench/src/bin/ext_validated.rs Cargo.toml

/root/repo/target/release/deps/libext_validated-45b5658aba6201c1.rmeta: crates/bench/src/bin/ext_validated.rs Cargo.toml

crates/bench/src/bin/ext_validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

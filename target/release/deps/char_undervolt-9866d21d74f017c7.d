/root/repo/target/release/deps/char_undervolt-9866d21d74f017c7.d: crates/bench/src/bin/char_undervolt.rs Cargo.toml

/root/repo/target/release/deps/libchar_undervolt-9866d21d74f017c7.rmeta: crates/bench/src/bin/char_undervolt.rs Cargo.toml

crates/bench/src/bin/char_undervolt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/shmd_fixed-8e00c17b0e398498.d: crates/fixed/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libshmd_fixed-8e00c17b0e398498.rmeta: crates/fixed/src/lib.rs Cargo.toml

crates/fixed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/threat_boundaries-4645cbf2e714c050.d: tests/threat_boundaries.rs

/root/repo/target/release/deps/threat_boundaries-4645cbf2e714c050: tests/threat_boundaries.rs

tests/threat_boundaries.rs:

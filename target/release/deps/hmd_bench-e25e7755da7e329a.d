/root/repo/target/release/deps/hmd_bench-e25e7755da7e329a.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/setup.rs crates/bench/src/table.rs

/root/repo/target/release/deps/hmd_bench-e25e7755da7e329a: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/cli.rs crates/bench/src/experiments.rs crates/bench/src/setup.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments.rs:
crates/bench/src/setup.rs:
crates/bench/src/table.rs:

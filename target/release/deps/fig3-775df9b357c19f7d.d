/root/repo/target/release/deps/fig3-775df9b357c19f7d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-775df9b357c19f7d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:

/root/repo/target/release/deps/paper_claims-24100028b8878ce9.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-24100028b8878ce9: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/release/deps/calibration_deployment-ab85b90ad100e1e3.d: tests/calibration_deployment.rs Cargo.toml

/root/repo/target/release/deps/libcalibration_deployment-ab85b90ad100e1e3.rmeta: tests/calibration_deployment.rs Cargo.toml

tests/calibration_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

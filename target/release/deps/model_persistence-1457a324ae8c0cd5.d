/root/repo/target/release/deps/model_persistence-1457a324ae8c0cd5.d: tests/model_persistence.rs Cargo.toml

/root/repo/target/release/deps/libmodel_persistence-1457a324ae8c0cd5.rmeta: tests/model_persistence.rs Cargo.toml

tests/model_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

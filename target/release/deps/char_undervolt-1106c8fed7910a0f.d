/root/repo/target/release/deps/char_undervolt-1106c8fed7910a0f.d: crates/bench/src/bin/char_undervolt.rs

/root/repo/target/release/deps/char_undervolt-1106c8fed7910a0f: crates/bench/src/bin/char_undervolt.rs

crates/bench/src/bin/char_undervolt.rs:

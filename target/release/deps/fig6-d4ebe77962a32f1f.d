/root/repo/target/release/deps/fig6-d4ebe77962a32f1f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-d4ebe77962a32f1f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:

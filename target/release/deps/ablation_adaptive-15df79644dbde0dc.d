/root/repo/target/release/deps/ablation_adaptive-15df79644dbde0dc.d: crates/bench/src/bin/ablation_adaptive.rs

/root/repo/target/release/deps/ablation_adaptive-15df79644dbde0dc: crates/bench/src/bin/ablation_adaptive.rs

crates/bench/src/bin/ablation_adaptive.rs:

/root/repo/target/release/deps/char_undervolt-2fcec70e159c3ccc.d: crates/bench/src/bin/char_undervolt.rs

/root/repo/target/release/deps/char_undervolt-2fcec70e159c3ccc: crates/bench/src/bin/char_undervolt.rs

crates/bench/src/bin/char_undervolt.rs:

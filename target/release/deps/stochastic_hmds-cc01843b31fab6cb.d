/root/repo/target/release/deps/stochastic_hmds-cc01843b31fab6cb.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libstochastic_hmds-cc01843b31fab6cb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

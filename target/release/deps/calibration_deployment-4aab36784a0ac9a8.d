/root/repo/target/release/deps/calibration_deployment-4aab36784a0ac9a8.d: tests/calibration_deployment.rs

/root/repo/target/release/deps/calibration_deployment-4aab36784a0ac9a8: tests/calibration_deployment.rs

tests/calibration_deployment.rs:

/root/repo/target/release/deps/model_persistence-6ee7b63baca7cc98.d: tests/model_persistence.rs

/root/repo/target/release/deps/model_persistence-6ee7b63baca7cc98: tests/model_persistence.rs

tests/model_persistence.rs:

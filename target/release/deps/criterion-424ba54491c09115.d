/root/repo/target/release/deps/criterion-424ba54491c09115.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-424ba54491c09115.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

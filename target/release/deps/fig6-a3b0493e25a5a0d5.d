/root/repo/target/release/deps/fig6-a3b0493e25a5a0d5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-a3b0493e25a5a0d5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:

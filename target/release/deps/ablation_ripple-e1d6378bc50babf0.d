/root/repo/target/release/deps/ablation_ripple-e1d6378bc50babf0.d: crates/bench/src/bin/ablation_ripple.rs

/root/repo/target/release/deps/ablation_ripple-e1d6378bc50babf0: crates/bench/src/bin/ablation_ripple.rs

crates/bench/src/bin/ablation_ripple.rs:

/root/repo/target/release/deps/fig5-e0cc8581e15fe9ab.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/release/deps/libfig5-e0cc8581e15fe9ab.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ablation_ripple-abc65c81b02c0c14.d: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

/root/repo/target/release/deps/libablation_ripple-abc65c81b02c0c14.rmeta: crates/bench/src/bin/ablation_ripple.rs Cargo.toml

crates/bench/src/bin/ablation_ripple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/end_to_end-67e5db83de366f71.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-67e5db83de366f71: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/release/deps/ext_power_modes-0f858b933534b93a.d: crates/bench/src/bin/ext_power_modes.rs

/root/repo/target/release/deps/ext_power_modes-0f858b933534b93a: crates/bench/src/bin/ext_power_modes.rs

crates/bench/src/bin/ext_power_modes.rs:

/root/repo/target/release/deps/fault_injection-73c1597d7dcc7d32.d: crates/bench/benches/fault_injection.rs Cargo.toml

/root/repo/target/release/deps/libfault_injection-73c1597d7dcc7d32.rmeta: crates/bench/benches/fault_injection.rs Cargo.toml

crates/bench/benches/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig4-c3bdab29ace0cceb.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-c3bdab29ace0cceb: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

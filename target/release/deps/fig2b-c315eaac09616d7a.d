/root/repo/target/release/deps/fig2b-c315eaac09616d7a.d: crates/bench/src/bin/fig2b.rs Cargo.toml

/root/repo/target/release/deps/libfig2b-c315eaac09616d7a.rmeta: crates/bench/src/bin/fig2b.rs Cargo.toml

crates/bench/src/bin/fig2b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/determinism-5a29cbc22013727d.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-5a29cbc22013727d: tests/determinism.rs

tests/determinism.rs:

/root/repo/target/release/deps/ext_power_modes-8a9109b5c1a45d4c.d: crates/bench/src/bin/ext_power_modes.rs

/root/repo/target/release/deps/ext_power_modes-8a9109b5c1a45d4c: crates/bench/src/bin/ext_power_modes.rs

crates/bench/src/bin/ext_power_modes.rs:

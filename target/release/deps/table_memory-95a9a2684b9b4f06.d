/root/repo/target/release/deps/table_memory-95a9a2684b9b4f06.d: crates/bench/src/bin/table_memory.rs

/root/repo/target/release/deps/table_memory-95a9a2684b9b4f06: crates/bench/src/bin/table_memory.rs

crates/bench/src/bin/table_memory.rs:

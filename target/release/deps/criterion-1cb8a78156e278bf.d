/root/repo/target/release/deps/criterion-1cb8a78156e278bf.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-1cb8a78156e278bf: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:

/root/repo/target/release/deps/ext_forest-fe2a30c7cf993683.d: crates/bench/src/bin/ext_forest.rs Cargo.toml

/root/repo/target/release/deps/libext_forest-fe2a30c7cf993683.rmeta: crates/bench/src/bin/ext_forest.rs Cargo.toml

crates/bench/src/bin/ext_forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

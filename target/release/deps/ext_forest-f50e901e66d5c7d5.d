/root/repo/target/release/deps/ext_forest-f50e901e66d5c7d5.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/release/deps/ext_forest-f50e901e66d5c7d5: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:

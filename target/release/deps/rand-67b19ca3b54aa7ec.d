/root/repo/target/release/deps/rand-67b19ca3b54aa7ec.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-67b19ca3b54aa7ec.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig2b-d83d3e14cfc4bdce.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/release/deps/fig2b-d83d3e14cfc4bdce: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:

/root/repo/target/release/deps/dataset_stats-f1694f099242586a.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/release/deps/dataset_stats-f1694f099242586a: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:

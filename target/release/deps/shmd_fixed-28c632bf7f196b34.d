/root/repo/target/release/deps/shmd_fixed-28c632bf7f196b34.d: crates/fixed/src/lib.rs

/root/repo/target/release/deps/shmd_fixed-28c632bf7f196b34: crates/fixed/src/lib.rs

crates/fixed/src/lib.rs:

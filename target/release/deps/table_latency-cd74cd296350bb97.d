/root/repo/target/release/deps/table_latency-cd74cd296350bb97.d: crates/bench/src/bin/table_latency.rs Cargo.toml

/root/repo/target/release/deps/libtable_latency-cd74cd296350bb97.rmeta: crates/bench/src/bin/table_latency.rs Cargo.toml

crates/bench/src/bin/table_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/proptest-a1854f294a498516.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-a1854f294a498516.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

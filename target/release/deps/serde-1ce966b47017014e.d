/root/repo/target/release/deps/serde-1ce966b47017014e.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-1ce966b47017014e.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/inference-cc88e9385f78e62e.d: crates/bench/benches/inference.rs Cargo.toml

/root/repo/target/release/deps/libinference-cc88e9385f78e62e.rmeta: crates/bench/benches/inference.rs Cargo.toml

crates/bench/benches/inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

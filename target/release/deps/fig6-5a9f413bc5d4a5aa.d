/root/repo/target/release/deps/fig6-5a9f413bc5d4a5aa.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/release/deps/libfig6-5a9f413bc5d4a5aa.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

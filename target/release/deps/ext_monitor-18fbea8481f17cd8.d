/root/repo/target/release/deps/ext_monitor-18fbea8481f17cd8.d: crates/bench/src/bin/ext_monitor.rs Cargo.toml

/root/repo/target/release/deps/libext_monitor-18fbea8481f17cd8.rmeta: crates/bench/src/bin/ext_monitor.rs Cargo.toml

crates/bench/src/bin/ext_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

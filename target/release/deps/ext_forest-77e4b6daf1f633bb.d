/root/repo/target/release/deps/ext_forest-77e4b6daf1f633bb.d: crates/bench/src/bin/ext_forest.rs

/root/repo/target/release/deps/ext_forest-77e4b6daf1f633bb: crates/bench/src/bin/ext_forest.rs

crates/bench/src/bin/ext_forest.rs:

/root/repo/target/release/deps/fig5-98142ebef19c5af3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-98142ebef19c5af3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

/root/repo/target/release/deps/ablation_policy-a717e047bf34f511.d: crates/bench/src/bin/ablation_policy.rs

/root/repo/target/release/deps/ablation_policy-a717e047bf34f511: crates/bench/src/bin/ablation_policy.rs

crates/bench/src/bin/ablation_policy.rs:

/root/repo/target/release/deps/dataset_stats-c6cf62897562297d.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/release/deps/dataset_stats-c6cf62897562297d: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:

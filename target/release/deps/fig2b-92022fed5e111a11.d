/root/repo/target/release/deps/fig2b-92022fed5e111a11.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/release/deps/fig2b-92022fed5e111a11: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:

/root/repo/target/release/deps/shmd_ml-569bfc5c01688089.d: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/shmd_ml-569bfc5c01688089: crates/ml/src/lib.rs crates/ml/src/forest.rs crates/ml/src/logistic.rs crates/ml/src/metrics.rs crates/ml/src/scaler.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/forest.rs:
crates/ml/src/logistic.rs:
crates/ml/src/metrics.rs:
crates/ml/src/scaler.rs:
crates/ml/src/tree.rs:

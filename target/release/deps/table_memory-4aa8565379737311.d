/root/repo/target/release/deps/table_memory-4aa8565379737311.d: crates/bench/src/bin/table_memory.rs Cargo.toml

/root/repo/target/release/deps/libtable_memory-4aa8565379737311.rmeta: crates/bench/src/bin/table_memory.rs Cargo.toml

crates/bench/src/bin/table_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

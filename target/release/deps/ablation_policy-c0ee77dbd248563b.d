/root/repo/target/release/deps/ablation_policy-c0ee77dbd248563b.d: crates/bench/src/bin/ablation_policy.rs

/root/repo/target/release/deps/ablation_policy-c0ee77dbd248563b: crates/bench/src/bin/ablation_policy.rs

crates/bench/src/bin/ablation_policy.rs:

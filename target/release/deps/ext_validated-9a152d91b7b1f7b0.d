/root/repo/target/release/deps/ext_validated-9a152d91b7b1f7b0.d: crates/bench/src/bin/ext_validated.rs

/root/repo/target/release/deps/ext_validated-9a152d91b7b1f7b0: crates/bench/src/bin/ext_validated.rs

crates/bench/src/bin/ext_validated.rs:

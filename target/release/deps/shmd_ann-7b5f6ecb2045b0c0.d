/root/repo/target/release/deps/shmd_ann-7b5f6ecb2045b0c0.d: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

/root/repo/target/release/deps/shmd_ann-7b5f6ecb2045b0c0: crates/ann/src/lib.rs crates/ann/src/activation.rs crates/ann/src/builder.rs crates/ann/src/io.rs crates/ann/src/layer.rs crates/ann/src/mac.rs crates/ann/src/network.rs crates/ann/src/train/mod.rs crates/ann/src/train/data.rs crates/ann/src/train/quantaware.rs crates/ann/src/train/rprop.rs crates/ann/src/train/sgd.rs

crates/ann/src/lib.rs:
crates/ann/src/activation.rs:
crates/ann/src/builder.rs:
crates/ann/src/io.rs:
crates/ann/src/layer.rs:
crates/ann/src/mac.rs:
crates/ann/src/network.rs:
crates/ann/src/train/mod.rs:
crates/ann/src/train/data.rs:
crates/ann/src/train/quantaware.rs:
crates/ann/src/train/rprop.rs:
crates/ann/src/train/sgd.rs:

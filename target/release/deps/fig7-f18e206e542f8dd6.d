/root/repo/target/release/deps/fig7-f18e206e542f8dd6.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/release/deps/libfig7-f18e206e542f8dd6.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ext_monitor-4d6d7e56d7311142.d: crates/bench/src/bin/ext_monitor.rs

/root/repo/target/release/deps/ext_monitor-4d6d7e56d7311142: crates/bench/src/bin/ext_monitor.rs

crates/bench/src/bin/ext_monitor.rs:

/root/repo/target/release/deps/serde-bc9877e9783c2517.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-bc9877e9783c2517.so: crates/serde/src/lib.rs

crates/serde/src/lib.rs:

/root/repo/target/release/deps/determinism-2056667d1e40a0d4.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-2056667d1e40a0d4.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/shmd_power-da528f9e73f3976a.d: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

/root/repo/target/release/deps/shmd_power-da528f9e73f3976a: crates/power/src/lib.rs crates/power/src/battery.rs crates/power/src/cmos.rs crates/power/src/dvfs.rs crates/power/src/latency.rs crates/power/src/memory.rs crates/power/src/rng_cost.rs

crates/power/src/lib.rs:
crates/power/src/battery.rs:
crates/power/src/cmos.rs:
crates/power/src/dvfs.rs:
crates/power/src/latency.rs:
crates/power/src/memory.rs:
crates/power/src/rng_cost.rs:

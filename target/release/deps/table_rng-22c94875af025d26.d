/root/repo/target/release/deps/table_rng-22c94875af025d26.d: crates/bench/src/bin/table_rng.rs

/root/repo/target/release/deps/table_rng-22c94875af025d26: crates/bench/src/bin/table_rng.rs

crates/bench/src/bin/table_rng.rs:

/root/repo/target/release/deps/ext_monitor-e6e436577363cf19.d: crates/bench/src/bin/ext_monitor.rs

/root/repo/target/release/deps/ext_monitor-e6e436577363cf19: crates/bench/src/bin/ext_monitor.rs

crates/bench/src/bin/ext_monitor.rs:

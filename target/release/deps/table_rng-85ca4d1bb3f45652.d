/root/repo/target/release/deps/table_rng-85ca4d1bb3f45652.d: crates/bench/src/bin/table_rng.rs

/root/repo/target/release/deps/table_rng-85ca4d1bb3f45652: crates/bench/src/bin/table_rng.rs

crates/bench/src/bin/table_rng.rs:

/root/repo/target/release/deps/rng_overhead-9cdad69a591072c9.d: crates/bench/benches/rng_overhead.rs Cargo.toml

/root/repo/target/release/deps/librng_overhead-9cdad69a591072c9.rmeta: crates/bench/benches/rng_overhead.rs Cargo.toml

crates/bench/benches/rng_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig3-df7ee1a42503e50a.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-df7ee1a42503e50a: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:

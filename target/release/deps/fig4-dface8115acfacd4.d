/root/repo/target/release/deps/fig4-dface8115acfacd4.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-dface8115acfacd4: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

/root/repo/target/release/deps/ablation_policy-b99067a1bae4b261.d: crates/bench/src/bin/ablation_policy.rs Cargo.toml

/root/repo/target/release/deps/libablation_policy-b99067a1bae4b261.rmeta: crates/bench/src/bin/ablation_policy.rs Cargo.toml

crates/bench/src/bin/ablation_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig8-609e2e24d5566e33.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/release/deps/libfig8-609e2e24d5566e33.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/table_memory-d69d939d8b00743e.d: crates/bench/src/bin/table_memory.rs Cargo.toml

/root/repo/target/release/deps/libtable_memory-d69d939d8b00743e.rmeta: crates/bench/src/bin/table_memory.rs Cargo.toml

crates/bench/src/bin/table_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ext_validated-38bc96102e8f2038.d: crates/bench/src/bin/ext_validated.rs Cargo.toml

/root/repo/target/release/deps/libext_validated-38bc96102e8f2038.rmeta: crates/bench/src/bin/ext_validated.rs Cargo.toml

crates/bench/src/bin/ext_validated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/char_undervolt-d07c23417ceb1cd9.d: crates/bench/src/bin/char_undervolt.rs Cargo.toml

/root/repo/target/release/deps/libchar_undervolt-d07c23417ceb1cd9.rmeta: crates/bench/src/bin/char_undervolt.rs Cargo.toml

crates/bench/src/bin/char_undervolt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

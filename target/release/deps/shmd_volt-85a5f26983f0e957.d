/root/repo/target/release/deps/shmd_volt-85a5f26983f0e957.d: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

/root/repo/target/release/deps/libshmd_volt-85a5f26983f0e957.rlib: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

/root/repo/target/release/deps/libshmd_volt-85a5f26983f0e957.rmeta: crates/volt/src/lib.rs crates/volt/src/calibration.rs crates/volt/src/characterize.rs crates/volt/src/controller.rs crates/volt/src/delay.rs crates/volt/src/entropy.rs crates/volt/src/fault.rs crates/volt/src/math.rs crates/volt/src/multiplier.rs crates/volt/src/voltage.rs

crates/volt/src/lib.rs:
crates/volt/src/calibration.rs:
crates/volt/src/characterize.rs:
crates/volt/src/controller.rs:
crates/volt/src/delay.rs:
crates/volt/src/entropy.rs:
crates/volt/src/fault.rs:
crates/volt/src/math.rs:
crates/volt/src/multiplier.rs:
crates/volt/src/voltage.rs:

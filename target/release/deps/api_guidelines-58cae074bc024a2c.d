/root/repo/target/release/deps/api_guidelines-58cae074bc024a2c.d: tests/api_guidelines.rs

/root/repo/target/release/deps/api_guidelines-58cae074bc024a2c: tests/api_guidelines.rs

tests/api_guidelines.rs:

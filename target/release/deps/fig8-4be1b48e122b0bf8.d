/root/repo/target/release/deps/fig8-4be1b48e122b0bf8.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-4be1b48e122b0bf8: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

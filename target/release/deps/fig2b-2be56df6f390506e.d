/root/repo/target/release/deps/fig2b-2be56df6f390506e.d: crates/bench/src/bin/fig2b.rs Cargo.toml

/root/repo/target/release/deps/libfig2b-2be56df6f390506e.rmeta: crates/bench/src/bin/fig2b.rs Cargo.toml

crates/bench/src/bin/fig2b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde-55cc78041112c5dc.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-55cc78041112c5dc.so: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ext_power_modes-c911567174d0a96a.d: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

/root/repo/target/release/deps/libext_power_modes-c911567174d0a96a.rmeta: crates/bench/src/bin/ext_power_modes.rs Cargo.toml

crates/bench/src/bin/ext_power_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

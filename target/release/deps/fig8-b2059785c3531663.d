/root/repo/target/release/deps/fig8-b2059785c3531663.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-b2059785c3531663: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

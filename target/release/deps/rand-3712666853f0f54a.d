/root/repo/target/release/deps/rand-3712666853f0f54a.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-3712666853f0f54a.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

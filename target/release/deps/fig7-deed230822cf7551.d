/root/repo/target/release/deps/fig7-deed230822cf7551.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-deed230822cf7551: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

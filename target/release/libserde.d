/root/repo/target/release/libserde.so: /root/repo/crates/serde/src/lib.rs

/root/repo/target/release/examples/device_calibration-0b491cb47d521c1e.d: examples/device_calibration.rs

/root/repo/target/release/examples/device_calibration-0b491cb47d521c1e: examples/device_calibration.rs

examples/device_calibration.rs:

/root/repo/target/release/examples/quickstart-b50347eef5793f90.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-b50347eef5793f90.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/examples/profile_fault-fbe1ee3c63e221f0.d: crates/volt/examples/profile_fault.rs

/root/repo/target/release/examples/profile_fault-fbe1ee3c63e221f0: crates/volt/examples/profile_fault.rs

crates/volt/examples/profile_fault.rs:

/root/repo/target/release/examples/voltage_tradeoff-137d8b653a3d50fa.d: examples/voltage_tradeoff.rs Cargo.toml

/root/repo/target/release/examples/libvoltage_tradeoff-137d8b653a3d50fa.rmeta: examples/voltage_tradeoff.rs Cargo.toml

examples/voltage_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/examples/quickstart-aac7df5a0e362d52.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-aac7df5a0e362d52: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/examples/device_calibration-47f051d80488623a.d: examples/device_calibration.rs Cargo.toml

/root/repo/target/release/examples/libdevice_calibration-47f051d80488623a.rmeta: examples/device_calibration.rs Cargo.toml

examples/device_calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/examples/voltage_tradeoff-dce7cd3a9a60fc75.d: examples/voltage_tradeoff.rs

/root/repo/target/release/examples/voltage_tradeoff-dce7cd3a9a60fc75: examples/voltage_tradeoff.rs

examples/voltage_tradeoff.rs:

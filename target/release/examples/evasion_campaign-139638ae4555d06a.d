/root/repo/target/release/examples/evasion_campaign-139638ae4555d06a.d: examples/evasion_campaign.rs

/root/repo/target/release/examples/evasion_campaign-139638ae4555d06a: examples/evasion_campaign.rs

examples/evasion_campaign.rs:

/root/repo/target/release/examples/evasion_campaign-203b534fc35d92f8.d: examples/evasion_campaign.rs Cargo.toml

/root/repo/target/release/examples/libevasion_campaign-203b534fc35d92f8.rmeta: examples/evasion_campaign.rs Cargo.toml

examples/evasion_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

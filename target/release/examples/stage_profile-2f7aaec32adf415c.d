/root/repo/target/release/examples/stage_profile-2f7aaec32adf415c.d: crates/volt/examples/stage_profile.rs

/root/repo/target/release/examples/stage_profile-2f7aaec32adf415c: crates/volt/examples/stage_profile.rs

crates/volt/examples/stage_profile.rs:

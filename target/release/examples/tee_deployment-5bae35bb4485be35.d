/root/repo/target/release/examples/tee_deployment-5bae35bb4485be35.d: examples/tee_deployment.rs Cargo.toml

/root/repo/target/release/examples/libtee_deployment-5bae35bb4485be35.rmeta: examples/tee_deployment.rs Cargo.toml

examples/tee_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/examples/tee_deployment-689d89b1c41d50e5.d: examples/tee_deployment.rs

/root/repo/target/release/examples/tee_deployment-689d89b1c41d50e5: examples/tee_deployment.rs

examples/tee_deployment.rs:

//! The daemon's wire surface end to end: control frames round-trip,
//! hostile bytes come back as typed errors (never a panic, never an
//! unbounded allocation), one submission frame may mix well-formed,
//! poisoned, and wrong-width queries and each gets its own per-query
//! disposition, overload rejections are exactly accounted, and a chaos
//! `Hang` degrades past the admission deadline instead of wedging.

use shmd_volt::calibration::DeviceProfile;
use shmd_volt::environment::EnvironmentConfig;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, QueryDisposition, RejectReason, ServeConfig};
use stochastic_hmd::supervisor::{ChaosEvent, ChaosPlan, ShardHealth, SupervisorConfig};
use stochastic_hmd::telemetry::TelemetrySnapshot;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::{
    decode_frame, encode_frame, AdmissionConfig, BaselineHmd, Daemon, DaemonPhase, Frame,
    RejectCode, ServiceCheckpoint, StateJournal, WireError, FRAME_OVERHEAD,
};

const SHARDS: usize = 4;
const BATCH_SIZE: usize = 8;
const SEED: u64 = 23;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 31);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

fn supervision(chaos: ChaosPlan) -> SupervisorConfig {
    let device = DeviceProfile::reference();
    SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
        .with_chaos(chaos)
}

fn deploy(baseline: &BaselineHmd, chaos: ChaosPlan, exec: ExecConfig) -> MonitoringService {
    let config = ServeConfig::new(SHARDS)
        .with_seed(SEED)
        .with_target_error_rate(0.2)
        .with_batch_size(BATCH_SIZE)
        .with_exec(exec);
    MonitoringService::supervised(baseline, supervision(chaos), config).expect("deploys")
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "shmd-daemon-wire-test-{}-{tag}.journal",
        std::process::id()
    ))
}

fn daemon(baseline: &BaselineHmd, config: AdmissionConfig, tag: &str) -> Daemon {
    let service = deploy(baseline, ChaosPlan::none(), ExecConfig::serial());
    let journal = StateJournal::create(scratch_path(tag)).expect("creates");
    Daemon::new(service, journal, config).expect("deploys")
}

fn features(baseline: &BaselineHmd, dataset: &Dataset, n: usize) -> Vec<Vec<f32>> {
    let spec = baseline.spec();
    (0..n)
        .map(|i| spec.extract(dataset.trace(i % dataset.len())))
        .collect()
}

fn decoded(reply: &[u8]) -> Frame {
    let (frame, consumed) = decode_frame(reply, stochastic_hmd::HANDOFF_FRAME_CAP).expect("reply");
    assert_eq!(consumed, reply.len(), "reply frame has trailing bytes");
    frame
}

#[test]
fn one_frame_mixing_good_poison_and_wrong_dim_gets_per_query_dispositions() {
    let (dataset, baseline) = setup();
    let mut daemon = daemon(&baseline, AdmissionConfig::default(), "mixed");

    // One frame: good, NaN-poisoned, too-wide, good, empty.
    let good = features(&baseline, &dataset, 4);
    let dim = good[0].len();
    let mut poison = good[1].clone();
    poison[dim / 2] = f32::NAN;
    let mut wide = good[2].clone();
    wide.extend([0.0; 3]);
    let batch = vec![good[0].clone(), poison, wide, good[3].clone(), Vec::new()];

    let reply = daemon
        .handle_frame(&encode_frame(&Frame::SubmitBatch {
            tenant: 7,
            queries: batch,
        }))
        .expect("submission admits");
    assert!(matches!(decoded(&reply), Frame::Ack));

    let replies = daemon.pump_all().expect("pumps");
    assert_eq!(replies.len(), 1);
    let Frame::Verdicts { tenant, verdicts } = decoded(&replies[0]) else {
        panic!("pump reply is not a verdicts frame");
    };
    assert_eq!(tenant, 7);
    assert_eq!(verdicts.len(), 5, "every query gets a verdict");

    assert_eq!(verdicts[0].disposition, QueryDisposition::Served);
    assert_eq!(verdicts[3].disposition, QueryDisposition::Served);
    assert_eq!(
        verdicts[1].disposition,
        QueryDisposition::Rejected(RejectReason::NonFiniteFeature { index: dim / 2 })
    );
    assert_eq!(
        verdicts[2].disposition,
        QueryDisposition::Rejected(RejectReason::WidthMismatch {
            got: dim + 3,
            expected: dim,
        })
    );
    assert_eq!(
        verdicts[4].disposition,
        QueryDisposition::Rejected(RejectReason::WidthMismatch {
            got: 0,
            expected: dim,
        })
    );

    // Rejections are per-query, not per-frame: the stream position still
    // advances past every query, exactly three are counted rejected, and
    // the daemon stays healthy.
    assert_eq!(daemon.service().served(), 5);
    assert_eq!(daemon.service().rejected_queries(), 3);
    assert_eq!(daemon.phase(), DaemonPhase::Serving);
    assert!(daemon.stats().is_conserved());
}

#[test]
fn control_frames_round_trip_over_the_wire() {
    let (dataset, baseline) = setup();
    let mut daemon = daemon(&baseline, AdmissionConfig::default(), "control");
    daemon
        .handle_frame(&encode_frame(&Frame::SubmitBatch {
            tenant: 0,
            queries: features(&baseline, &dataset, BATCH_SIZE),
        }))
        .expect("admits");
    daemon.pump_all().expect("pumps");

    // Snapshot: the reply carries the service's own JSON telemetry.
    let reply = daemon
        .handle_frame(&encode_frame(&Frame::Snapshot))
        .expect("snapshot");
    let Frame::SnapshotText { json } = decoded(&reply) else {
        panic!("snapshot reply is not telemetry");
    };
    let snapshot = TelemetrySnapshot::from_json(&json).expect("parses");
    assert_eq!(
        snapshot.without_timing(),
        daemon.service().snapshot().without_timing()
    );

    // Retarget: a sane target acks, a nonsense one errors typed.
    let reply = daemon
        .handle_frame(&encode_frame(&Frame::Retarget {
            target_error_rate: 0.25,
        }))
        .expect("retarget");
    assert!(matches!(decoded(&reply), Frame::Ack));
    let reply = daemon
        .handle_frame(&encode_frame(&Frame::Retarget {
            target_error_rate: 2.0,
        }))
        .expect("bad retarget still replies");
    assert!(matches!(decoded(&reply), Frame::ErrorReply { .. }));

    // Checkpoint: the reply bytes decode to the service's own state.
    let reply = daemon
        .handle_frame(&encode_frame(&Frame::Checkpoint))
        .expect("checkpoint");
    let Frame::CheckpointBytes { bytes } = decoded(&reply) else {
        panic!("checkpoint reply carries no bytes");
    };
    assert_eq!(
        ServiceCheckpoint::decode(&bytes).expect("decodes"),
        daemon.service().checkpoint()
    );

    // A response kind offered as a request is answered, not served.
    let reply = daemon
        .handle_frame(&encode_frame(&Frame::Ack))
        .expect("confused peer still gets a reply");
    assert!(matches!(decoded(&reply), Frame::ErrorReply { .. }));
    assert!(daemon.stats().is_conserved());
}

#[test]
fn hostile_bytes_are_typed_and_oversized_is_rejected_before_allocation() {
    let (_, baseline) = setup();
    let mut daemon = daemon(
        &baseline,
        AdmissionConfig::default().with_max_frame_bytes(1 << 12),
        "hostile",
    );
    let valid = encode_frame(&Frame::Snapshot);
    let cap = 1 << 12;

    assert_eq!(
        decode_frame(b"GARBAGE-NOT-A-FRAME", cap),
        Err(WireError::BadMagic)
    );
    assert_eq!(
        decode_frame(&valid[..FRAME_OVERHEAD - 3], cap),
        Err(WireError::Truncated)
    );
    let mut versioned = valid.clone();
    versioned[4] = versioned[4].wrapping_add(1);
    assert!(matches!(
        decode_frame(&versioned, cap),
        Err(WireError::UnsupportedVersion(_))
    ));
    let mut flipped = valid.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    assert!(matches!(
        decode_frame(&flipped, cap),
        Err(WireError::Corrupted(_))
    ));

    // A length field claiming 4 GiB is refused by arithmetic on the
    // declared size — before any buffer is sized from it.
    let mut liar = valid.clone();
    liar[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    let Err(WireError::Oversized { declared, cap: got }) = decode_frame(&liar, cap) else {
        panic!("length lie decoded");
    };
    assert!(declared > got);

    // Through the daemon: oversized becomes an accounted Reject reply,
    // other hostile bytes become accounted typed errors.
    let reply = daemon.handle_frame(&liar).expect("oversized is replied to");
    assert!(matches!(
        decoded(&reply),
        Frame::Reject {
            code: RejectCode::Oversized,
            ..
        }
    ));
    assert!(daemon.handle_frame(b"GARBAGE-NOT-A-FRAME").is_err());
    assert!(daemon.handle_frame(&flipped).is_err());
    let stats = daemon.stats();
    assert_eq!(stats.rejected_oversized, 1);
    assert_eq!(stats.malformed_frames, 2);
    assert!(stats.is_conserved());
}

#[test]
fn overload_rejections_carry_codes_and_exact_accounting() {
    let (dataset, baseline) = setup();
    let config = AdmissionConfig::default()
        .with_max_queued_queries(2 * BATCH_SIZE)
        .with_tenant_quota(BATCH_SIZE);
    let mut daemon = daemon(&baseline, config, "overload");
    let batch = features(&baseline, &dataset, BATCH_SIZE);
    let submit = |tenant: u32| {
        encode_frame(&Frame::SubmitBatch {
            tenant,
            queries: batch.clone(),
        })
    };

    // Tenant 0 fills its quota, then hits it; tenant 1 fills the queue;
    // tenant 2 bounces off global backpressure.
    assert!(matches!(
        decoded(&daemon.handle_frame(&submit(0)).expect("admits")),
        Frame::Ack
    ));
    assert!(matches!(
        decoded(&daemon.handle_frame(&submit(0)).expect("replies")),
        Frame::Reject {
            code: RejectCode::TenantQuota,
            ..
        }
    ));
    assert!(matches!(
        decoded(&daemon.handle_frame(&submit(1)).expect("admits")),
        Frame::Ack
    ));
    assert!(matches!(
        decoded(&daemon.handle_frame(&submit(2)).expect("replies")),
        Frame::Reject {
            code: RejectCode::Backpressure,
            ..
        }
    ));

    // Pumping frees the queue deterministically; the same tenant admits.
    assert_eq!(daemon.pump_all().expect("pumps").len(), 2);
    assert!(matches!(
        decoded(&daemon.handle_frame(&submit(2)).expect("admits")),
        Frame::Ack
    ));

    let stats = daemon.stats();
    assert_eq!(stats.offered_frames, 5);
    assert_eq!(stats.admitted_frames, 3);
    assert_eq!(stats.admitted_queries, 3 * BATCH_SIZE as u64);
    assert_eq!(stats.rejected_quota, 1);
    assert_eq!(stats.rejected_backpressure, 1);
    assert!(stats.is_conserved());
}

#[test]
fn hang_deadline_degrades_the_wedged_shard_at_any_thread_count() {
    let (dataset, baseline) = setup();
    let chaos = ChaosPlan::none().with_event(ChaosEvent::Hang { batch: 2, shard: 1 });
    let mut outcomes = Vec::new();
    for exec in [ExecConfig::serial(), ExecConfig::threads(8)] {
        let service = {
            let device = DeviceProfile::reference();
            let config = ServeConfig::new(SHARDS)
                .with_seed(SEED)
                .with_target_error_rate(0.2)
                .with_batch_size(BATCH_SIZE)
                .with_exec(exec);
            // A long backoff keeps the wedged shard out of the serving set
            // far past the admission deadline.
            let sup = SupervisorConfig::new(device.clone())
                .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
                .with_chaos(chaos.clone())
                .with_retry_policy(3, 64);
            MonitoringService::supervised(&baseline, sup, config).expect("deploys")
        };
        let journal = StateJournal::create(scratch_path("hang")).expect("creates");
        let config = AdmissionConfig::default().with_hang_deadline(2);
        let mut daemon = Daemon::new(service, journal, config).expect("deploys");

        let mut replies = 0usize;
        for b in 0..10 {
            let batch: Vec<Vec<f32>> = {
                let spec = baseline.spec();
                (0..BATCH_SIZE)
                    .map(|i| spec.extract(dataset.trace((b * BATCH_SIZE + i) % dataset.len())))
                    .collect()
            };
            daemon.try_submit(0, batch).expect("admits");
            replies += daemon.pump_all().expect("pumps").len();
        }

        // The hang wedged shard 1; the deadline force-degraded it to the
        // baseline fallback instead of letting it block the service.
        assert_eq!(replies, 10, "every batch was answered");
        assert!(daemon.stats().deadline_degrades >= 1);
        assert_eq!(daemon.service().shard_healths()[1], ShardHealth::Degraded);
        assert_eq!(daemon.phase(), DaemonPhase::Serving);
        outcomes.push((daemon.stats().deadline_degrades, daemon.verdict_checksum()));
    }
    // The deadline fires from batch indices, so the degradation decision
    // and the verdict stream are identical serial and on an 8-thread pool.
    assert_eq!(outcomes[0], outcomes[1]);
}

//! The deployment chain: characterize a device → calibrate → pick the
//! undervolt offset → run the protected detector → encode the MSR command.

use shmd_volt::calibration::{Calibrator, DeviceProfile};
use shmd_volt::voltage::{MsrVoltageCommand, VoltagePlane};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{evaluate, train_baseline, HmdTrainConfig};

#[test]
fn calibrate_then_deploy_then_detect() {
    let device = DeviceProfile::reference();
    let curve = Calibrator::new().with_step(2).calibrate(&device);

    // The paper's fault window: first faults around −103…−145 mV.
    assert!((-150..=-90).contains(&curve.first_fault_offset().get()));
    assert!(curve.freeze_offset().get() < curve.first_fault_offset().get());

    // Pick the er = 0.1 operating point.
    let offset = curve.offset_for_error_rate(0.1).expect("reachable");
    assert!(offset.get() < curve.first_fault_offset().get() + 5);
    assert!(offset.get() > curve.freeze_offset().get());

    // Deploy a detector at that physical offset.
    let dataset = Dataset::generate(&DatasetConfig::small(100), 77);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    let mut deployed = StochasticHmd::at_offset(&baseline, &curve, offset, 1).expect("deployable");
    assert!((deployed.error_rate() - 0.1).abs() < 0.1);
    let m = evaluate(&mut deployed, &dataset, split.testing());
    assert!(m.accuracy() > 0.85, "deployed accuracy {m}");

    // The voltage command a trusted controller writes.
    let cmd = MsrVoltageCommand::new(VoltagePlane::CpuCore, offset).expect("encodable");
    let decoded = MsrVoltageCommand::decode(cmd.encode()).expect("decodable");
    assert_eq!(decoded.plane(), VoltagePlane::CpuCore);
    assert!((decoded.offset().get() - offset.get()).abs() <= 1);
}

#[test]
fn hotter_devices_need_deeper_offsets() {
    // §IX: the controller "needs to dynamically adjust the undervolting
    // level based on the current temperature".
    let calibrator = Calibrator::new().with_step(2);
    let mut cold = DeviceProfile::reference();
    cold.temp_c = 35.0;
    let mut hot = DeviceProfile::reference();
    hot.temp_c = 80.0;
    let cold_offset = calibrator
        .calibrate(&cold)
        .offset_for_error_rate(0.1)
        .expect("reachable");
    let hot_offset = calibrator
        .calibrate(&hot)
        .offset_for_error_rate(0.1)
        .expect("reachable");
    assert!(
        hot_offset.get() < cold_offset.get(),
        "hot die is faster, needs deeper undervolt: {hot_offset} vs {cold_offset}"
    );
}

#[test]
fn stale_calibration_drifts_the_error_rate() {
    let calibrator = Calibrator::new().with_step(2);
    let mut cold = DeviceProfile::reference();
    cold.temp_c = 35.0;
    let cold_offset = calibrator
        .calibrate(&cold)
        .offset_for_error_rate(0.1)
        .expect("reachable");
    let mut hot = DeviceProfile::reference();
    hot.temp_c = 80.0;
    let drifted = calibrator.calibrate(&hot).error_rate_at(cold_offset);
    assert!(
        (drifted - 0.1).abs() > 0.02,
        "temperature change must drift the error rate: {drifted}"
    );
}

#[test]
fn detection_still_works_across_devices_after_recalibration() {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 78);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    for seed in 1..4u64 {
        let device = DeviceProfile::sampled(format!("unit-{seed}"), seed);
        let curve = Calibrator::new().with_step(2).calibrate(&device);
        let offset = curve.offset_for_error_rate(0.05).expect("reachable");
        let mut deployed =
            StochasticHmd::at_offset(&baseline, &curve, offset, seed).expect("deployable");
        let m = evaluate(&mut deployed, &dataset, split.testing());
        assert!(
            m.accuracy() > 0.85,
            "unit-{seed} deployed accuracy {m} at {offset}"
        );
    }
}

//! Watchdog-under-drift semantics: the delivered-rate watchdog monitors
//! the *physics* (the fault stream), not the workload, so a pure
//! program-mix shift at a fixed operating point must never fire it —
//! recalibrating on workload drift would churn generations for nothing.
//! A genuine delivered-rate excursion (a thermal spike) must still fire
//! even while the workload is drifting underneath it: the two signals
//! are independent and the watchdog must not lose one in the other.

use shmd_volt::calibration::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::drift::{DriftSchedule, DriftStream};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosEvent, ChaosPlan, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

const BATCHES: u64 = 30;
const BATCH: usize = 8;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 23);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

/// Streams `BATCHES` batches of Dirichlet-drifting workload through a
/// supervised pool and returns the service for inspection.
fn drive_drifting_workload(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    supervision: SupervisorConfig,
    seed: u64,
    exec: ExecConfig,
) -> MonitoringService {
    // Spiky mixes (concentration 0.3): single families dominate whole
    // segments, the harshest workload shift short of an absent class.
    let schedule = DriftSchedule::dirichlet(4, BATCHES * BATCH as u64 / 4, 0.3, seed)
        .expect("schedule is well-formed");
    let stream = DriftStream::new(dataset, &schedule, seed ^ 0x5eed)
        .expect("generated datasets cover every family");
    let spec = baseline.spec();
    let config = ServeConfig::new(2)
        .with_seed(seed)
        .with_batch_size(BATCH)
        .with_target_error_rate(0.1)
        .with_exec(exec);
    let mut service =
        MonitoringService::supervised(baseline, supervision, config).expect("deploys");
    let mut position = 0u64;
    for _ in 0..BATCHES {
        let batch: Vec<Vec<f32>> = (0..BATCH)
            .map(|i| spec.extract(dataset.trace(stream.pick(position + i as u64))))
            .collect();
        let verdicts = service.process_feature_batch(&batch);
        assert_eq!(verdicts.len(), BATCH, "drifting workload dropped queries");
        position += BATCH as u64;
    }
    service
}

#[test]
fn workload_mix_shift_does_not_fire_the_watchdog() {
    let (dataset, baseline) = setup();
    // The same tightened watchdog the thermal-drift test uses: windows
    // complete many times over this stream, so a zero count means the
    // watchdog stayed quiet, not that it never looked.
    let supervision =
        SupervisorConfig::new(DeviceProfile::reference()).with_watchdog(2048, 6.0, 0.02);
    let service =
        drive_drifting_workload(&baseline, &dataset, supervision, 31, ExecConfig::serial());
    let snapshot = service.snapshot();
    assert_eq!(snapshot.queries, BATCHES * BATCH as u64);
    assert_eq!(
        snapshot.total_drift_events(),
        0,
        "a workload mix shift at a fixed operating point must not read as \
         delivered-rate drift"
    );
    assert_eq!(snapshot.total_crashes(), 0);
    assert_eq!(
        snapshot.total_retries(),
        0,
        "no false recalibration on pure workload drift"
    );
    assert!(service.shard_healths().iter().all(|h| h.is_serving()));
}

#[test]
fn workload_drift_replays_bit_identically_across_thread_counts() {
    let (dataset, baseline) = setup();
    let run = |exec: ExecConfig| {
        let supervision =
            SupervisorConfig::new(DeviceProfile::reference()).with_watchdog(2048, 6.0, 0.02);
        let service = drive_drifting_workload(&baseline, &dataset, supervision, 31, exec);
        (
            service.verdict_checksum(),
            service.snapshot().without_timing(),
        )
    };
    let (serial_checksum, serial_snapshot) = run(ExecConfig::serial());
    let (threaded_checksum, threaded_snapshot) = run(ExecConfig::threads(8));
    assert_eq!(serial_checksum, threaded_checksum);
    assert_eq!(serial_snapshot, threaded_snapshot);
}

#[test]
fn delivered_rate_excursion_still_fires_during_workload_drift() {
    let (dataset, baseline) = setup();
    // The −15 °C spike from the thermal-drift test, injected *while* the
    // workload is shifting: the watchdog reads the fault stream, so the
    // mix churn underneath must not mask a real physics excursion.
    let chaos = ChaosPlan::none().with_event(ChaosEvent::DriftSpike {
        batch: 6,
        delta_c: -15.0,
        duration: 12,
    });
    let supervision = SupervisorConfig::new(DeviceProfile::reference())
        .with_chaos(chaos)
        .with_watchdog(2048, 6.0, 0.02);
    let service =
        drive_drifting_workload(&baseline, &dataset, supervision, 31, ExecConfig::serial());
    let snapshot = service.snapshot();
    assert_eq!(
        snapshot.total_crashes(),
        0,
        "a −15 °C drift is not a freeze"
    );
    assert!(
        snapshot.total_drift_events() >= 1,
        "the watchdog lost a real delivered-rate excursion in workload churn"
    );
    assert!(
        service.shard_healths().iter().all(|h| h.is_serving()),
        "drift recovery must end serving: {:?}",
        service.shard_healths()
    );
    assert_eq!(snapshot.queries, BATCHES * BATCH as u64);
}

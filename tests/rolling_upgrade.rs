//! The rolling-upgrade kill matrix: the old daemon instance is killed at
//! every phase boundary of the upgrade state machine — mid-drain,
//! post-checkpoint/pre-handoff, and post-handoff/pre-ack — and in every
//! case the write-ahead journal recovers to an instance whose verdict
//! checksum is bit-identical to a never-upgraded reference, replayed
//! serially and on an 8-thread pool. A clean (unkilled) upgrade loses
//! zero committed queries and the successor proves checksum identity
//! before taking traffic.

use shmd_volt::calibration::DeviceProfile;
use shmd_volt::environment::EnvironmentConfig;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosPlan, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::{AdmissionConfig, BaselineHmd, Daemon, DaemonPhase, StateJournal};

const SHARDS: usize = 4;
const BATCHES: usize = 16;
const BATCH_SIZE: usize = 8;
const CADENCE: u64 = 4;
const UPGRADE_AT: usize = 8;
const DRAIN_AHEAD: usize = 3;
const SEED: u64 = 29;

/// Where in the upgrade state machine the old instance dies.
#[derive(Clone, Copy, Debug)]
enum KillPoint {
    /// Draining began, some (not all) queued batches pumped.
    MidDrain,
    /// Fully drained and the final checkpoint journaled, but the hand-off
    /// frame was never produced for the successor.
    PostCheckpointPreHandoff,
    /// The hand-off frame was produced and delivered, but the successor
    /// never acknowledged taking traffic.
    PostHandoffPreAck,
}

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 31);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

/// Rebuilt identically on every restore, exactly as a real deployment
/// reconstructs its supervision from its own config sources.
fn supervision() -> SupervisorConfig {
    let device = DeviceProfile::reference();
    SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
        .with_chaos(ChaosPlan::seeded(SEED, SHARDS, 12, 2, 1))
}

fn deploy(baseline: &BaselineHmd, exec: ExecConfig) -> MonitoringService {
    let config = ServeConfig::new(SHARDS)
        .with_seed(SEED)
        .with_target_error_rate(0.2)
        .with_batch_size(BATCH_SIZE)
        .with_exec(exec);
    MonitoringService::supervised(baseline, supervision(), config).expect("deploys")
}

fn feature_stream(baseline: &BaselineHmd, dataset: &Dataset) -> Vec<Vec<Vec<f32>>> {
    let spec = baseline.spec();
    (0..BATCHES)
        .map(|b| {
            (0..BATCH_SIZE)
                .map(|i| spec.extract(dataset.trace((b * BATCH_SIZE + i) % dataset.len())))
                .collect()
        })
        .collect()
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "shmd-rolling-upgrade-test-{}-{tag}.journal",
        std::process::id()
    ))
}

fn admission() -> AdmissionConfig {
    AdmissionConfig::default().with_checkpoint_cadence(CADENCE)
}

/// The never-upgraded reference: the same stream through a plain daemon,
/// no drain, no hand-off.
fn reference_run(baseline: &BaselineHmd, features: &[Vec<Vec<f32>>]) -> (u64, u64) {
    let path = scratch_path("reference");
    let journal = StateJournal::create(&path).expect("creates");
    let mut daemon =
        Daemon::new(deploy(baseline, ExecConfig::serial()), journal, admission()).expect("deploys");
    for batch in features {
        daemon.try_submit(0, batch.clone()).expect("admits");
        daemon.pump_all().expect("pumps");
    }
    let out = (daemon.verdict_checksum(), daemon.service().served());
    drop(daemon);
    std::fs::remove_file(&path).expect("cleanup");
    out
}

/// Runs the old instance up to `UPGRADE_AT`, starts the upgrade, and
/// kills it at `kill`. Returns the hand-off bytes if the kill point is
/// late enough for them to exist.
fn victim_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    kill: KillPoint,
    path: &std::path::Path,
) -> Option<Vec<u8>> {
    let journal = StateJournal::create(path).expect("creates");
    let mut daemon =
        Daemon::new(deploy(baseline, ExecConfig::serial()), journal, admission()).expect("deploys");
    for batch in features.iter().take(UPGRADE_AT) {
        daemon.try_submit(0, batch.clone()).expect("admits");
        daemon.pump_all().expect("pumps");
    }
    // Queue a few batches ahead, then start draining: the drain must
    // commit them before any hand-off is possible.
    for batch in features.iter().skip(UPGRADE_AT).take(DRAIN_AHEAD) {
        daemon.try_submit(0, batch.clone()).expect("admits");
    }
    daemon.begin_drain();
    assert_eq!(daemon.phase(), DaemonPhase::Draining);
    match kill {
        KillPoint::MidDrain => {
            // One of three queued batches pumps, then the process dies:
            // the journal holds its commit, the rest were never admitted
            // as committed work.
            daemon.pump(1).expect("pumps");
            assert_eq!(daemon.phase(), DaemonPhase::Draining);
            None
        }
        KillPoint::PostCheckpointPreHandoff => {
            daemon.pump_all().expect("pumps");
            assert_eq!(daemon.phase(), DaemonPhase::Drained);
            // The final checkpoint reaches the journal inside handoff();
            // the frame it returns is "lost" before anyone reads it.
            let _lost = daemon.handoff().expect("hands off");
            None
        }
        KillPoint::PostHandoffPreAck => {
            daemon.pump_all().expect("pumps");
            let handoff = daemon.handoff().expect("hands off");
            assert_eq!(daemon.phase(), DaemonPhase::HandedOff);
            Some(handoff)
        }
    }
    // `daemon` drops here: the kill.
}

/// Recovers the old instance's journal, restores on `exec`, replays the
/// rest of the stream, and returns the final (checksum, served).
fn recover_and_replay(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    path: &std::path::Path,
    exec: ExecConfig,
) -> (u64, u64) {
    let recovery = StateJournal::recover(path).expect("recovers");
    let checkpoint = recovery.checkpoint.expect("a checkpoint survived");
    let mut service = MonitoringService::restore(baseline, Some(supervision()), &checkpoint, exec)
        .expect("restores");
    for (b, batch) in features
        .iter()
        .enumerate()
        .skip(checkpoint.batches as usize)
    {
        service.process_feature_batch(batch);
        // Every batch the dead instance committed must replay to the
        // exact journaled checksum and stream position.
        if let Some(commit) = recovery.commits.iter().find(|c| c.batch == b as u64) {
            assert_eq!(commit.checksum, service.verdict_checksum(), "batch {b}");
            assert_eq!(commit.stream_pos, service.served(), "batch {b}");
        }
    }
    (service.verdict_checksum(), service.served())
}

#[test]
fn kill_at_every_upgrade_phase_boundary_recovers_to_the_reference() {
    let (dataset, baseline) = setup();
    let features = feature_stream(&baseline, &dataset);
    let reference = reference_run(&baseline, &features);

    for kill in [
        KillPoint::MidDrain,
        KillPoint::PostCheckpointPreHandoff,
        KillPoint::PostHandoffPreAck,
    ] {
        let path = scratch_path(&format!("{kill:?}"));
        let handoff = victim_run(&baseline, &features, kill, &path);
        for exec in [ExecConfig::serial(), ExecConfig::threads(8)] {
            let threads = exec.thread_count();
            let recovered = recover_and_replay(&baseline, &features, &path, exec);
            assert_eq!(
                recovered, reference,
                "kill at {kill:?} ({threads} threads): journal recovery diverged"
            );
        }
        // Past the hand-off boundary the successor path must agree with
        // the journal path: whichever the driver picks, same verdicts.
        if let Some(handoff) = handoff {
            for exec in [ExecConfig::serial(), ExecConfig::threads(8)] {
                let threads = exec.thread_count();
                let successor_path = scratch_path(&format!("{kill:?}-successor-{threads}"));
                let journal = StateJournal::create(&successor_path).expect("creates");
                let mut successor = Daemon::resume_from_handoff(
                    &handoff,
                    &baseline,
                    Some(supervision()),
                    exec,
                    journal,
                    admission(),
                )
                .expect("successor resumes");
                for batch in features.iter().skip(UPGRADE_AT + DRAIN_AHEAD) {
                    successor.try_submit(0, batch.clone()).expect("admits");
                    successor.pump_all().expect("pumps");
                }
                assert_eq!(
                    (successor.verdict_checksum(), successor.service().served()),
                    reference,
                    "kill at {kill:?} ({threads} threads): successor diverged"
                );
                drop(successor);
                std::fs::remove_file(&successor_path).expect("cleanup");
            }
        }
        std::fs::remove_file(&path).expect("cleanup");
    }
}

#[test]
fn clean_upgrade_loses_zero_committed_queries() {
    let (dataset, baseline) = setup();
    let features = feature_stream(&baseline, &dataset);
    let reference = reference_run(&baseline, &features);

    let old_path = scratch_path("clean-old");
    let new_path = scratch_path("clean-new");
    let journal = StateJournal::create(&old_path).expect("creates");
    let mut old = Daemon::new(
        deploy(&baseline, ExecConfig::serial()),
        journal,
        admission(),
    )
    .expect("deploys");
    for batch in features.iter().take(UPGRADE_AT) {
        old.try_submit(0, batch.clone()).expect("admits");
        old.pump_all().expect("pumps");
    }
    // The drain window: queued work still commits, new work is refused
    // (the client retries against the successor), then the hand-off.
    old.try_submit(0, features[UPGRADE_AT].clone())
        .expect("admits");
    old.begin_drain();
    assert!(old.try_submit(0, features[UPGRADE_AT + 1].clone()).is_err());
    old.pump_all().expect("drains");
    let handoff = old.handoff().expect("hands off");
    let old_served = old.service().served();
    drop(old);

    let journal = StateJournal::create(&new_path).expect("creates");
    let mut new = Daemon::resume_from_handoff(
        &handoff,
        &baseline,
        Some(supervision()),
        ExecConfig::serial(),
        journal,
        admission(),
    )
    .expect("successor resumes");
    // Identity was asserted before traffic: the successor starts exactly
    // where the old instance committed to.
    assert_eq!(new.service().served(), old_served);
    assert_eq!(new.phase(), DaemonPhase::Serving);
    // The refused batch is retried first — nothing is lost, nothing is
    // double-served.
    for batch in features.iter().skip(UPGRADE_AT + 1) {
        new.try_submit(0, batch.clone()).expect("admits");
        new.pump_all().expect("pumps");
    }
    assert_eq!(
        (new.verdict_checksum(), new.service().served()),
        reference,
        "upgraded stream diverged from the never-upgraded reference"
    );
    drop(new);
    std::fs::remove_file(&old_path).expect("cleanup");
    std::fs::remove_file(&new_path).expect("cleanup");
}

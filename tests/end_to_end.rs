//! End-to-end integration: dataset → training → protection → attack.

use shmd_attack::campaign::{AttackCampaign, AttackTrainingSet};
use shmd_attack::reverse::ReverseConfig;
use shmd_attack::ProxyKind;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::rhmd::{Rhmd, RhmdConstruction};
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{evaluate, train_baseline, HmdTrainConfig};

fn setup() -> (Dataset, stochastic_hmd::BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(120), 2024);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("training succeeds");
    (dataset, baseline)
}

#[test]
fn full_pipeline_runs_and_preserves_the_papers_shape() {
    let (dataset, baseline) = setup();
    let split = dataset.three_fold_split(0);

    // Baseline detects well.
    let mut unprotected = baseline.clone();
    let base_acc = evaluate(&mut unprotected, &dataset, split.testing()).accuracy();
    assert!(base_acc > 0.9, "baseline accuracy {base_acc}");

    // Protection costs little accuracy.
    let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 7).expect("valid er");
    let prot_acc = evaluate(&mut protected, &dataset, split.testing()).accuracy();
    assert!(
        base_acc - prot_acc < 0.08,
        "protection cost too high: {base_acc} -> {prot_acc}"
    );

    // An attack campaign completes against both victims.
    let campaign = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp))
        .with_training_set(AttackTrainingSet::AttackerTraining);
    let base_report = campaign
        .run(&mut unprotected, &dataset, 0)
        .expect("baseline campaign");
    let prot_report = campaign
        .run(&mut protected, &dataset, 0)
        .expect("stochastic campaign");

    // Reverse engineering is at least as hard against the stochastic HMD.
    assert!(
        prot_report.re_effectiveness <= base_report.re_effectiveness + 0.05,
        "stochasticity must not make RE easier: {prot_report:?} vs {base_report:?}"
    );
    assert!(base_report.re_effectiveness > 0.9);
}

#[test]
fn rhmd_and_stochastic_hmd_are_both_attackable() {
    let (dataset, baseline) = setup();
    let split = dataset.three_fold_split(0);
    let mut rhmd = Rhmd::train(
        &dataset,
        split.victim_training(),
        RhmdConstruction::TwoFeatures,
        &HmdTrainConfig::fast(),
        1,
    )
    .expect("rhmd trains");
    let campaign = AttackCampaign::new(
        ReverseConfig::new(ProxyKind::Mlp).with_specs(RhmdConstruction::TwoFeatures.specs()),
    );
    let report = campaign.run(&mut rhmd, &dataset, 0).expect("rhmd campaign");
    assert!(report.transfer.attempted > 0);

    let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 3).expect("valid er");
    let campaign = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp));
    let report = campaign
        .run(&mut protected, &dataset, 0)
        .expect("stochastic campaign");
    assert!(report.transfer.attempted > 0);
}

#[test]
fn moving_target_defense_varies_boundary_scores() {
    let (dataset, baseline) = setup();
    let split = dataset.three_fold_split(0);
    let mut protected = StochasticHmd::from_baseline(&baseline, 0.5, 9).expect("valid er");
    let varies = split.testing().iter().any(|&i| {
        let scores: std::collections::HashSet<u64> = (0..30)
            .map(|_| protected.score(dataset.trace(i)).to_bits())
            .collect();
        scores.len() > 2
    });
    assert!(varies, "some test trace must show a moving boundary");
}

#[test]
fn zero_error_rate_reduces_to_the_baseline_everywhere() {
    let (dataset, baseline) = setup();
    let split = dataset.three_fold_split(0);
    let mut protected = StochasticHmd::from_baseline(&baseline, 0.0, 1).expect("valid er");
    for &i in split.testing().iter().take(30) {
        let t = dataset.trace(i);
        let expected = baseline.score_features(&baseline.spec().extract(t));
        assert_eq!(protected.score(t), expected);
    }
}

//! The serving layer's failure semantics: a shard whose calibration cannot
//! deliver the target error rate degrades to the baseline detector —
//! mid-stream, without dropping queries — and the telemetry layer records
//! exactly what happened. Degradation must never cost determinism: the
//! verdict stream stays bit-identical at any thread count through the
//! whole degrade/recover cycle.

use shmd_volt::calibration::{CalibrationCurve, Calibrator, DeviceProfile};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::telemetry::TelemetrySnapshot;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

fn setup() -> (Dataset, BaselineHmd, CalibrationCurve) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 31);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    let curve = Calibrator::new()
        .with_step(2)
        .calibrate(&DeviceProfile::reference());
    (dataset, baseline, curve)
}

fn stream(dataset: &Dataset, n: usize) -> Vec<&Trace> {
    (0..n).map(|i| dataset.trace(i % dataset.len())).collect()
}

#[test]
fn deploy_time_degradation_serves_the_baseline_and_records_why() {
    let (dataset, baseline, curve) = setup();
    // FREEZE_ERROR_RATE is 0.5: no calibration reaches er = 0.9, so every
    // shard must fall back to the baseline at deploy time.
    let config = ServeConfig::new(2)
        .with_target_error_rate(0.9)
        .with_seed(11);
    let mut service =
        MonitoringService::deploy(&baseline, &curve, config).expect("0.9 is a valid target");
    let queries = stream(&dataset, 24);
    let verdicts = service.process_stream(&queries);
    assert_eq!(verdicts.len(), 24, "degraded pool must answer every query");
    for (v, q) in verdicts.iter().zip(&queries) {
        let expected = baseline.score_features(&baseline.spec().extract(q));
        assert_eq!(
            v.score, expected,
            "degraded shard must serve baseline scores"
        );
        assert_eq!(
            v.label.is_malware(),
            v.score >= Detector::threshold(&baseline)
        );
    }
    let snapshot = service.snapshot();
    assert_eq!(snapshot.degraded_shards(), 2);
    assert_eq!(snapshot.degradation_events, 2);
    assert_eq!(snapshot.total_faults().multiplies, 0, "no injector ran");
    for shard in &snapshot.shards {
        assert!(shard.degraded);
        assert!(
            shard.degraded_reason.is_some(),
            "telemetry records the cause"
        );
    }
}

#[test]
fn mid_stream_degradation_and_recovery_preserve_history() {
    let (dataset, baseline, curve) = setup();
    let mut service =
        MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(12))
            .expect("valid config");
    let queries = stream(&dataset, 30);
    service.process_stream(&queries);
    let healthy = service.snapshot();
    assert_eq!(healthy.degraded_shards(), 0);
    let faults_so_far = healthy.total_faults();
    assert!(faults_so_far.multiplies > 0);

    // The operator retargets past the freeze point mid-stream: the next
    // recalibration degrades the whole pool, but serving continues.
    service.retarget(0.95).expect("a valid probability");
    assert_eq!(service.recalibrate(&baseline, &curve), 3);
    let verdicts = service.process_stream(&queries);
    assert_eq!(verdicts.len(), 30);
    let degraded = service.snapshot();
    assert_eq!(degraded.degraded_shards(), 3);
    assert_eq!(degraded.queries, 60, "no query dropped across the swap");
    assert_eq!(
        degraded.total_faults(),
        faults_so_far,
        "retired fault counters survive the backend swap"
    );

    // Recovery: a reachable target brings the moving target back, and the
    // degradation history stays cumulative.
    service.retarget(0.1).expect("a valid probability");
    assert_eq!(service.recalibrate(&baseline, &curve), 0);
    service.process_stream(&queries);
    let recovered = service.snapshot();
    assert_eq!(recovered.degraded_shards(), 0);
    assert_eq!(recovered.degradation_events, 3, "history is not erased");
    assert!(
        recovered.total_faults().multiplies > faults_so_far.multiplies,
        "recovered shards inject faults again"
    );
}

#[test]
fn degrade_recover_cycle_is_thread_invariant() {
    let (dataset, baseline, curve) = setup();
    let queries = stream(&dataset, 48);
    let run = |exec: ExecConfig| {
        let config = ServeConfig::new(4)
            .with_seed(13)
            .with_batch_size(16)
            .with_exec(exec);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
        let mut verdicts = service.process_stream(&queries);
        service.retarget(0.9).expect("a valid probability");
        service.recalibrate(&baseline, &curve);
        verdicts.extend(service.process_stream(&queries));
        service.retarget(0.1).expect("a valid probability");
        service.recalibrate(&baseline, &curve);
        verdicts.extend(service.process_stream(&queries));
        (verdicts, service.snapshot().without_timing())
    };
    let (serial_verdicts, serial_snapshot) = run(ExecConfig::serial());
    for threads in [2, 8] {
        let (verdicts, snapshot) = run(ExecConfig::threads(threads));
        assert_eq!(
            verdicts, serial_verdicts,
            "degrade/recover verdicts differ at {threads} threads"
        );
        assert_eq!(
            snapshot, serial_snapshot,
            "degrade/recover telemetry differs at {threads} threads"
        );
    }
}

#[test]
fn telemetry_json_survives_a_degradation_cycle() {
    let (dataset, baseline, curve) = setup();
    let mut service =
        MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(14))
            .expect("valid config");
    let queries = stream(&dataset, 20);
    service.process_stream(&queries);
    service.retarget(0.9).expect("a valid probability");
    service.recalibrate(&baseline, &curve);
    service.process_stream(&queries);

    let snapshot = service.snapshot();
    let back = TelemetrySnapshot::from_json(&snapshot.to_json()).expect("parses");
    assert_eq!(back, snapshot, "round trip must be lossless");
    assert_eq!(back.degraded_shards(), 2);
    assert!(back
        .shards
        .iter()
        .all(|s| s.degraded_reason.as_deref().is_some_and(|r| !r.is_empty())));

    // Fixed seed ⇒ deterministic timing-stripped snapshot: a second
    // identical run exports identical JSON.
    let mut again = MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(14))
        .expect("valid config");
    again.process_stream(&queries);
    again.retarget(0.9).expect("a valid probability");
    again.recalibrate(&baseline, &curve);
    again.process_stream(&queries);
    assert_eq!(
        again.snapshot().without_timing().to_json(),
        snapshot.without_timing().to_json()
    );
}

//! End-to-end contract of the batched (structure-of-arrays) serving path:
//! widening the per-shard lane count is a pure wall-clock optimization.
//! Verdict streams, telemetry snapshots, and the order-sensitive verdict
//! checksum must be bit-identical to the scalar (`lanes = 1`) deployment
//! for any lane width, any detection policy, any thread count, and any
//! interleaving of well-formed and poison queries — including workloads a
//! property test skews adversarially.
//!
//! These tests drive the public `MonitoringService` API only, the same
//! surface `batch_bench` measures, so the BENCH_6 identity claims are
//! re-checked here on every CI run without the benchmark's wall-clock
//! noise.

use shmd_volt::calibration::{CalibrationCurve, Calibrator, DeviceProfile};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use std::sync::OnceLock;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig, Verdict};
use stochastic_hmd::telemetry::TelemetrySnapshot;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::{BaselineHmd, DetectionPolicy};

/// One trained fixture shared by every test and property case: training
/// dominates the wall clock, the contract under test does not depend on
/// which detector serves.
fn fixture() -> &'static (Dataset, BaselineHmd, CalibrationCurve) {
    static FIXTURE: OnceLock<(Dataset, BaselineHmd, CalibrationCurve)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 41);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        (dataset, baseline, curve)
    })
}

/// Replays `features` through a fresh deployment and returns the verdict
/// stream plus the timing-stripped snapshot.
fn replay(
    features: &[Vec<f32>],
    lanes: usize,
    policy: DetectionPolicy,
    exec: ExecConfig,
    batch_size: usize,
) -> (Vec<Verdict>, TelemetrySnapshot) {
    let (_, baseline, curve) = fixture();
    let config = ServeConfig::new(3)
        .with_seed(17)
        .with_policy(policy)
        .with_batch_size(batch_size)
        .with_exec(exec)
        .with_lanes(lanes);
    let mut service = MonitoringService::deploy(baseline, curve, config).expect("valid config");
    let mut verdicts = Vec::new();
    for chunk in features.chunks(batch_size.max(1)) {
        verdicts.extend(service.process_feature_batch(chunk));
    }
    (verdicts, service.snapshot().without_timing())
}

/// A well-formed feature vector for query index `i`.
fn well_formed(i: usize) -> Vec<f32> {
    let (dataset, baseline, _) = fixture();
    baseline.spec().extract(dataset.trace(i % dataset.len()))
}

#[test]
fn lane_width_never_changes_the_verdict_stream_or_checksum() {
    let features: Vec<Vec<f32>> = (0..96).map(well_formed).collect();
    let (scalar, scalar_snapshot) = replay(
        &features,
        1,
        DetectionPolicy::Single,
        ExecConfig::serial(),
        32,
    );
    for lanes in [8, 16] {
        let (wide, snapshot) = replay(
            &features,
            lanes,
            DetectionPolicy::Single,
            ExecConfig::serial(),
            32,
        );
        assert_eq!(wide, scalar, "verdicts differ at {lanes} lanes");
        assert_eq!(
            snapshot, scalar_snapshot,
            "telemetry differs at {lanes} lanes"
        );
        assert_eq!(
            snapshot.verdict_checksum, scalar_snapshot.verdict_checksum,
            "checksum differs at {lanes} lanes"
        );
    }
}

#[test]
fn poison_queries_mid_lane_are_contained_at_every_width() {
    let (_, baseline, _) = fixture();
    let dim = baseline.quantized().input_dim();
    // Poison lands mid-block on purpose: a width mismatch at stream
    // position 5 and a NaN at position 11 sit inside the first 16-lane
    // block, so lane regrouping around rejected slots is exercised.
    let mut features: Vec<Vec<f32>> = (0..64).map(well_formed).collect();
    features[5] = vec![0.25; dim + 2];
    features[11][0] = f32::NAN;
    features[37] = vec![0.5; dim.saturating_sub(1)];
    let (scalar, scalar_snapshot) = replay(
        &features,
        1,
        DetectionPolicy::Single,
        ExecConfig::serial(),
        16,
    );
    assert_eq!(
        scalar.iter().filter(|v| v.is_rejected()).count(),
        3,
        "all three poison queries must be rejected"
    );
    for lanes in [8, 16] {
        let (wide, snapshot) = replay(
            &features,
            lanes,
            DetectionPolicy::Single,
            ExecConfig::serial(),
            16,
        );
        assert_eq!(wide, scalar, "poison stream differs at {lanes} lanes");
        assert_eq!(snapshot, scalar_snapshot);
    }
}

#[test]
fn majority_policies_are_lane_and_thread_invariant() {
    let features: Vec<Vec<f32>> = (0..60).map(well_formed).collect();
    for policy in [
        DetectionPolicy::MajorityOf(3),
        DetectionPolicy::MajorityOf(5),
        DetectionPolicy::AnyOf(3),
    ] {
        let (scalar, scalar_snapshot) = replay(&features, 1, policy, ExecConfig::serial(), 20);
        for (lanes, exec) in [
            (8, ExecConfig::serial()),
            (16, ExecConfig::serial()),
            (8, ExecConfig::threads(4)),
        ] {
            let (wide, snapshot) = replay(&features, lanes, policy, exec, 20);
            assert_eq!(wide, scalar, "{policy:?} differs at {lanes} lanes");
            assert_eq!(snapshot, scalar_snapshot, "{policy:?} telemetry differs");
        }
    }
}

proptest::proptest! {
    /// Skewed adversarial workloads: random lengths, random poison
    /// placement (width mismatches and NaNs anywhere, including runs),
    /// random lane width and batch size — the batched replay must stay
    /// bit-identical to the scalar one.
    #[test]
    fn skewed_workloads_stay_bit_identical(
        len in 1usize..80,
        lanes in 2usize..17,
        batch_size in 1usize..33,
        poison in proptest::collection::vec(proptest::any::<u8>(), 1..80)
    ) {
        let (_, baseline, _) = fixture();
        let dim = baseline.quantized().input_dim();
        let features: Vec<Vec<f32>> = (0..len)
            .map(|i| match poison[i % poison.len()] % 7 {
                0 => vec![0.5; dim + 1 + (i % 3)],
                1 => {
                    let mut f = well_formed(i);
                    f[i % dim] = f32::NAN;
                    f
                }
                _ => well_formed(i),
            })
            .collect();
        let (scalar, scalar_snapshot) = replay(
            &features, 1, DetectionPolicy::MajorityOf(3), ExecConfig::serial(), batch_size,
        );
        let (wide, snapshot) = replay(
            &features, lanes, DetectionPolicy::MajorityOf(3), ExecConfig::serial(), batch_size,
        );
        proptest::prop_assert_eq!(wide, scalar);
        proptest::prop_assert_eq!(snapshot, scalar_snapshot);
    }
}

//! Reproducibility: every stochastic component is seed-deterministic, and
//! the *defensive* stochasticity is confined to the fault injector.

use shmd_attack::reverse::{reverse_engineer, ReverseConfig};
use shmd_attack::ProxyKind;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::exec::{derive_seed, ExecConfig};
use stochastic_hmd::explore::accuracy_sweep_with;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn dataset(seed: u64) -> Dataset {
    Dataset::generate(&DatasetConfig::small(60), seed)
}

#[test]
fn datasets_are_seed_deterministic() {
    let a = dataset(5);
    let b = dataset(5);
    assert_eq!(a.programs(), b.programs());
    for i in 0..a.len() {
        assert_eq!(a.trace(i), b.trace(i));
    }
}

#[test]
fn different_seeds_give_different_datasets() {
    let a = dataset(5);
    let b = dataset(6);
    assert_ne!(a.programs(), b.programs());
}

#[test]
fn feature_collection_is_deterministic() {
    // Paper §IV: "we get the exact same trace in every run when we supply
    // the same input".
    let d = dataset(7);
    let spec = FeatureSpec::frequency();
    for i in 0..d.len() {
        assert_eq!(spec.extract(d.trace(i)), spec.extract(d.trace(i)));
    }
}

#[test]
fn training_and_protection_are_seed_deterministic() {
    let d = dataset(8);
    let split = d.three_fold_split(0);
    let train = |_| {
        train_baseline(
            &d,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains")
    };
    let (a, b) = (train(()), train(()));
    assert_eq!(a.network(), b.network());

    let mut pa = StochasticHmd::from_baseline(&a, 0.3, 99).expect("valid");
    let mut pb = StochasticHmd::from_baseline(&b, 0.3, 99).expect("valid");
    for i in 0..d.len().min(20) {
        assert_eq!(pa.score(d.trace(i)), pb.score(d.trace(i)));
    }
}

#[test]
fn whole_attack_is_deterministic_against_a_deterministic_victim() {
    let d = dataset(9);
    let split = d.three_fold_split(0);
    let victim = train_baseline(
        &d,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    let run = || {
        let mut v = victim.clone();
        let proxy = reverse_engineer(
            &mut v,
            &d,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::LogisticRegression),
        )
        .expect("RE succeeds");
        split
            .testing()
            .iter()
            .map(|&i| proxy.score_trace(d.trace(i)).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn accuracy_sweep_is_thread_count_invariant() {
    // The ISSUE's acceptance bar: every SweepPoint bit-identical between a
    // serial run and an 8-worker run of the same experiment.
    let d = dataset(11);
    let grid = [0.0, 0.1, 0.5];
    let cfg = HmdTrainConfig::fast();
    let serial =
        accuracy_sweep_with(&d, &grid, 4, &cfg, 42, &ExecConfig::serial()).expect("serial sweep");
    let parallel = accuracy_sweep_with(&d, &grid, 4, &cfg, 42, &ExecConfig::threads(8))
        .expect("parallel sweep");
    assert_eq!(serial, parallel);
}

#[test]
fn experiment_seed_derivation_has_no_grid_collisions() {
    // Regression: the old additive scheme `seed + 0x1000·gi + 0x100·fi +
    // rep` collided for (fi, rep) vs (fi + 1, rep − 256) whenever
    // reps > 256, silently correlating repetitions across folds. The
    // derived scheme must keep every cell of such a grid distinct.
    let reps = 300; // > 256: the collision-prone regime
    let mut seen = std::collections::HashSet::new();
    for gi in 0..11u64 {
        for fi in 0..3u64 {
            for rep in 0..reps as u64 {
                assert!(
                    seen.insert(derive_seed(42, &[0x2a, gi, fi, rep])),
                    "seed collision at gi={gi} fi={fi} rep={rep}"
                );
            }
        }
    }
    // The additive scheme really does collide in this regime — prove the
    // bug existed at this scale.
    let additive = |gi: u64, fi: u64, rep: u64| 42u64 + 0x1000 * gi + 0x100 * fi + rep;
    assert_eq!(
        additive(0, 0, 256),
        additive(0, 1, 0),
        "old scheme collides"
    );
}

#[test]
fn stochasticity_lives_only_in_the_injector_seed() {
    let d = dataset(10);
    let split = d.three_fold_split(0);
    let victim = train_baseline(
        &d,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    let mut s1 = StochasticHmd::from_baseline(&victim, 0.5, 1).expect("valid");
    let mut s2 = StochasticHmd::from_baseline(&victim, 0.5, 2).expect("valid");
    let t1: Vec<u64> = (0..30)
        .map(|i| s1.score(d.trace(i % d.len())).to_bits())
        .collect();
    let t2: Vec<u64> = (0..30)
        .map(|i| s2.score(d.trace(i % d.len())).to_bits())
        .collect();
    assert_ne!(t1, t2, "different fault seeds must behave differently");
}

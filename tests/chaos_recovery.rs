//! Chaos-recovery semantics of the supervised monitoring service: crashed
//! shards are quarantined and their traffic re-routed to survivors (no
//! query dropped, no panic), frozen operating points crash rather than
//! silently corrupt, recovery retries are bounded and deterministic, the
//! retry budget degrades to the baseline instead of retrying forever — and
//! none of it costs determinism: a chaos run replays bit-identically at
//! any thread count, because every supervision decision is a function of
//! the batch index and the master seed, never of wall-clock or scheduling.

use shmd_volt::calibration::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosEvent, ChaosPlan, ShardHealth, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 23);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

fn stream(dataset: &Dataset, n: usize) -> Vec<&Trace> {
    (0..n).map(|i| dataset.trace(i % dataset.len())).collect()
}

#[test]
fn scripted_crash_is_quarantined_rerouted_and_recovered() {
    let (dataset, baseline) = setup();
    let chaos = ChaosPlan::none().with_event(ChaosEvent::Crash { batch: 2, shard: 1 });
    let supervision = SupervisorConfig::new(DeviceProfile::reference()).with_chaos(chaos);
    let config = ServeConfig::new(4).with_seed(5).with_batch_size(8);
    let mut service =
        MonitoringService::supervised(&baseline, supervision, config).expect("deploys");

    let queries = stream(&dataset, 8);
    let mut rerouted = 0u64;
    for batch in 0..15u64 {
        let verdicts = service.process_batch(&queries);
        assert_eq!(verdicts.len(), 8, "batch {batch} dropped queries");
        assert!(verdicts.iter().all(|v| !v.is_rejected()));
        let healths = service.shard_healths();
        if healths[1] == ShardHealth::Quarantined {
            // Re-routing: the quarantined shard's stream positions land on
            // survivors — deterministically, not on whoever is idle.
            assert!(
                verdicts.iter().all(|v| v.shard != 1),
                "batch {batch} routed a query to the quarantined shard"
            );
            rerouted += verdicts.iter().filter(|v| v.query % 4 == 1).count() as u64;
        }
    }
    assert!(rerouted > 0, "the crash never took effect");
    assert_eq!(
        service.shard_healths(),
        vec![ShardHealth::Healthy; 4],
        "the crashed shard must recover within the retry budget"
    );
    let snapshot = service.snapshot();
    assert_eq!(snapshot.queries, 120, "every query answered");
    assert_eq!(snapshot.total_crashes(), 1);
    assert_eq!(snapshot.shards[1].crashes, 1);
    assert!(
        snapshot.shards[1].retries >= 1,
        "recovery used the retry path"
    );
    assert_eq!(
        snapshot.shards.iter().map(|s| s.queries).sum::<u64>(),
        120,
        "re-routed queries are served, not dropped"
    );
    assert!(
        snapshot.shards[1].queries < snapshot.shards[0].queries,
        "quarantine must cost the crashed shard traffic"
    );
}

#[test]
fn freeze_crashes_the_pool_and_the_last_shard_fails_over() {
    let (dataset, baseline) = setup();
    // Target er = 0.2 sits ~0.26 below the freeze threshold at calibration
    // temperature; a −25 °C excursion pushes the fixed offset past 0.5
    // (temperature inversion: cold is slower), so both shards freeze.
    let chaos = ChaosPlan::none().with_event(ChaosEvent::DriftSpike {
        batch: 2,
        delta_c: -25.0,
        duration: 3,
    });
    let supervision = SupervisorConfig::new(DeviceProfile::reference()).with_chaos(chaos);
    let config = ServeConfig::new(2)
        .with_seed(6)
        .with_batch_size(8)
        .with_target_error_rate(0.2);
    let mut service =
        MonitoringService::supervised(&baseline, supervision, config).expect("deploys");

    let queries = stream(&dataset, 8);
    for _ in 0..15 {
        let verdicts = service.process_batch(&queries);
        assert_eq!(verdicts.len(), 8, "a frozen pool must keep answering");
    }
    let snapshot = service.snapshot();
    assert_eq!(snapshot.queries, 120);
    assert_eq!(
        snapshot.total_crashes(),
        2,
        "both shards crossed the freeze line"
    );
    // One shard was quarantined and recovered; the other was the last one
    // serving, so it failed over to the baseline instead of going dark.
    assert_eq!(snapshot.shards_in(ShardHealth::Healthy), 1);
    assert_eq!(snapshot.shards_in(ShardHealth::Degraded), 1);
    let degraded = snapshot
        .shards
        .iter()
        .find(|s| s.health == ShardHealth::Degraded)
        .expect("one shard degraded");
    let reason = degraded.degraded_reason.as_deref().expect("cause recorded");
    assert!(reason.contains("froze"), "got {reason}");
    assert!(reason.contains("last serving shard"), "got {reason}");
}

#[test]
fn exhausted_retry_budget_degrades_to_baseline() {
    let (dataset, baseline) = setup();
    // On the step-2 calibration curve er = 0.35 is unreachable: the
    // controller clamps at the guard band. With clamped recoveries
    // forbidden, every retry fails and the budget must bound them.
    let chaos = ChaosPlan::none().with_event(ChaosEvent::Hang { batch: 1, shard: 0 });
    let supervision = SupervisorConfig::new(DeviceProfile::reference())
        .with_chaos(chaos)
        .with_retry_policy(3, 2)
        .require_full_target();
    let config = ServeConfig::new(3)
        .with_seed(7)
        .with_batch_size(8)
        .with_target_error_rate(0.35);
    let mut service =
        MonitoringService::supervised(&baseline, supervision, config).expect("deploys");

    let queries = stream(&dataset, 8);
    for _ in 0..30 {
        let verdicts = service.process_batch(&queries);
        assert_eq!(verdicts.len(), 8);
    }
    let healths = service.shard_healths();
    assert_eq!(
        healths[0],
        ShardHealth::Degraded,
        "budget must not retry forever"
    );
    assert_eq!(healths[1], ShardHealth::Healthy);
    assert_eq!(healths[2], ShardHealth::Healthy);
    let snapshot = service.snapshot();
    assert_eq!(snapshot.shards[0].retries, 3, "exactly the budget, no more");
    let reason = snapshot.shards[0]
        .degraded_reason
        .as_deref()
        .expect("cause recorded");
    assert!(reason.contains("retry budget exhausted"), "got {reason}");
    assert_eq!(snapshot.queries, 240, "the pool served through it all");
}

#[test]
fn thermal_drift_trips_the_watchdog_and_recalibrates() {
    let (dataset, baseline) = setup();
    // A −15 °C excursion roughly doubles the delivered error rate at the
    // er = 0.1 offset without freezing it: the watchdog must notice the
    // drift from the fault stream alone and recalibrate.
    let chaos = ChaosPlan::none().with_event(ChaosEvent::DriftSpike {
        batch: 6,
        delta_c: -15.0,
        duration: 12,
    });
    // Tighten the watchdog window so short test streams complete windows.
    let supervision = SupervisorConfig::new(DeviceProfile::reference())
        .with_chaos(chaos)
        .with_watchdog(2048, 6.0, 0.02);
    let config = ServeConfig::new(2).with_seed(8).with_batch_size(8);
    let mut service =
        MonitoringService::supervised(&baseline, supervision, config).expect("deploys");

    let queries = stream(&dataset, 8);
    for _ in 0..30 {
        service.process_batch(&queries);
    }
    let snapshot = service.snapshot();
    assert_eq!(
        snapshot.total_crashes(),
        0,
        "a −15 °C drift is not a freeze"
    );
    assert!(
        snapshot.total_drift_events() >= 1,
        "the watchdog never noticed a doubled fault rate"
    );
    assert!(
        service.shard_healths().iter().all(|h| h.is_serving()),
        "drift recovery must end serving: {:?}",
        service.shard_healths()
    );
    assert_eq!(snapshot.queries, 240);
}

#[test]
fn chaos_runs_are_bit_identical_serial_vs_threaded() {
    let (dataset, baseline) = setup();
    let queries = stream(&dataset, 160);
    let dim = baseline.spec().extract(dataset.trace(0)).len();
    let run = |exec: ExecConfig| {
        let chaos =
            ChaosPlan::seeded(99, 4, 16, 2, 1).with_event(ChaosEvent::Crash { batch: 3, shard: 2 });
        let supervision = SupervisorConfig::new(DeviceProfile::reference())
            .with_environment(shmd_volt::environment::EnvironmentConfig::drifting(
                DeviceProfile::reference().temp_c,
                4,
            ))
            .with_chaos(chaos);
        let config = ServeConfig::new(4)
            .with_seed(17)
            .with_batch_size(16)
            .with_target_error_rate(0.2)
            .with_exec(exec);
        let mut service =
            MonitoringService::supervised(&baseline, supervision, config).expect("deploys");
        // Mix in poison: every 16th query arrives width-corrupted, so the
        // rejection path is part of the determinism contract too.
        let mut verdicts = Vec::new();
        let mut healths = Vec::new();
        for chunk in queries.chunks(16) {
            let mut features: Vec<Vec<f32>> =
                chunk.iter().map(|t| baseline.spec().extract(t)).collect();
            features[7] = vec![0.5; dim + 1];
            verdicts.extend(service.process_feature_batch(&features));
            healths.push(service.shard_healths());
        }
        (verdicts, healths, service.snapshot().without_timing())
    };
    let (serial_verdicts, serial_healths, serial_snapshot) = run(ExecConfig::serial());
    assert_eq!(
        serial_snapshot.rejected_queries, 10,
        "one poison per batch, all contained"
    );
    assert!(
        serial_snapshot.total_crashes() >= 1,
        "chaos must have fired"
    );
    for threads in [2, 8] {
        let (verdicts, healths, snapshot) = run(ExecConfig::threads(threads));
        assert_eq!(
            verdicts, serial_verdicts,
            "chaos verdict stream differs at {threads} threads"
        );
        assert_eq!(
            healths, serial_healths,
            "health transitions differ at {threads} threads"
        );
        assert_eq!(
            snapshot, serial_snapshot,
            "chaos telemetry differs at {threads} threads"
        );
    }
}

#[test]
fn poison_queries_during_chaos_cost_only_their_own_verdicts() {
    let (dataset, baseline) = setup();
    let chaos = ChaosPlan::none().with_event(ChaosEvent::Crash { batch: 1, shard: 0 });
    let supervision = SupervisorConfig::new(DeviceProfile::reference()).with_chaos(chaos);
    let config = ServeConfig::new(3).with_seed(19).with_batch_size(101);
    let mut service =
        MonitoringService::supervised(&baseline, supervision, config).expect("deploys");

    // The regression from the unsupervised serving layer, now under chaos:
    // one malformed query at the head of a batch of 101 must not take a
    // worker down with it.
    for batch in 0..4 {
        let mut features: Vec<Vec<f32>> = stream(&dataset, 100)
            .iter()
            .map(|t| baseline.spec().extract(t))
            .collect();
        let mut poison = features[0].clone();
        poison[0] = f32::NAN;
        features.insert(0, poison);
        let verdicts = service.process_feature_batch(&features);
        assert_eq!(verdicts.len(), 101);
        assert!(verdicts[0].is_rejected(), "batch {batch}");
        assert!(!verdicts[0].label.is_malware());
        assert!(
            verdicts[1..].iter().all(|v| !v.is_rejected()),
            "batch {batch}: a poison query must cost exactly one verdict"
        );
    }
    let snapshot = service.snapshot();
    assert_eq!(snapshot.rejected_queries, 4);
    assert_eq!(snapshot.queries, 404);
    assert_eq!(
        snapshot.shards.iter().map(|s| s.queries).sum::<u64>(),
        400,
        "rejected queries never reach a shard"
    );
}

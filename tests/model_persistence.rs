//! Model persistence across the full deployment chain: train → save as a
//! FANN-style text model → reload → redeploy (baseline and undervolted) →
//! identical behaviour.

use shmd_ann::io::{from_text, load, save, to_text};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::export::{from_csv, to_csv};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(80), 2025);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

#[test]
fn saved_and_reloaded_detector_scores_identically() {
    let (dataset, original) = setup();
    let text = to_text(original.network());
    let reloaded_net = from_text(&text).expect("parses");
    let reloaded = BaselineHmd::new("reloaded", original.spec(), reloaded_net);
    for i in 0..dataset.len() {
        let f = original.spec().extract(dataset.trace(i));
        assert_eq!(
            original.score_features(&f),
            reloaded.score_features(&f),
            "trace {i} scores must match after reload"
        );
    }
}

#[test]
fn reloaded_model_protected_with_same_seed_is_identical() {
    let (dataset, original) = setup();
    let reloaded_net = load(to_text(original.network()).as_bytes()).expect("loads");
    let reloaded = BaselineHmd::new("reloaded", original.spec(), reloaded_net);
    let mut a = StochasticHmd::from_baseline(&original, 0.2, 99).expect("valid");
    let mut b = StochasticHmd::from_baseline(&reloaded, 0.2, 99).expect("valid");
    for i in 0..20 {
        assert_eq!(a.score(dataset.trace(i)), b.score(dataset.trace(i)));
    }
}

#[test]
fn save_load_through_writers_and_readers() {
    let (_, original) = setup();
    let mut buffer = Vec::new();
    save(original.network(), &mut buffer).expect("writes");
    let reloaded = load(buffer.as_slice()).expect("reads");
    assert_eq!(original.network(), &reloaded);
}

#[test]
fn features_round_trip_as_csv_and_retrain_identically() {
    // Export the training table, re-import it, train again: identical
    // detector (training is deterministic given identical data).
    let dataset = Dataset::generate(&DatasetConfig::small(80), 2026);
    let split = dataset.three_fold_split(0);
    let features = dataset.labeled_features(split.victim_training(), FeatureSpec::frequency());
    let reloaded = from_csv(&to_csv(&features)).expect("parses");
    assert_eq!(features, reloaded);

    let original = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    // Retrain from the re-imported table via the ann crate directly.
    use shmd_ann::builder::NetworkBuilder;
    use shmd_ann::train::{RpropTrainer, TrainData};
    let targets: Vec<Vec<f32>> = reloaded
        .labels
        .iter()
        .map(|&m| vec![if m { 1.0 } else { 0.0 }])
        .collect();
    let data = TrainData::new(reloaded.inputs, targets).expect("valid");
    let cfg = HmdTrainConfig::fast();
    let mut net = NetworkBuilder::new(16)
        .hidden(cfg.hidden)
        .output(1)
        .seed(cfg.seed)
        .build()
        .expect("builds");
    RpropTrainer::new()
        .epochs(cfg.epochs)
        .train(&mut net, &data);
    assert_eq!(
        original.network(),
        &net,
        "CSV round trip must not change training"
    );
}

//! Threat-model boundary tests: what the defense does and does not cover.
//!
//! §III "Trusted control": "Trusted control of voltage is an important
//! component of the proposed defense (otherwise the defense can be simply
//! disabled by the adversary)." These tests demonstrate that boundary — an
//! adversary with voltage-regulator access strips the defense entirely —
//! plus the adaptive-attacker and ensemble-proxy extensions.

use shmd_attack::adaptive::denoised_reverse_engineer;
use shmd_attack::reverse::{effectiveness, reverse_engineer, ReverseConfig};
use shmd_attack::ProxyKind;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(150), 1337);
    let split = dataset.three_fold_split(0);
    let victim = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, victim)
}

#[test]
fn adversary_controlled_voltage_strips_the_defense() {
    // If the adversary can write the voltage MSR, they restore nominal
    // voltage (error rate 0) and the "stochastic" HMD degenerates to the
    // deterministic baseline — fully reverse-engineerable again.
    let (dataset, victim) = setup();
    let split = dataset.three_fold_split(0);

    // Defense active.
    let mut protected = StochasticHmd::from_baseline(&victim, 0.4, 3).expect("valid");
    let proxy = reverse_engineer(
        &mut protected,
        &dataset,
        split.attacker_training(),
        &ReverseConfig::new(ProxyKind::Mlp),
    )
    .expect("RE");
    let protected_eff = effectiveness(&proxy, &mut protected, &dataset, split.testing());

    // Adversary resets the regulator: er = 0.
    let mut disabled = StochasticHmd::from_baseline(&victim, 0.0, 3).expect("valid");
    let proxy = reverse_engineer(
        &mut disabled,
        &dataset,
        split.attacker_training(),
        &ReverseConfig::new(ProxyKind::Mlp),
    )
    .expect("RE");
    let disabled_eff = effectiveness(&proxy, &mut disabled, &dataset, split.testing());

    assert!(
        disabled_eff > protected_eff,
        "voltage control must matter: disabled {disabled_eff} vs protected {protected_eff}"
    );
    assert!(
        disabled_eff > 0.95,
        "with the defense off, RE is near-perfect"
    );
}

#[test]
fn random_forest_proxy_attacks_all_victims() {
    // The ensemble extension: an RF proxy reverse-engineers both victim
    // kinds; it is at least as noise-robust as a single tree.
    let (dataset, victim) = setup();
    let split = dataset.three_fold_split(0);
    let rf_cfg = ReverseConfig::new(ProxyKind::RandomForest);
    let dt_cfg = ReverseConfig::new(ProxyKind::DecisionTree);

    let mut sto = StochasticHmd::from_baseline(&victim, 0.3, 5).expect("valid");
    let rf =
        reverse_engineer(&mut sto, &dataset, split.attacker_training(), &rf_cfg).expect("RF RE");
    let rf_eff = effectiveness(&rf, &mut sto, &dataset, split.testing());

    let mut sto = StochasticHmd::from_baseline(&victim, 0.3, 5).expect("valid");
    let dt =
        reverse_engineer(&mut sto, &dataset, split.attacker_training(), &dt_cfg).expect("DT RE");
    let dt_eff = effectiveness(&dt, &mut sto, &dataset, split.testing());

    assert!(rf_eff > 0.7, "RF proxy works at all: {rf_eff}");
    assert!(
        rf_eff >= dt_eff - 0.08,
        "the ensemble should not be meaningfully worse than a single tree: {rf_eff} vs {dt_eff}"
    );
}

#[test]
fn denoising_beyond_query_budget_has_diminishing_returns() {
    // One pinned fault stream quantises effectiveness in steps of one
    // test sample, so any single seed can show a spurious late gain (or
    // an early plateau). The claim under test is a *trend* — extra votes
    // buy less once the noise is already voted away — so measure it as
    // one: average the per-rung effectiveness over a small sweep of
    // independent fault streams and assert the averaged gains diminish.
    let (dataset, victim) = setup();
    let split = dataset.three_fold_split(0);
    let cfg = ReverseConfig::new(ProxyKind::LogisticRegression);
    const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];
    let rungs = [1usize, 5, 25];
    let mut mean_effs = [0.0f64; 3];
    for seed in SEEDS {
        for (slot, &k) in rungs.iter().enumerate() {
            let mut sto = StochasticHmd::from_baseline(&victim, 0.3, seed).expect("valid");
            let proxy =
                denoised_reverse_engineer(&mut sto, &dataset, split.attacker_training(), &cfg, k)
                    .expect("RE");
            mean_effs[slot] +=
                effectiveness(&proxy, &mut sto, &dataset, split.testing()) / SEEDS.len() as f64;
        }
    }
    // 5→25 queries buys less than 1→5 does (noise is already voted away).
    let first_gain = mean_effs[1] - mean_effs[0];
    let second_gain = mean_effs[2] - mean_effs[1];
    assert!(
        second_gain <= first_gain + 0.02,
        "denoising returns must diminish on average over {} fault streams: {mean_effs:?}",
        SEEDS.len()
    );
    // And the first rung of votes must actually help at er 0.3 — the
    // trend is diminishing returns on a real gain, not a flat line.
    assert!(
        first_gain > 0.0,
        "majority voting should recover some boundary: {mean_effs:?}"
    );
}

#[test]
fn near_zero_values_are_unprotected_end_to_end() {
    // §IX "Limitations": "models that operate on numbers that are very
    // close to zero are not protected". A detector whose weights and inputs
    // are tiny sees almost no effective noise.
    use shmd_ann::builder::NetworkBuilder;
    use shmd_workload::features::FeatureSpec;

    let tiny_net = {
        let mut net = NetworkBuilder::new(16)
            .hidden(4)
            .output(1)
            .seed(1)
            .build()
            .unwrap();
        for layer in net.layers_mut() {
            for w in layer.weights_mut() {
                *w *= 1e-4; // push every product towards the immune LSBs
            }
        }
        net
    };
    let baseline = BaselineHmd::new("tiny", FeatureSpec::frequency(), tiny_net);
    let mut protected = StochasticHmd::from_baseline(&baseline, 0.9, 2).expect("valid");
    let dataset = Dataset::generate(&DatasetConfig::small(20), 3);
    for i in 0..dataset.len() {
        let trace = dataset.trace(i);
        let exact = baseline.score_features(&baseline.spec().extract(trace));
        let noisy = protected.score(trace);
        assert!(
            (exact - noisy).abs() < 1e-3,
            "tiny-valued model should see (almost) no noise: {exact} vs {noisy}"
        );
    }
}

//! Crash-consistent checkpoint/restore: a supervised chaos deployment
//! killed at *any* tested batch index — including mid-journal-append, via
//! a torn file tail — restores from its write-ahead state journal and
//! resumes bit-identically to an uninterrupted reference run, serially and
//! on an 8-thread pool. Checkpoint bytes round-trip through the binary
//! codec; foreign, version-bumped, truncated, and bit-flipped bytes are
//! rejected with typed errors and never panic, under fuzzed inputs too.

use shmd_volt::calibration::DeviceProfile;
use shmd_volt::environment::EnvironmentConfig;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::checkpoint::{
    BatchCommit, CheckpointError, RestoreError, ServiceCheckpoint, StateJournal,
};
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig, Verdict};
use stochastic_hmd::supervisor::{ChaosPlan, SupervisorConfig};
use stochastic_hmd::telemetry::{TelemetryParseError, TelemetrySnapshot};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

const SHARDS: usize = 4;
const BATCHES: usize = 16;
const BATCH_SIZE: usize = 8;
const CADENCE: u64 = 4;
const SEED: u64 = 19;

fn setup() -> (Dataset, BaselineHmd) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 31);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    (dataset, baseline)
}

/// The scripted world: thermal drift plus seeded chaos kills. Rebuilt
/// identically at restore, exactly as a real deployment reconstructs its
/// config from its own sources.
fn supervision() -> SupervisorConfig {
    let device = DeviceProfile::reference();
    SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
        .with_chaos(ChaosPlan::seeded(SEED, SHARDS, 12, 2, 1))
}

fn deploy(baseline: &BaselineHmd, exec: ExecConfig) -> MonitoringService {
    let config = ServeConfig::new(SHARDS)
        .with_seed(SEED)
        .with_target_error_rate(0.2)
        .with_batch_size(BATCH_SIZE)
        .with_exec(exec);
    MonitoringService::supervised(baseline, supervision(), config).expect("deploys")
}

fn feature_stream(baseline: &BaselineHmd, dataset: &Dataset) -> Vec<Vec<Vec<f32>>> {
    let spec = baseline.spec();
    (0..BATCHES)
        .map(|b| {
            (0..BATCH_SIZE)
                .map(|i| spec.extract(dataset.trace((b * BATCH_SIZE + i) % dataset.len())))
                .collect()
        })
        .collect()
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "shmd-crash-restore-test-{}-{tag}.journal",
        std::process::id()
    ))
}

/// Journaled run up to and including `kill_batch`, then the simulated
/// kill: drop everything, optionally tear `tear` bytes off the journal.
fn victim_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    kill_batch: usize,
    tear: usize,
    path: &std::path::Path,
) {
    let mut service = deploy(baseline, ExecConfig::serial());
    let mut journal = StateJournal::create(path).expect("creates");
    for (b, batch) in features.iter().enumerate().take(kill_batch + 1) {
        if (b as u64).is_multiple_of(CADENCE) {
            journal
                .append_checkpoint(&service.checkpoint())
                .expect("checkpoint");
        }
        service
            .process_feature_batch_journaled(batch, &mut journal)
            .expect("commit");
    }
    drop(journal);
    drop(service);
    if tear > 0 {
        let bytes = std::fs::read(path).expect("reads");
        std::fs::write(path, &bytes[..bytes.len().saturating_sub(tear)]).expect("tears");
    }
}

/// Recover, restore on `exec`, replay the remainder; return the replayed
/// verdicts (from the resume batch on), the final timing-stripped
/// snapshot, and the resume batch index.
fn restore_and_replay(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    path: &std::path::Path,
    exec: ExecConfig,
) -> (Vec<Vec<Verdict>>, TelemetrySnapshot, u64) {
    let recovery = StateJournal::recover(path).expect("recovers");
    let checkpoint = recovery.checkpoint.expect("a checkpoint survived");
    let mut service = MonitoringService::restore(baseline, Some(supervision()), &checkpoint, exec)
        .expect("restores");
    let resume = checkpoint.batches;
    let mut verdicts = Vec::new();
    for (b, batch) in features.iter().enumerate().skip(resume as usize) {
        verdicts.push(service.process_feature_batch(batch));
        // Every batch the dead process committed must replay to the exact
        // journaled checksum and stream position.
        if let Some(commit) = recovery.commits.iter().find(|c| c.batch == b as u64) {
            assert_eq!(commit.checksum, service.verdict_checksum(), "batch {b}");
            assert_eq!(commit.stream_pos, service.served(), "batch {b}");
        }
    }
    (verdicts, service.snapshot().without_timing(), resume)
}

#[test]
fn kill_at_any_tested_batch_restores_bit_identically_serial_and_threaded() {
    let (dataset, baseline) = setup();
    let features = feature_stream(&baseline, &dataset);

    // The uninterrupted reference.
    let mut reference = deploy(&baseline, ExecConfig::serial());
    let reference_verdicts: Vec<Vec<Verdict>> = features
        .iter()
        .map(|batch| reference.process_feature_batch(batch))
        .collect();
    let reference_snapshot = reference.snapshot().without_timing();

    // Adversarial kill points: first batch, either side of a checkpoint
    // cadence boundary, mid-chaos, and the final batch. Odd entries tear
    // the journal tail (a kill mid-append).
    let kills = [0usize, 3, 4, 9, BATCHES - 1];
    for (i, &kill) in kills.iter().enumerate() {
        let tear = if i % 2 == 1 { 7 } else { 0 };
        let path = scratch_path(&format!("kill{kill}"));
        victim_run(&baseline, &features, kill, tear, &path);
        for exec in [ExecConfig::serial(), ExecConfig::threads(8)] {
            let (verdicts, snapshot, resume) =
                restore_and_replay(&baseline, &features, &path, exec);
            assert_eq!(
                verdicts,
                reference_verdicts[resume as usize..],
                "kill at {kill} (tear {tear}): replayed verdicts diverged"
            );
            assert_eq!(
                snapshot, reference_snapshot,
                "kill at {kill} (tear {tear}): resumed telemetry diverged"
            );
        }
        std::fs::remove_file(&path).expect("cleanup");
    }
}

#[test]
fn torn_tail_discards_exactly_the_uncommitted_batch() {
    let (dataset, baseline) = setup();
    let features = feature_stream(&baseline, &dataset);
    let kill = CADENCE as usize + 2;
    let path = scratch_path("torn");
    victim_run(&baseline, &features, kill, 0, &path);
    let intact = StateJournal::recover(&path).expect("recovers");
    assert_eq!(intact.commits.last().map(|c| c.batch), Some(kill as u64));
    assert_eq!(intact.torn_bytes, 0);

    // Tear at every byte offset inside the final commit record: recovery
    // must lose that single commit and nothing else, and never panic.
    let full = std::fs::read(&path).expect("reads");
    for tear in 1..=20usize {
        std::fs::write(&path, &full[..full.len() - tear]).expect("tears");
        let salvaged = StateJournal::recover(&path).expect("recovers torn");
        assert_eq!(
            salvaged.commits.last().map(|c| c.batch),
            Some(kill as u64 - 1),
            "tear {tear}"
        );
        assert!(salvaged.torn_bytes > 0, "tear {tear}");
        assert_eq!(
            salvaged.checkpoint.as_ref().map(|c| c.batches),
            Some(CADENCE)
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn checkpoint_codec_round_trips_and_rejects_corruption() {
    let (dataset, baseline) = setup();
    let features = feature_stream(&baseline, &dataset);
    let mut service = deploy(&baseline, ExecConfig::serial());
    for batch in &features[..6] {
        service.process_feature_batch(batch);
    }
    let checkpoint = service.checkpoint();
    let bytes = checkpoint.encode();
    assert_eq!(
        ServiceCheckpoint::decode(&bytes).expect("round trip"),
        checkpoint
    );
    assert_eq!(
        ServiceCheckpoint::decode(b"GARBAGE-NOT-A-CHECKPOINT"),
        Err(CheckpointError::BadMagic)
    );
    // A version bump (with a recomputed trailing checksum, so only the
    // version differs) is a typed rejection.
    let mut versioned = bytes.clone();
    versioned[4] = versioned[4].wrapping_add(1);
    match ServiceCheckpoint::decode(&versioned) {
        Err(CheckpointError::UnsupportedVersion(_)) | Err(CheckpointError::Corrupted(_)) => {}
        other => panic!("version bump decoded: {other:?}"),
    }
    // Restoring a decoded checkpoint against the wrong model is typed too.
    let mut foreign = checkpoint.clone();
    foreign.input_dim += 3;
    assert!(matches!(
        MonitoringService::restore(
            &baseline,
            Some(supervision()),
            &foreign,
            ExecConfig::serial()
        ),
        Err(RestoreError::InputDimMismatch { .. })
    ));
}

#[test]
fn journal_append_then_recover_round_trips_commits() {
    let path = scratch_path("commits");
    let mut journal = StateJournal::create(&path).expect("creates");
    let commits: Vec<BatchCommit> = (0..5u64)
        .map(|batch| BatchCommit {
            batch,
            stream_pos: (batch + 1) * 8,
            checksum: batch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        })
        .collect();
    for commit in &commits {
        journal.append_commit(*commit).expect("appends");
    }
    drop(journal);
    let recovery = StateJournal::recover(&path).expect("recovers");
    assert_eq!(recovery.commits, commits);
    assert_eq!(recovery.checkpoint, None);
    std::fs::remove_file(&path).expect("cleanup");
}

proptest::proptest! {
    #[test]
    fn fuzzed_checkpoint_bytes_never_panic(
        bytes in proptest::collection::vec(proptest::any::<u8>(), 0..600)
    ) {
        // Random bytes must decode to a typed error (or, astronomically
        // unlikely, a valid checkpoint) — never a panic.
        let _ = ServiceCheckpoint::decode(&bytes);
    }

    #[test]
    fn mangled_valid_checkpoints_never_panic(cut in 0usize..2000, flip in 0usize..2000) {
        // A real checkpoint, truncated and bit-flipped at arbitrary
        // positions: decode must stay typed and panic-free.
        static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
        let bytes = BYTES.get_or_init(|| {
            let (dataset, baseline) = setup();
            let features = feature_stream(&baseline, &dataset);
            let mut service = deploy(&baseline, ExecConfig::serial());
            for batch in &features[..3] {
                service.process_feature_batch(batch);
            }
            service.checkpoint().encode()
        });
        let _ = ServiceCheckpoint::decode(&bytes[..cut.min(bytes.len())]);
        let mut mangled = bytes.clone();
        let at = flip % mangled.len();
        mangled[at] ^= 0x55;
        let _ = ServiceCheckpoint::decode(&mangled);
    }

    #[test]
    fn fuzzed_telemetry_json_never_panics(
        text in proptest::string::string_regex(".{0,300}").unwrap()
    ) {
        let _: Result<TelemetrySnapshot, TelemetryParseError> =
            TelemetrySnapshot::from_json(&text);
    }

    #[test]
    fn mangled_valid_telemetry_json_never_panics(cut in 0usize..4000, flip in 0usize..4000) {
        static DOC: std::sync::OnceLock<String> = std::sync::OnceLock::new();
        let doc = DOC.get_or_init(|| {
            let (dataset, baseline) = setup();
            let features = feature_stream(&baseline, &dataset);
            let mut service = deploy(&baseline, ExecConfig::serial());
            for batch in &features[..3] {
                service.process_feature_batch(batch);
            }
            service.snapshot().to_json()
        });
        let truncated: String = doc.chars().take(cut).collect();
        let _ = TelemetrySnapshot::from_json(&truncated);
        let mut mangled = doc.clone().into_bytes();
        let at = flip % mangled.len();
        mangled[at] = mangled[at].wrapping_add(13);
        if let Ok(s) = String::from_utf8(mangled) {
            let _ = TelemetrySnapshot::from_json(&s);
        }
    }
}

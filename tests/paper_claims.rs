//! The paper's headline claims, asserted end to end at test scale.

use shmd_power::cmos::{CmosPowerModel, PowerScope};
use shmd_power::latency::LatencyModel;
use shmd_power::memory::storage_savings;
use shmd_power::rng_cost::{NoiseSource, RngCostModel};
use shmd_volt::entropy::approximate_entropy_bits;
use shmd_volt::fault::{FaultInjector, FaultModel};
use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use stochastic_hmd::explore::accuracy_sweep;
use stochastic_hmd::train::HmdTrainConfig;

#[test]
fn claim_accuracy_loss_is_small_at_the_operating_point() {
    // "Stochastic-HMDs can detect ... with a negligible (i.e., < 2%)
    // accuracy loss" — allow extra slack at this test's tiny scale.
    let dataset = Dataset::generate(&DatasetConfig::small(100), 1);
    let points = accuracy_sweep(&dataset, &[0.0, 0.1], 5, &HmdTrainConfig::fast(), 3)
        .expect("sweep succeeds");
    let loss = points[0].accuracy_mean - points[1].accuracy_mean;
    assert!(loss < 0.06, "accuracy loss at er = 0.1: {loss}");
}

#[test]
fn claim_degradation_diverges_as_error_rate_approaches_one() {
    // Fig. 2(a): "the accuracy degradation diverges ... as the error rate
    // approaches 1; the relationship is not linear."
    let dataset = Dataset::generate(&DatasetConfig::small(100), 2);
    let points = accuracy_sweep(&dataset, &[0.1, 0.5, 1.0], 4, &HmdTrainConfig::fast(), 3)
        .expect("sweep succeeds");
    let early_drop = points[0].accuracy_mean - points[1].accuracy_mean;
    let late_drop = points[1].accuracy_mean - points[2].accuracy_mean;
    assert!(
        late_drop > early_drop,
        "degradation must accelerate: {early_drop} then {late_drop}"
    );
}

#[test]
fn claim_faults_are_stochastic_not_deterministic() {
    // §II: the fault *pattern* over repeated identical multiplications
    // passes an approximate-entropy check.
    let mut injector = FaultInjector::new(FaultModel::from_error_rate(0.5).expect("valid"), 4);
    let product = 0x7a5a_5a5a_5a5a_5a5ai64;
    let series: Vec<bool> = (0..600)
        .map(|_| injector.corrupt_product(product) != product)
        .collect();
    let apen = approximate_entropy_bits(&series, 2);
    assert!(apen > 0.4, "fault occurrence series looks regular: {apen}");
}

#[test]
fn claim_power_savings_come_for_free() {
    // "~15% power savings" at the operating point (package scope), with no
    // latency cost.
    let power = CmosPowerModel::i7_5557u();
    let op = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-134));
    let saving = power.savings_over_baseline(op, PowerScope::Package);
    assert!((0.08..=0.25).contains(&saving), "package savings {saving}");

    let latency = LatencyModel::i7_5557u();
    let macs = LatencyModel::paper_detector_macs();
    assert_eq!(
        latency.stochastic_hmd_us(macs, op),
        latency.hmd_us(macs),
        "undervolting must not cost latency"
    );
}

#[test]
fn claim_stochastic_hmd_beats_rhmd_on_every_overhead() {
    let latency = LatencyModel::i7_5557u();
    let macs = LatencyModel::paper_detector_macs();
    assert!(latency.rhmd_us(macs, 2) > latency.hmd_us(macs) * 1.08);
    assert_eq!(storage_savings(2), 0.5);
    let power = CmosPowerModel::i7_5557u();
    assert!(power.savings_over_rhmd(NOMINAL_CORE_VOLTAGE, PowerScope::Core) > 0.0);
}

#[test]
fn claim_rng_based_noise_is_orders_of_magnitude_costlier() {
    let rng = RngCostModel::i7_5557u();
    assert!(rng.time_overhead(NoiseSource::Trng) > 50.0);
    assert!(rng.energy_overhead(NoiseSource::Trng) > 100.0);
    assert!(rng.time_overhead(NoiseSource::Prng) > 3.0);
    assert_eq!(rng.time_overhead(NoiseSource::Undervolting), 1.0);
}

#[test]
fn claim_no_model_changes_are_needed() {
    // The protected detector uses the *identical* quantised model.
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::train_baseline;
    let dataset = Dataset::generate(&DatasetConfig::small(60), 5);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("trains");
    let protected = StochasticHmd::from_baseline(&baseline, 0.1, 1).expect("valid");
    // Same spec, same error-rate-zero behaviour, no retraining interface.
    assert_eq!(protected.spec(), baseline.spec());
}

//! API-guideline conformance (Rust API Guidelines):
//! C-SEND-SYNC — public types are `Send`/`Sync` where possible;
//! C-GOOD-ERR — public error types implement `Error + Send + Sync`.

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<stochastic_hmd::BaselineHmd>();
    assert_send_sync::<stochastic_hmd::StochasticHmd>();
    assert_send_sync::<stochastic_hmd::Rhmd>();
    assert_send_sync::<stochastic_hmd::Label>();
    assert_send_sync::<stochastic_hmd::RocCurve>();
    assert_send_sync::<stochastic_hmd::MonitorReport>();
    assert_send_sync::<stochastic_hmd::DetectionPolicy>();
    assert_send_sync::<stochastic_hmd::XvalSummary>();
    assert_send_sync::<stochastic_hmd::MonitoringService>();
    assert_send_sync::<stochastic_hmd::Verdict>();
    assert_send_sync::<stochastic_hmd::QueryDisposition>();
    assert_send_sync::<stochastic_hmd::TelemetrySnapshot>();
    assert_send_sync::<stochastic_hmd::ShardHealth>();
    assert_send_sync::<stochastic_hmd::SupervisionRecord>();
    assert_send_sync::<stochastic_hmd::Supervisor>();
    assert_send_sync::<stochastic_hmd::SupervisorConfig>();
    assert_send_sync::<stochastic_hmd::ChaosPlan>();
    assert_send_sync::<stochastic_hmd::ChaosEvent>();
    assert_send_sync::<shmd_volt::environment::ThermalEnvironment>();
    assert_send_sync::<stochastic_hmd::ServiceCheckpoint>();
    assert_send_sync::<stochastic_hmd::StateJournal>();
    assert_send_sync::<stochastic_hmd::BatchCommit>();
    assert_send_sync::<stochastic_hmd::JournalRecovery>();
    assert_send_sync::<stochastic_hmd::Frame>();
    assert_send_sync::<stochastic_hmd::RejectCode>();
    assert_send_sync::<stochastic_hmd::Daemon>();
    assert_send_sync::<stochastic_hmd::DaemonPhase>();
    assert_send_sync::<stochastic_hmd::AdmissionConfig>();
    assert_send_sync::<stochastic_hmd::AdmissionStats>();
}

#[test]
fn substrate_types_are_send_and_sync() {
    assert_send_sync::<shmd_fixed::Q16>();
    assert_send_sync::<shmd_fixed::Accumulator>();
    assert_send_sync::<shmd_volt::FaultModel>();
    assert_send_sync::<shmd_volt::FaultInjector>();
    assert_send_sync::<shmd_volt::FaultStream<'static>>();
    assert_send_sync::<shmd_volt::CalibrationCurve>();
    assert_send_sync::<shmd_volt::AdaptiveVoltageController>();
    assert_send_sync::<shmd_volt::MsrVoltageCommand>();
    assert_send_sync::<shmd_ann::Network>();
    assert_send_sync::<shmd_ann::QuantizedNetwork>();
    assert_send_sync::<shmd_ml::LogisticRegression>();
    assert_send_sync::<shmd_ml::DecisionTree>();
    assert_send_sync::<shmd_ml::RandomForest>();
    assert_send_sync::<shmd_workload::Dataset>();
    assert_send_sync::<shmd_workload::Trace>();
    assert_send_sync::<shmd_workload::Program>();
    assert_send_sync::<shmd_attack::Proxy>();
    assert_send_sync::<shmd_attack::EvasiveSample>();
    assert_send_sync::<shmd_power::CmosPowerModel>();
    assert_send_sync::<shmd_power::BatteryModel>();
    assert_send_sync::<shmd_power::LatencyModel>();
    assert_send_sync::<stochastic_hmd::supervisor::PowerBudgetPolicy>();
}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<shmd_volt::FaultModelError>();
    assert_error::<shmd_volt::CalibrationError>();
    assert_error::<shmd_volt::voltage::ParseMsrCommandError>();
    assert_error::<shmd_ann::BuildNetworkError>();
    assert_error::<shmd_ann::io::ParseNetworkError>();
    assert_error::<shmd_ann::train::TrainDataError>();
    assert_error::<shmd_ml::FitError>();
    assert_error::<shmd_ml::FitScalerError>();
    assert_error::<shmd_workload::export::ParseCsvError>();
    assert_error::<stochastic_hmd::TrainHmdError>();
    assert_error::<stochastic_hmd::EnclaveError>();
    assert_error::<stochastic_hmd::RocError>();
    assert_error::<stochastic_hmd::explore::ExploreError>();
    assert_error::<stochastic_hmd::ServeError>();
    assert_error::<stochastic_hmd::CheckpointError>();
    assert_error::<stochastic_hmd::RestoreError>();
    assert_error::<stochastic_hmd::WireError>();
    assert_error::<stochastic_hmd::HandoffError>();
    assert_error::<shmd_attack::ReverseError>();
    assert_error::<shmd_power::InfeasibleDuty>();
}

#[test]
fn error_messages_are_lowercase_without_trailing_punctuation() {
    // C-GOOD-ERR style check on representative messages.
    let samples: Vec<String> = vec![
        shmd_volt::FaultModelError::InvalidErrorRate(2.0).to_string(),
        shmd_ml::FitError::EmptyTrainingSet.to_string(),
        shmd_ann::BuildNetworkError::MissingOutput.to_string(),
        shmd_attack::ReverseError::NoQueries.to_string(),
        stochastic_hmd::CheckpointError::BadMagic.to_string(),
        stochastic_hmd::CheckpointError::UnsupportedVersion(9).to_string(),
        stochastic_hmd::RestoreError::SupervisorRequired.to_string(),
        stochastic_hmd::WireError::BadMagic.to_string(),
        stochastic_hmd::WireError::UnsupportedVersion(9).to_string(),
        stochastic_hmd::WireError::Oversized {
            declared: 1 << 40,
            cap: 1 << 20,
        }
        .to_string(),
        stochastic_hmd::HandoffError::NotHandoff.to_string(),
        stochastic_hmd::HandoffError::ChecksumMismatch {
            expected: 1,
            got: 2,
        }
        .to_string(),
    ];
    for msg in samples {
        let first = msg.chars().next().expect("non-empty");
        assert!(
            first.is_lowercase() || first.is_numeric(),
            "error message should start lowercase: {msg}"
        );
        assert!(
            !msg.ends_with('.') && !msg.ends_with('!'),
            "error message should not end with punctuation: {msg}"
        );
    }
}

//! Run a supervised monitoring pool through a scripted chaos schedule:
//! a shard crash, a cold thermal spike that freezes the operating point,
//! and a poison query — then watch the supervisor quarantine, re-route,
//! retry with exponential backoff, and recover.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```

use shmd_volt::environment::EnvironmentConfig;
use shmd_volt::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosEvent, ChaosPlan, ShardHealth, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(200), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )?;

    // The chaos script: shard 1 crashes at batch 3, and a −25 °C spike at
    // batch 10 pushes the er = 0.2 offset past the freeze threshold
    // (temperature inversion: a colder die is slower, so a fixed
    // undervolt that was safe at calibration temperature hangs the core).
    let device = DeviceProfile::reference();
    let chaos = ChaosPlan::none()
        .with_event(ChaosEvent::Crash { batch: 3, shard: 1 })
        .with_event(ChaosEvent::DriftSpike {
            batch: 10,
            delta_c: -25.0,
            duration: 3,
        });
    let supervision = SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, 7))
        .with_chaos(chaos);
    let config = ServeConfig::new(4)
        .with_seed(7)
        .with_batch_size(16)
        .with_target_error_rate(0.2);
    let mut service = MonitoringService::supervised(&baseline, supervision, config)?;
    println!(
        "deployed {} supervised shards at target er 0.2\n",
        service.shard_count()
    );

    // Replay a monitoring shift batch by batch; one poison query (wrong
    // feature width) rides along in batch 5.
    let spec = baseline.spec();
    let dim = service.input_dim();
    let mut last: Vec<ShardHealth> = service.shard_healths();
    for batch in 0..25u64 {
        let mut features: Vec<Vec<f32>> = (0..16)
            .map(|i| spec.extract(dataset.trace(((batch * 16) as usize + i) % dataset.len())))
            .collect();
        if batch == 5 {
            features[0] = vec![1.0; dim + 4];
        }
        let verdicts = service.process_feature_batch(&features);
        let rejected = verdicts.iter().filter(|v| v.is_rejected()).count();
        let healths = service.shard_healths();
        if healths != last || rejected > 0 {
            let states: Vec<String> = healths.iter().map(|h| h.to_string()).collect();
            println!(
                "batch {batch:>2}: [{}]{}",
                states.join(", "),
                if rejected > 0 {
                    format!("  ({rejected} poison query rejected)")
                } else {
                    String::new()
                }
            );
            last = healths;
        }
    }

    let snapshot = service.snapshot();
    println!(
        "\n{} queries in {} batches: {} crashes, {} retries, {} drift events, \
         {} health transitions, {} rejected",
        snapshot.queries,
        snapshot.batches,
        snapshot.total_crashes(),
        snapshot.total_retries(),
        snapshot.total_drift_events(),
        snapshot.total_transitions(),
        snapshot.rejected_queries
    );
    for shard in &snapshot.shards {
        println!(
            "  shard {}: {:<9} {} queries, {} crashes, {} retries{}",
            shard.shard,
            shard.health.to_string(),
            shard.queries,
            shard.crashes,
            shard.retries,
            shard
                .degraded_reason
                .as_deref()
                .map(|r| format!("  ({r})"))
                .unwrap_or_default()
        );
    }
    println!(
        "\nevery supervision decision is a function of the batch index and the \
         master seed,\nso this run replays bit-identically at any thread count"
    );
    Ok(())
}

//! Deploy a Stochastic-HMD inside a trusted detection enclave (§IX):
//! exclusive voltage-regulator control, undervolting applied only during
//! detection, temperature-adaptive re-calibration, and a detection policy.
//!
//! ```text
//! cargo run --release --example tee_deployment
//! ```

use shmd_volt::controller::ControllerConfig;
use shmd_volt::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::deploy::DetectionPolicy;
use stochastic_hmd::enclave::DetectionEnclave;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(300), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::paper(),
    )?;

    let mut enclave = DetectionEnclave::deploy(
        baseline,
        DeviceProfile::reference(),
        ControllerConfig::default(),
        DetectionPolicy::AnyOf(4),
        7,
    )?;
    let voltage = enclave.voltage_state();
    println!(
        "deployed: offset {}, delivered error rate {:.3}, policy any-of-4",
        enclave.controller().offset(),
        enclave.controller().delivered_error_rate()
    );
    println!("apply command:   {}", enclave.controller().msr_command()?);
    println!(
        "restore command: {}",
        enclave.controller().restore_command()?
    );

    // A monitoring day: detections interleaved with temperature drift.
    let mut correct = 0usize;
    let mut total = 0usize;
    for (step, &i) in split.testing().iter().enumerate() {
        // The die heats up over the day; the enclave re-calibrates itself.
        let temp = 49.0 + 25.0 * (step as f64 / split.testing().len() as f64);
        enclave.observe_temperature(temp)?;
        let verdict = enclave.detect(dataset.trace(i));
        assert!(
            voltage.is_nominal(),
            "undervolting must not leak out of detection"
        );
        total += 1;
        if verdict.is_malware() == dataset.program(i).is_malware() {
            correct += 1;
        }
    }
    println!(
        "\nafter {} detections across a 49→74 degC drift: accuracy {:.1}%",
        total,
        100.0 * correct as f64 / total as f64
    );
    println!(
        "final offset {} (re-calibrated at {:.0} degC), voltage outside detection: nominal = {}",
        enclave.controller().offset(),
        enclave.controller().calibrated_at_c(),
        voltage.is_nominal()
    );
    Ok(())
}

//! Per-device calibration (§IX "Calibration"): faults vary across chips and
//! with temperature, so each device must be swept individually, and the
//! controller must re-adjust when the die heats up.
//!
//! ```text
//! cargo run --release --example device_calibration
//! ```

use shmd_volt::calibration::{Calibrator, DeviceProfile};
use shmd_volt::voltage::{MsrVoltageCommand, VoltagePlane};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let calibrator = Calibrator::new();

    // Three chips of the same SKU: process variation shifts the window.
    println!("process variation across devices (49 degC):");
    println!(
        "{:>10} {:>13} {:>10} {:>14}",
        "device", "first fault", "freeze", "er=0.1 offset"
    );
    for seed in 0..3u64 {
        let device = if seed == 0 {
            DeviceProfile::reference()
        } else {
            DeviceProfile::sampled(format!("unit-{seed}"), seed)
        };
        let curve = calibrator.calibrate(&device);
        let op = curve
            .offset_for_error_rate(0.1)
            .map(|o| o.to_string())
            .unwrap_or_else(|e| format!("({e})"));
        println!(
            "{:>10} {:>13} {:>10} {:>14}",
            device.name,
            curve.first_fault_offset().to_string(),
            curve.freeze_offset().to_string(),
            op
        );
    }

    // Temperature: the controller must track the die temperature and
    // re-derive the offset, or the error rate drifts.
    println!("\ntemperature drift on the reference device:");
    println!(
        "{:>8} {:>14} {:>16}",
        "temp", "er=0.1 offset", "er at cold offset"
    );
    let cold = {
        let mut d = DeviceProfile::reference();
        d.temp_c = 35.0;
        d
    };
    let cold_curve = calibrator.calibrate(&cold);
    let cold_offset = cold_curve.offset_for_error_rate(0.1)?;
    for temp in [35.0, 49.0, 65.0, 80.0] {
        let mut d = DeviceProfile::reference();
        d.temp_c = temp;
        let curve = calibrator.calibrate(&d);
        let op = curve
            .offset_for_error_rate(0.1)
            .map(|o| o.to_string())
            .unwrap_or_else(|e| format!("({e})"));
        println!(
            "{:>6}C {:>14} {:>16.4}",
            temp,
            op,
            curve.error_rate_at(cold_offset)
        );
    }

    // The command a trusted controller would issue on the reference chip.
    let curve = calibrator.calibrate(&DeviceProfile::reference());
    let offset = curve.offset_for_error_rate(0.1)?;
    let cmd = MsrVoltageCommand::new(VoltagePlane::CpuCore, offset)?;
    println!("\ndeployment command for the reference device:\n  {cmd}");
    println!(
        "(decoded back: offset {})",
        MsrVoltageCommand::decode(cmd.encode())?.offset()
    );
    Ok(())
}

//! Quickstart: train an HMD, protect it with undervolting, detect malware.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{evaluate, train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset of synthetic malware and benign program traces
    //    (5:1 class mix, like the paper's 3000 + 600 corpus).
    let dataset = Dataset::generate(&DatasetConfig::small(300), 42);
    let split = dataset.three_fold_split(0);
    println!(
        "dataset: {} programs, folds of ~{}",
        dataset.len(),
        split.testing().len()
    );

    // 2. Train the baseline HMD (a FANN-style MLP over instruction-category
    //    frequencies) on the victim fold.
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::paper(),
    )?;

    // 3. Protect it: same model, undervolted datapath, 10% multiplication
    //    error rate — the paper's operating point. No retraining.
    let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 7)?;

    // 4. Detect.
    let baseline_acc = {
        let mut b = baseline.clone();
        evaluate(&mut b, &dataset, split.testing()).accuracy()
    };
    let protected_matrix = evaluate(&mut protected, &dataset, split.testing());
    println!("baseline accuracy:   {:.1}%", baseline_acc * 100.0);
    println!(
        "protected accuracy:  {:.1}%",
        protected_matrix.accuracy() * 100.0
    );
    println!(
        "accuracy cost of the defense: {:.2} points (paper: <2)",
        (baseline_acc - protected_matrix.accuracy()) * 100.0
    );

    // 5. The moving-target property: the same trace, scored repeatedly,
    //    yields varying confidence. Pick the most boundary-adjacent test
    //    sample, where the stochastic boundary is most visible.
    let near_boundary = split
        .testing()
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let spec = baseline.spec();
            let da = (baseline.score_features(&spec.extract(dataset.trace(a))) - 0.5).abs();
            let db = (baseline.score_features(&spec.extract(dataset.trace(b))) - 0.5).abs();
            da.total_cmp(&db)
        })
        .expect("non-empty fold");
    let trace = dataset.trace(near_boundary);
    let scores: Vec<String> = (0..6)
        .map(|_| format!("{:.4}", protected.score(trace)))
        .collect();
    println!(
        "six stochastic detections of one trace: {}",
        scores.join(", ")
    );
    println!(
        "faults injected so far: {} of {} multiplications",
        protected.fault_stats().faulty,
        protected.fault_stats().multiplies
    );
    Ok(())
}

//! Kill a supervised monitoring service mid-shift and bring it back.
//!
//! A journaled deployment checkpoints its full state (per-shard RNG
//! streams, fault-injector gap, supervisor health machine, thermal step,
//! telemetry counters) every few batches and write-ahead-logs a commit
//! record per batch. We simulate a kill -9 — including a torn final
//! journal record, as if the power died mid-append — then recover the
//! journal, restore the service, replay the at-most-one uncommitted
//! batch, and finish the shift. The resumed run is bit-identical to one
//! that never died.
//!
//! ```text
//! cargo run --release --example crash_restore
//! ```

use shmd_volt::environment::EnvironmentConfig;
use shmd_volt::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::checkpoint::StateJournal;
use stochastic_hmd::serve::{MonitoringService, ServeConfig, Verdict};
use stochastic_hmd::supervisor::{ChaosPlan, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

const SHARDS: usize = 4;
const BATCHES: usize = 24;
const BATCH_SIZE: usize = 16;
const CADENCE: u64 = 6;
const KILL_BATCH: usize = 14;
const SEED: u64 = 7;

fn supervision(device: &DeviceProfile) -> SupervisorConfig {
    SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
        .with_chaos(ChaosPlan::seeded(SEED, SHARDS, 16, 2, 1))
}

fn config() -> ServeConfig {
    ServeConfig::new(SHARDS)
        .with_seed(SEED)
        .with_batch_size(BATCH_SIZE)
        .with_target_error_rate(0.2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(200), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )?;
    let device = DeviceProfile::reference();
    let spec = baseline.spec();
    let batch_at = |b: usize| -> Vec<Vec<f32>> {
        (0..BATCH_SIZE)
            .map(|i| spec.extract(dataset.trace((b * BATCH_SIZE + i) % dataset.len())))
            .collect()
    };

    // The uninterrupted reference shift, for the final comparison.
    let mut reference = MonitoringService::supervised(&baseline, supervision(&device), config())?;
    let reference_verdicts: Vec<Vec<Verdict>> = (0..BATCHES)
        .map(|b| reference.process_feature_batch(&batch_at(b)))
        .collect();

    // The victim: same deployment, but journaled — a checkpoint every
    // CADENCE batches, a commit record fsynced after every batch.
    let path = std::env::temp_dir().join(format!("crash-restore-{}.journal", std::process::id()));
    let mut service = MonitoringService::supervised(&baseline, supervision(&device), config())?;
    let mut journal = StateJournal::create(&path)?;
    for b in 0..=KILL_BATCH {
        if (b as u64).is_multiple_of(CADENCE) {
            journal.append_checkpoint(&service.checkpoint())?;
            println!("batch {b:>2}: checkpoint journaled");
        }
        service.process_feature_batch_journaled(&batch_at(b), &mut journal)?;
    }
    println!("batch {KILL_BATCH}: kill -9 (and the tail of the last journal append is torn off)");
    drop(journal);
    drop(service);
    let bytes = std::fs::read(&path)?;
    std::fs::write(&path, &bytes[..bytes.len() - 5])?;

    // Recovery: scan the journal, discard the torn tail, restore from the
    // last checkpoint, replay forward to the last committed batch.
    let recovery = StateJournal::recover(&path)?;
    println!(
        "\nrecovered: checkpoint at batch {:?}, {} commits, last committed batch {:?}, \
         {} torn bytes discarded",
        recovery.checkpoint.as_ref().map(|c| c.batches),
        recovery.commits.len(),
        recovery.last_committed_batch(),
        recovery.torn_bytes
    );
    let checkpoint = recovery.checkpoint.ok_or("no checkpoint in journal")?;
    let mut service = MonitoringService::restore(
        &baseline,
        Some(supervision(&device)),
        &checkpoint,
        Default::default(),
    )?;
    let mut identical = true;
    for (b, reference) in reference_verdicts
        .iter()
        .enumerate()
        .skip(checkpoint.batches as usize)
    {
        let verdicts = service.process_feature_batch(&batch_at(b));
        identical &= verdicts == *reference;
        if b <= KILL_BATCH {
            println!("batch {b:>2}: replayed");
        }
    }
    std::fs::remove_file(&path)?;

    let snapshot = service.snapshot();
    println!(
        "\nresumed shift: {} queries in {} batches, verdict checksum {:#018x}",
        snapshot.queries,
        snapshot.batches,
        service.verdict_checksum()
    );
    println!(
        "verdicts {} the uninterrupted reference",
        if identical {
            "bit-identical to"
        } else {
            "DIVERGED from"
        }
    );
    println!(
        "\nthe journal is the contract: a commit record is fsynced before a batch's \
         verdicts\nare exposed, so a crash loses at most one uncommitted batch — and \
         replaying it\nfrom the checkpoint is deterministic, so nothing is lost at all"
    );
    Ok(())
}

//! Sweep the undervolt level of a calibrated device and report the full
//! deployment trade-off: error rate, detection accuracy, and power savings
//! (the paper's §IX discussion in one table).
//!
//! ```text
//! cargo run --release --example voltage_tradeoff
//! ```

use shmd_power::cmos::{CmosPowerModel, PowerScope};
use shmd_volt::calibration::{Calibrator, DeviceProfile};
use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{evaluate, train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(300), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::paper(),
    )?;

    let device = DeviceProfile::reference();
    let curve = Calibrator::new().calibrate(&device);
    let power = CmosPowerModel::i7_5557u();
    println!(
        "device {}: first faults at {}, freeze at {}",
        curve.device(),
        curve.first_fault_offset(),
        curve.freeze_offset()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>12}",
        "offset", "error rate", "accuracy", "core save", "pkg save"
    );

    let first = curve.first_fault_offset().get();
    let freeze = curve.freeze_offset().get();
    let mut mv = 0i32;
    while mv >= freeze {
        let offset = Millivolts::new(mv);
        let er = curve.error_rate_at(offset);
        let mut hmd = StochasticHmd::at_offset(&baseline, &curve, offset, 3)?;
        let acc = evaluate(&mut hmd, &dataset, split.testing()).accuracy();
        let vdd = NOMINAL_CORE_VOLTAGE.with_offset(offset);
        println!(
            "{:>10} {:>12.4} {:>9.1}% {:>11.1}% {:>11.1}%",
            offset.to_string(),
            er,
            acc * 100.0,
            power.savings_over_baseline(vdd, PowerScope::Core) * 100.0,
            power.savings_over_baseline(vdd, PowerScope::Package) * 100.0
        );
        // Finer steps once the next coarse step would enter the fault window.
        mv -= if mv - 20 > first { 20 } else { 2 };
    }
    println!();
    match curve.offset_for_error_rate(0.1) {
        Ok(op) => println!("operating point for er = 0.1 on this device: {op}"),
        Err(e) => println!("er = 0.1 unreachable: {e}"),
    }
    Ok(())
}

//! Run a sharded continuous-monitoring service: a pool of Stochastic-HMD
//! replicas answering a trace stream, with telemetry export and graceful
//! degradation when calibration cannot deliver the target error rate.
//!
//! ```text
//! cargo run --release --example monitoring_service
//! ```

use shmd_volt::calibration::Calibrator;
use shmd_volt::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use stochastic_hmd::deploy::DetectionPolicy;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(300), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::paper(),
    )?;
    let curve = Calibrator::new().calibrate(&DeviceProfile::reference());

    // Four replicas at the paper's er = 0.1 operating point, majority-of-3
    // verdicts. Every shard seed derives from the one master seed, so the
    // whole service replays bit-for-bit at any thread count.
    let config = ServeConfig::new(4)
        .with_policy(DetectionPolicy::MajorityOf(3))
        .with_seed(7);
    let mut service = MonitoringService::deploy(&baseline, &curve, config)?;
    println!(
        "deployed {} shards, policy {}, target er 0.1",
        service.shard_count(),
        service.policy()
    );

    // A monitoring shift: replay the held-out programs as a query stream.
    let queries: Vec<&Trace> = split.testing().iter().map(|&i| dataset.trace(i)).collect();
    let verdicts = service.process_stream(&queries);
    let correct = verdicts
        .iter()
        .zip(split.testing())
        .filter(|(v, &i)| v.label.is_malware() == dataset.program(i).is_malware())
        .count();
    println!(
        "served {} queries: accuracy {:.1}%",
        verdicts.len(),
        100.0 * correct as f64 / verdicts.len() as f64
    );

    // Operations asks for a hotter operating point than the device can
    // reach: recalibration degrades every shard to the baseline detector —
    // the service keeps answering, telemetry records why.
    service.retarget(0.9)?;
    let degraded = service.recalibrate(&baseline, &curve);
    service.process_stream(&queries[..20.min(queries.len())]);
    println!("after retarget to er 0.9: {degraded} shards degraded to baseline");

    // Back to a reachable target: the pool recovers on the next
    // recalibration.
    service.retarget(0.1)?;
    service.recalibrate(&baseline, &curve);

    let snapshot = service.snapshot();
    println!(
        "\ntelemetry: {} queries in {} batches, {} flagged, {} degradation events",
        snapshot.queries, snapshot.batches, snapshot.flags, snapshot.degradation_events
    );
    println!(
        "faults injected: {} faulty multiplies over {} total (observed er {:.4})",
        snapshot.total_faults().faulty,
        snapshot.total_faults().multiplies,
        snapshot.total_faults().observed_error_rate()
    );
    for shard in &snapshot.shards {
        println!(
            "  shard {}: {} queries, {} flags, degraded = {}",
            shard.shard, shard.queries, shard.flags, shard.degraded
        );
    }

    // The snapshot round-trips through JSON for external dashboards.
    let json = snapshot.to_json();
    let back = stochastic_hmd::telemetry::TelemetrySnapshot::from_json(&json)?;
    assert_eq!(back, snapshot);
    println!(
        "\nsnapshot exports to {} bytes of JSON (round-trip verified)",
        json.len()
    );
    Ok(())
}

//! Upgrade a live monitoring daemon without losing a single query.
//!
//! An old daemon instance serves traffic over the binary wire protocol.
//! Mid-stream we roll it: drain (queued work still commits, new work is
//! refused with a typed `Reject`), journal a final checkpoint, emit a
//! hand-off frame carrying the checkpoint plus the verdict-checksum
//! identity, and boot a successor that restores from the frame and
//! proves checksum identity *before* taking traffic. The refused batch
//! is retried against the successor, and the full upgraded stream is
//! bit-identical to a never-upgraded reference.
//!
//! ```text
//! cargo run --release --example rolling_upgrade
//! ```

use shmd_volt::environment::EnvironmentConfig;
use shmd_volt::DeviceProfile;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::checkpoint::StateJournal;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosPlan, SupervisorConfig};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::{
    decode_frame, encode_frame, AdmissionConfig, Daemon, Frame, HANDOFF_FRAME_CAP,
};

const SHARDS: usize = 4;
const BATCHES: usize = 24;
const BATCH_SIZE: usize = 16;
const UPGRADE_AT: usize = 12;
const SEED: u64 = 11;

fn supervision(device: &DeviceProfile) -> SupervisorConfig {
    SupervisorConfig::new(device.clone())
        .with_environment(EnvironmentConfig::drifting(device.temp_c, SEED))
        .with_chaos(ChaosPlan::seeded(SEED, SHARDS, 16, 2, 1))
}

fn deploy(
    baseline: &stochastic_hmd::BaselineHmd,
    device: &DeviceProfile,
) -> Result<MonitoringService, Box<dyn std::error::Error>> {
    let config = ServeConfig::new(SHARDS)
        .with_seed(SEED)
        .with_batch_size(BATCH_SIZE)
        .with_target_error_rate(0.2);
    Ok(MonitoringService::supervised(
        baseline,
        supervision(device),
        config,
    )?)
}

fn journal_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rolling-upgrade-{}-{tag}.journal",
        std::process::id()
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(200), 42);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )?;
    let device = DeviceProfile::reference();
    let spec = baseline.spec();
    let batch_at = |b: usize| -> Vec<Vec<f32>> {
        (0..BATCH_SIZE)
            .map(|i| spec.extract(dataset.trace((b * BATCH_SIZE + i) % dataset.len())))
            .collect()
    };
    let submit_frame = |b: usize| {
        encode_frame(&Frame::SubmitBatch {
            tenant: 0,
            queries: batch_at(b),
        })
    };

    // The never-upgraded reference, for the final comparison.
    let ref_path = journal_path("reference");
    let mut reference = Daemon::new(
        deploy(&baseline, &device)?,
        StateJournal::create(&ref_path)?,
        AdmissionConfig::default(),
    )?;
    for b in 0..BATCHES {
        reference.handle_frame(&submit_frame(b))?;
        reference.pump_all()?;
    }
    let want = reference.verdict_checksum();
    println!(
        "reference: {} queries, verdict checksum {want:#018x}\n",
        reference.service().served()
    );

    // The old instance serves the first half of the stream.
    let old_path = journal_path("old");
    let mut old = Daemon::new(
        deploy(&baseline, &device)?,
        StateJournal::create(&old_path)?,
        AdmissionConfig::default(),
    )?;
    for b in 0..UPGRADE_AT {
        old.handle_frame(&submit_frame(b))?;
        old.pump_all()?;
    }
    println!(
        "old instance: served {} batches, upgrade ordered",
        UPGRADE_AT
    );

    // The upgrade: a Handoff frame while work is queued answers
    // Reject(Draining) — the daemon drains first. Asking again once the
    // queue is dry yields the hand-off state.
    old.handle_frame(&submit_frame(UPGRADE_AT))?;
    let reply = old.handle_frame(&encode_frame(&Frame::Handoff))?;
    if let (Frame::Reject { code, queued, .. }, _) = decode_frame(&reply, HANDOFF_FRAME_CAP)? {
        println!("handoff refused while draining: {code} ({queued} queries still queued)");
    }
    // New traffic during the drain is refused too; the client retries it
    // against the successor.
    let refused = old.handle_frame(&submit_frame(UPGRADE_AT + 1))?;
    if let (Frame::Reject { code, .. }, _) = decode_frame(&refused, HANDOFF_FRAME_CAP)? {
        println!("new submission refused during drain: {code} (will retry on the successor)");
    }
    old.pump_all()?;
    let handoff = old.handle_frame(&encode_frame(&Frame::Handoff))?;
    println!(
        "drained: hand-off frame emitted ({} bytes, phase {:?})",
        handoff.len(),
        old.phase()
    );
    drop(old);

    // The successor restores from the hand-off frame and asserts the
    // verdict-checksum identity before it will take any traffic.
    let new_path = journal_path("new");
    let mut new = Daemon::resume_from_handoff(
        &handoff,
        &baseline,
        Some(supervision(&device)),
        Default::default(),
        StateJournal::create(&new_path)?,
        AdmissionConfig::default(),
    )?;
    println!(
        "successor: restored at {} served queries, identity verified, taking traffic\n",
        new.service().served()
    );
    for b in UPGRADE_AT + 1..BATCHES {
        new.handle_frame(&submit_frame(b))?;
        new.pump_all()?;
    }

    let got = new.verdict_checksum();
    println!(
        "upgraded stream: {} queries, verdict checksum {got:#018x}",
        new.service().served()
    );
    println!(
        "upgrade {} the never-upgraded reference",
        if got == want {
            "is bit-identical to"
        } else {
            "DIVERGED from"
        }
    );
    println!(
        "\nzero committed queries were lost: the drain commits everything admitted, the\n\
         hand-off carries checkpoint + checksum identity, and the successor refuses to\n\
         serve until it reproduces that identity from its own restore"
    );
    for path in [ref_path, old_path, new_path] {
        std::fs::remove_file(&path)?;
    }
    if got != want {
        return Err("upgraded stream diverged".into());
    }
    Ok(())
}

//! A full black-box attack campaign against an unprotected HMD and its
//! Stochastic-HMD twin: reverse-engineer, generate evasive malware, test
//! transferability — the pipeline behind the paper's Figures 3 and 4.
//!
//! ```text
//! cargo run --release --example evasion_campaign
//! ```

use shmd_attack::campaign::{AttackCampaign, AttackTrainingSet};
use shmd_attack::reverse::ReverseConfig;
use shmd_attack::ProxyKind;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(&DatasetConfig::small(300), 11);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::paper(),
    )?;

    println!(
        "victim: {} weights, {} MACs/inference",
        baseline.network().num_weights(),
        baseline.network().mac_count()
    );
    println!();
    println!(
        "{:>6} {:>18} {:>14} {:>14} {:>16}",
        "proxy", "victim", "RE eff.", "evasive", "transfer succ."
    );

    for proxy in ProxyKind::ALL {
        let campaign = AttackCampaign::new(ReverseConfig::new(proxy))
            .with_training_set(AttackTrainingSet::AttackerTraining);

        // Attack the unprotected baseline...
        let mut unprotected = baseline.clone();
        let report = campaign.run(&mut unprotected, &dataset, 0)?;
        println!(
            "{:>6} {:>18} {:>13.1}% {:>9}/{:<4} {:>15.1}%",
            report.proxy,
            "baseline",
            report.re_effectiveness * 100.0,
            report.transfer.evaded_proxy,
            report.transfer.attempted,
            report.transfer.assumed_success_rate() * 100.0
        );

        // ...and the undervolted twin.
        let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 5)?;
        let report = campaign.run(&mut protected, &dataset, 0)?;
        println!(
            "{:>6} {:>18} {:>13.1}% {:>9}/{:<4} {:>15.1}%",
            report.proxy,
            "stochastic er=0.1",
            report.re_effectiveness * 100.0,
            report.transfer.evaded_proxy,
            report.transfer.attempted,
            report.transfer.assumed_success_rate() * 100.0
        );
    }
    println!();
    println!("evasive = samples that fooled the attacker's own proxy;");
    println!("transfer succ. = the fraction of those that also fooled the victim");
    Ok(())
}

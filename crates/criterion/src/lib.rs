//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! median-of-batches wall-clock measurement instead of criterion's full
//! statistical machinery. Good enough to rank datapaths and spot order-of-
//! magnitude regressions; not a replacement for real criterion numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET_BATCH: Duration = Duration::from_millis(40);
/// Batches measured; the median is reported.
const BATCHES: usize = 5;

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Times a closure over many iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration, set by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count to fill the target batch
    /// time, then reports the median over several batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill one batch?
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH / 4 || n >= 1 << 24 {
                let scale = TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                n = ((n as f64 * scale) as u64).clamp(1, 1 << 26);
                break;
            }
            n *= 8;
        }
        let mut samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A parameterised benchmark name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id that is just the display form of the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        self.criterion.run_one(&name, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group (stats are printed as benchmarks run).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        if ns >= 1e6 {
            println!("{name:<48} {:>12.3} ms/iter", ns / 1e6);
        } else if ns >= 1e3 {
            println!("{name:<48} {:>12.3} µs/iter", ns / 1e3);
        } else {
            println!("{name:<48} {ns:>12.1} ns/iter");
        }
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("a", |b| {
                ran += 1;
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.5).label, "0.5");
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}

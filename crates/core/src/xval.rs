//! Generic cross-validation summaries.
//!
//! The paper reports every metric as a mean over the three fold rotations
//! (and, for stochastic detectors, over repetitions). This module provides
//! that harness for *any* detector construction, so new detector variants
//! get paper-style evaluation for free.

use crate::detector::Detector;
use crate::exec::{parallel_map_n, ExecConfig};
use crate::train::TrainHmdError;
use serde::{Deserialize, Serialize};
use shmd_ml::metrics::{mean_std, ConfusionMatrix};
use shmd_workload::dataset::{Dataset, ThreeFoldSplit};

/// Aggregated cross-validation metrics (mean ± std across folds × reps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XvalSummary {
    /// Mean detection accuracy.
    pub accuracy_mean: f64,
    /// Standard deviation of the accuracy.
    pub accuracy_std: f64,
    /// Mean false-positive rate.
    pub fpr_mean: f64,
    /// Standard deviation of the FPR.
    pub fpr_std: f64,
    /// Mean false-negative rate.
    pub fnr_mean: f64,
    /// Standard deviation of the FNR.
    pub fnr_std: f64,
    /// Number of (fold × rep) evaluations aggregated.
    pub samples: usize,
}

impl XvalSummary {
    fn from_matrices(matrices: &[ConfusionMatrix]) -> XvalSummary {
        let accs: Vec<f64> = matrices.iter().map(ConfusionMatrix::accuracy).collect();
        let fprs: Vec<f64> = matrices
            .iter()
            .map(ConfusionMatrix::false_positive_rate)
            .collect();
        let fnrs: Vec<f64> = matrices
            .iter()
            .map(ConfusionMatrix::false_negative_rate)
            .collect();
        let (accuracy_mean, accuracy_std) = mean_std(&accs);
        let (fpr_mean, fpr_std) = mean_std(&fprs);
        let (fnr_mean, fnr_std) = mean_std(&fnrs);
        XvalSummary {
            accuracy_mean,
            accuracy_std,
            fpr_mean,
            fpr_std,
            fnr_mean,
            fnr_std,
            samples: matrices.len(),
        }
    }
}

/// Cross-validates an arbitrary detector construction on an automatically
/// sized thread pool. See [`cross_validate_with`].
///
/// # Errors
///
/// Propagates the construction error of the earliest failing
/// `(rotation, rep)` cell.
pub fn cross_validate<D, F>(
    dataset: &Dataset,
    reps: usize,
    build: F,
) -> Result<XvalSummary, TrainHmdError>
where
    D: Detector,
    F: Fn(&ThreeFoldSplit, usize, usize) -> Result<D, TrainHmdError> + Sync,
{
    cross_validate_with(dataset, reps, &ExecConfig::auto(), build)
}

/// Cross-validates an arbitrary detector construction.
///
/// `build` is called once per `(rotation, rep)` with the fold split and the
/// repetition index (use them to *derive* seeds for stochastic components —
/// see [`crate::exec::derive_seed`]); the returned detector is evaluated on
/// the rotation's test fold. Cells run concurrently under `exec`, and the
/// summary is bit-identical at any thread count.
///
/// # Errors
///
/// Propagates the construction error of the earliest failing
/// `(rotation, rep)` cell.
pub fn cross_validate_with<D, F>(
    dataset: &Dataset,
    reps: usize,
    exec: &ExecConfig,
    build: F,
) -> Result<XvalSummary, TrainHmdError>
where
    D: Detector,
    F: Fn(&ThreeFoldSplit, usize, usize) -> Result<D, TrainHmdError> + Sync,
{
    let reps = reps.max(1);
    let splits: Vec<ThreeFoldSplit> = (0..3).map(|r| dataset.three_fold_split(r)).collect();
    let matrices = parallel_map_n(exec, splits.len() * reps, |cell| {
        let rotation = cell / reps;
        let rep = cell % reps;
        let split = &splits[rotation];
        // The cell's detector classifies its entire test fold, so
        // detector-internal state (inference scratch buffers, the fault
        // injector's geometric gap counter) amortises across samples.
        let mut detector = build(split, rotation, rep)?;
        let mut m = ConfusionMatrix::new();
        for &i in split.testing() {
            m.record(
                detector.classify(dataset.trace(i)).is_malware(),
                dataset.program(i).is_malware(),
            );
        }
        Ok(m)
    })
    .into_iter()
    .collect::<Result<Vec<ConfusionMatrix>, TrainHmdError>>()?;
    Ok(XvalSummary::from_matrices(&matrices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::StochasticHmd;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(80), 71)
    }

    #[test]
    fn baseline_cross_validation_summarises() {
        let d = dataset();
        let summary = cross_validate(&d, 1, |split, _, _| {
            train_baseline(
                &d,
                split.victim_training(),
                FeatureSpec::frequency(),
                &HmdTrainConfig::fast(),
            )
        })
        .expect("builds");
        assert_eq!(summary.samples, 3);
        assert!(summary.accuracy_mean > 0.85, "{summary:?}");
        // A deterministic detector's spread is pure inter-fold variance.
        assert!(summary.accuracy_std < 0.1, "{summary:?}");
    }

    #[test]
    fn stochastic_cross_validation_uses_rep_seeds() {
        let d = dataset();
        let summary = cross_validate(&d, 3, |split, rotation, rep| {
            let base = train_baseline(
                &d,
                split.victim_training(),
                FeatureSpec::frequency(),
                &HmdTrainConfig::fast(),
            )?;
            Ok(
                StochasticHmd::from_baseline(&base, 0.3, (rotation * 100 + rep) as u64)
                    .expect("valid rate"),
            )
        })
        .expect("builds");
        assert_eq!(summary.samples, 9);
        assert!(
            summary.accuracy_std > 0.0,
            "reps must add spread: {summary:?}"
        );
    }

    #[test]
    fn summary_is_thread_count_invariant() {
        let d = dataset();
        let build = |split: &ThreeFoldSplit, rotation: usize, rep: usize| {
            let base = train_baseline(
                &d,
                split.victim_training(),
                FeatureSpec::frequency(),
                &HmdTrainConfig::fast(),
            )?;
            Ok(StochasticHmd::from_baseline(
                &base,
                0.3,
                crate::exec::derive_seed(9, &[rotation as u64, rep as u64]),
            )
            .expect("valid rate"))
        };
        let serial = cross_validate_with(&d, 2, &ExecConfig::serial(), build).expect("serial");
        let parallel =
            cross_validate_with(&d, 2, &ExecConfig::threads(4), build).expect("parallel");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn construction_errors_propagate() {
        let d = dataset();
        let result = cross_validate(&d, 1, |_, _, _| {
            Err::<StochasticHmd, _>(TrainHmdError::BadTrainingData("boom".into()))
        });
        assert!(matches!(result, Err(TrainHmdError::BadTrainingData(_))));
    }

    #[test]
    fn zero_reps_behaves_as_one() {
        let d = dataset();
        let summary = cross_validate(&d, 0, |split, _, _| {
            train_baseline(
                &d,
                split.victim_training(),
                FeatureSpec::frequency(),
                &HmdTrainConfig::fast(),
            )
        })
        .expect("builds");
        assert_eq!(summary.samples, 3);
    }
}

//! Continuous monitoring: per-window detection and time-to-detection.
//!
//! Deployed HMDs are "always on": they classify a program repeatedly as it
//! executes, one decision per detection window, and flag it at the first
//! positive. This module simulates that stream over a trace's windows —
//! the detector sees only the windows executed *so far* — and measures the
//! metric a responder cares about: **time to detection**, in windows of
//! executed payload before the alarm.
//!
//! Against evasive malware this is where a Stochastic-HMD's moving target
//! pays off most visibly: a deterministic detector that misses the padded
//! sample misses it forever, while every window gives the stochastic
//! detector a fresh boundary draw.

use crate::detector::Detector;
use serde::{Deserialize, Serialize};
use shmd_workload::trace::Trace;

/// Outcome of monitoring one program's execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorOutcome {
    /// Flagged after this many windows had executed (1-based).
    DetectedAt(usize),
    /// The program ran to completion unflagged.
    Completed,
}

impl MonitorOutcome {
    /// `true` if the program was flagged at any point.
    pub fn detected(self) -> bool {
        matches!(self, MonitorOutcome::DetectedAt(_))
    }
}

/// Result of a monitoring session over many programs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Programs flagged, with their detection window.
    pub detected: Vec<(usize, usize)>,
    /// Programs that completed unflagged (their indices).
    pub missed: Vec<usize>,
}

impl MonitorReport {
    /// Fraction of monitored programs flagged before completion.
    pub fn detection_rate(&self) -> f64 {
        let total = self.detected.len() + self.missed.len();
        if total == 0 {
            return 0.0;
        }
        self.detected.len() as f64 / total as f64
    }

    /// Mean windows of execution before the alarm (detected programs
    /// only); `None` when nothing was detected.
    pub fn mean_time_to_detection(&self) -> Option<f64> {
        if self.detected.is_empty() {
            return None;
        }
        Some(self.detected.iter().map(|&(_, w)| w as f64).sum::<f64>() / self.detected.len() as f64)
    }
}

/// Monitors one trace window by window: after each executed window the
/// detector classifies the execution so far, and the first positive stops
/// the program.
///
/// `warmup` windows execute before the first detection (a detector needs a
/// minimal observation to extract features from).
pub fn monitor_trace(detector: &mut dyn Detector, trace: &Trace, warmup: usize) -> MonitorOutcome {
    let windows = trace.windows();
    let start = warmup.clamp(1, windows.len());
    for executed in start..=windows.len() {
        let so_far = Trace::from_windows(windows[..executed].to_vec());
        if detector.classify(&so_far).is_malware() {
            return MonitorOutcome::DetectedAt(executed);
        }
    }
    MonitorOutcome::Completed
}

/// Monitors a set of traces and aggregates the report.
pub fn monitor_all(
    detector: &mut dyn Detector,
    traces: &[(usize, &Trace)],
    warmup: usize,
) -> MonitorReport {
    let mut report = MonitorReport::default();
    for &(idx, trace) in traces {
        match monitor_trace(detector, trace, warmup) {
            MonitorOutcome::DetectedAt(w) => report.detected.push((idx, w)),
            MonitorOutcome::Completed => report.missed.push(idx),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::StochasticHmd;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use shmd_workload::isa::CATEGORY_COUNT;

    struct Always(bool);
    impl Detector for Always {
        fn name(&self) -> &str {
            "always"
        }
        fn score(&mut self, _trace: &Trace) -> f64 {
            if self.0 {
                1.0
            } else {
                0.0
            }
        }
    }

    fn trace(windows: usize) -> Trace {
        Trace::from_windows(vec![[10u32; CATEGORY_COUNT]; windows])
    }

    #[test]
    fn always_positive_detects_at_warmup() {
        let outcome = monitor_trace(&mut Always(true), &trace(8), 3);
        assert_eq!(outcome, MonitorOutcome::DetectedAt(3));
        assert!(outcome.detected());
    }

    #[test]
    fn always_negative_completes() {
        let outcome = monitor_trace(&mut Always(false), &trace(8), 1);
        assert_eq!(outcome, MonitorOutcome::Completed);
        assert!(!outcome.detected());
    }

    #[test]
    fn warmup_is_clamped_to_trace_length() {
        let outcome = monitor_trace(&mut Always(true), &trace(4), 100);
        assert_eq!(outcome, MonitorOutcome::DetectedAt(4));
    }

    #[test]
    fn report_aggregates() {
        let t = trace(6);
        let traces = vec![(0usize, &t), (1, &t)];
        let report = monitor_all(&mut Always(true), &traces, 2);
        assert_eq!(report.detection_rate(), 1.0);
        assert_eq!(report.mean_time_to_detection(), Some(2.0));

        let report = monitor_all(&mut Always(false), &traces, 2);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.mean_time_to_detection(), None);
    }

    #[test]
    fn real_detector_catches_malware_early() {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 17);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 5).expect("valid");
        let malware: Vec<(usize, &Trace)> = dataset
            .malware_indices(split.testing())
            .map(|i| (i, dataset.trace(i)))
            .collect();
        let report = monitor_all(&mut protected, &malware, 4);
        assert!(
            report.detection_rate() > 0.85,
            "rate {}",
            report.detection_rate()
        );
        let ttd = report.mean_time_to_detection().expect("something detected");
        assert!(
            ttd < 10.0,
            "malware should be caught well before its 16 windows complete: {ttd}"
        );
    }

    #[test]
    fn stochastic_monitoring_beats_single_shot_on_borderline_samples() {
        // A stochastic detector gets one boundary draw per window; over a
        // whole execution it catches samples a single detection misses.
        let dataset = Dataset::generate(&DatasetConfig::small(100), 18);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let mut protected = StochasticHmd::from_baseline(&baseline, 0.3, 7).expect("valid");
        let malware: Vec<(usize, &Trace)> = dataset
            .malware_indices(split.testing())
            .map(|i| (i, dataset.trace(i)))
            .collect();
        // Single-shot detection rate.
        let single = malware
            .iter()
            .filter(|&&(_, t)| protected.classify(t).is_malware())
            .count() as f64
            / malware.len() as f64;
        let monitored = monitor_all(&mut protected, &malware, 4).detection_rate();
        assert!(
            monitored >= single - 0.02,
            "monitoring must not detect less than one shot: {monitored} vs {single}"
        );
    }
}

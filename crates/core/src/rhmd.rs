//! RHMD (MICRO 2017) — the randomization-based comparison defense.
//!
//! RHMD resists reverse engineering by storing several *diverse* base
//! detectors and switching among them uniformly at random on every
//! detection. Diversity comes from training on different feature vectors
//! (F) and different detection periods (P); the paper evaluates the four
//! constructions RHMD-2F, RHMD-3F, RHMD-2F2P, and RHMD-3F2P.
//!
//! Unlike a Stochastic-HMD, an RHMD must store every base detector
//! (memory), select one per query (latency), and runs at nominal voltage
//! (power) — the §VIII overheads.

use crate::baseline::BaselineHmd;
use crate::detector::Detector;
use crate::train::{train_baseline, HmdTrainConfig, TrainHmdError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use shmd_workload::features::{DetectionPeriod, FeatureKind, FeatureSpec};
use shmd_workload::trace::Trace;
use std::fmt;

/// The four RHMD constructions evaluated by the paper (§VII-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RhmdConstruction {
    /// Two feature vectors, one detection period.
    TwoFeatures,
    /// Three feature vectors, one detection period.
    ThreeFeatures,
    /// Two feature vectors × two detection periods (4 base detectors).
    TwoFeaturesTwoPeriods,
    /// Three feature vectors × two detection periods (6 base detectors).
    ThreeFeaturesTwoPeriods,
}

impl RhmdConstruction {
    /// All constructions, in the paper's order.
    pub const ALL: [RhmdConstruction; 4] = [
        RhmdConstruction::TwoFeatures,
        RhmdConstruction::ThreeFeatures,
        RhmdConstruction::TwoFeaturesTwoPeriods,
        RhmdConstruction::ThreeFeaturesTwoPeriods,
    ];

    /// The feature specifications of the base detectors.
    pub fn specs(self) -> Vec<FeatureSpec> {
        let kinds: &[FeatureKind] = match self {
            RhmdConstruction::TwoFeatures | RhmdConstruction::TwoFeaturesTwoPeriods => {
                &[FeatureKind::Frequency, FeatureKind::Burstiness]
            }
            RhmdConstruction::ThreeFeatures | RhmdConstruction::ThreeFeaturesTwoPeriods => {
                &FeatureKind::ALL
            }
        };
        let periods: &[DetectionPeriod] = match self {
            RhmdConstruction::TwoFeatures | RhmdConstruction::ThreeFeatures => {
                &[DetectionPeriod::EVERY_WINDOW]
            }
            RhmdConstruction::TwoFeaturesTwoPeriods | RhmdConstruction::ThreeFeaturesTwoPeriods => {
                &[DetectionPeriod::EVERY_WINDOW, DetectionPeriod::EVERY_OTHER]
            }
        };
        let mut out = Vec::new();
        for &p in periods {
            for &k in kinds {
                out.push(FeatureSpec::new(k, p));
            }
        }
        out
    }

    /// Number of base detectors the construction stores.
    pub fn detector_count(self) -> usize {
        self.specs().len()
    }
}

impl fmt::Display for RhmdConstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RhmdConstruction::TwoFeatures => "RHMD-2F",
            RhmdConstruction::ThreeFeatures => "RHMD-3F",
            RhmdConstruction::TwoFeaturesTwoPeriods => "RHMD-2F2P",
            RhmdConstruction::ThreeFeaturesTwoPeriods => "RHMD-3F2P",
        };
        f.write_str(name)
    }
}

/// A trained RHMD: diverse base detectors plus a switching RNG.
#[derive(Clone, Debug)]
pub struct Rhmd {
    name: String,
    construction: RhmdConstruction,
    bases: Vec<BaselineHmd>,
    rng: StdRng,
}

impl Rhmd {
    /// Trains an RHMD on a fold: one base detector per feature spec of the
    /// construction, each with a distinct initialisation seed.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainHmdError`] from base-detector training.
    pub fn train(
        dataset: &Dataset,
        indices: &[usize],
        construction: RhmdConstruction,
        config: &HmdTrainConfig,
        switch_seed: u64,
    ) -> Result<Rhmd, TrainHmdError> {
        let mut bases = Vec::new();
        for (i, spec) in construction.specs().into_iter().enumerate() {
            let mut cfg = *config;
            cfg.seed = config.seed.wrapping_add(i as u64);
            bases.push(train_baseline(dataset, indices, spec, &cfg)?);
        }
        Ok(Rhmd {
            name: construction.to_string(),
            construction,
            bases,
            rng: StdRng::seed_from_u64(switch_seed),
        })
    }

    /// The construction this RHMD implements.
    pub fn construction(&self) -> RhmdConstruction {
        self.construction
    }

    /// The base detectors.
    pub fn bases(&self) -> &[BaselineHmd] {
        &self.bases
    }

    /// Total stored model size in bytes (every base detector).
    pub fn size_bytes(&self) -> usize {
        self.bases.iter().map(|b| b.quantized().size_bytes()).sum()
    }
}

impl Detector for Rhmd {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&mut self, trace: &Trace) -> f64 {
        let pick = self.rng.gen_range(0..self.bases.len());
        let base = &self.bases[pick];
        base.score_features(&base.spec().extract(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::evaluate;
    use shmd_workload::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(100), 41)
    }

    #[test]
    fn constructions_have_paper_detector_counts() {
        assert_eq!(RhmdConstruction::TwoFeatures.detector_count(), 2);
        assert_eq!(RhmdConstruction::ThreeFeatures.detector_count(), 3);
        assert_eq!(RhmdConstruction::TwoFeaturesTwoPeriods.detector_count(), 4);
        assert_eq!(
            RhmdConstruction::ThreeFeaturesTwoPeriods.detector_count(),
            6
        );
    }

    #[test]
    fn specs_are_distinct() {
        for c in RhmdConstruction::ALL {
            let specs = c.specs();
            let set: std::collections::HashSet<_> = specs.iter().collect();
            assert_eq!(set.len(), specs.len(), "{c}: duplicate base specs");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(RhmdConstruction::TwoFeatures.to_string(), "RHMD-2F");
        assert_eq!(
            RhmdConstruction::ThreeFeaturesTwoPeriods.to_string(),
            "RHMD-3F2P"
        );
    }

    #[test]
    fn rhmd_detects_malware() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeatures,
            &HmdTrainConfig::fast(),
            7,
        )
        .expect("train");
        let m = evaluate(&mut rhmd, &d, split.testing());
        assert!(m.accuracy() > 0.85, "{m}");
    }

    #[test]
    fn rhmd_switching_produces_varying_scores() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::ThreeFeatures,
            &HmdTrainConfig::fast(),
            3,
        )
        .expect("train");
        // Saturated samples score exactly 1.0 on every base; look for at
        // least one test trace where switching is visible.
        let varying = split.testing().iter().any(|&i| {
            let t = d.trace(i);
            let scores: std::collections::HashSet<u64> =
                (0..30).map(|_| rhmd.score(t).to_bits()).collect();
            scores.len() > 1
        });
        assert!(varying, "random switching must vary scores somewhere");
    }

    #[test]
    fn rhmd_stores_every_base() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeaturesTwoPeriods,
            &HmdTrainConfig::fast(),
            1,
        )
        .expect("train");
        assert_eq!(rhmd.bases().len(), 4);
        let single = rhmd.bases()[0].quantized().size_bytes();
        assert_eq!(rhmd.size_bytes(), 4 * single);
    }
}

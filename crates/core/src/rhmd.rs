//! RHMD (MICRO 2017) — the randomization-based comparison defense.
//!
//! RHMD resists reverse engineering by storing several *diverse* base
//! detectors and switching among them uniformly at random on every
//! detection. Diversity comes from training on different feature vectors
//! (F) and different detection periods (P); the paper evaluates the four
//! constructions RHMD-2F, RHMD-3F, RHMD-2F2P, and RHMD-3F2P.
//!
//! Unlike a Stochastic-HMD, an RHMD must store every base detector
//! (memory), select one per query (latency), and runs at nominal voltage
//! (power) — the §VIII overheads.

use crate::baseline::BaselineHmd;
use crate::detector::Detector;
use crate::train::{train_baseline, HmdTrainConfig, TrainHmdError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use shmd_ml::anomaly::{AnomalyConfig, AnomalyScorer};
use shmd_workload::dataset::Dataset;
use shmd_workload::features::{DetectionPeriod, FeatureKind, FeatureSpec};
use shmd_workload::trace::Trace;
use std::fmt;

/// The four RHMD constructions evaluated by the paper (§VII-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RhmdConstruction {
    /// Two feature vectors, one detection period.
    TwoFeatures,
    /// Three feature vectors, one detection period.
    ThreeFeatures,
    /// Two feature vectors × two detection periods (4 base detectors).
    TwoFeaturesTwoPeriods,
    /// Three feature vectors × two detection periods (6 base detectors).
    ThreeFeaturesTwoPeriods,
}

impl RhmdConstruction {
    /// All constructions, in the paper's order.
    pub const ALL: [RhmdConstruction; 4] = [
        RhmdConstruction::TwoFeatures,
        RhmdConstruction::ThreeFeatures,
        RhmdConstruction::TwoFeaturesTwoPeriods,
        RhmdConstruction::ThreeFeaturesTwoPeriods,
    ];

    /// The feature specifications of the base detectors.
    pub fn specs(self) -> Vec<FeatureSpec> {
        let kinds: &[FeatureKind] = match self {
            RhmdConstruction::TwoFeatures | RhmdConstruction::TwoFeaturesTwoPeriods => {
                &[FeatureKind::Frequency, FeatureKind::Burstiness]
            }
            RhmdConstruction::ThreeFeatures | RhmdConstruction::ThreeFeaturesTwoPeriods => {
                &FeatureKind::ALL
            }
        };
        let periods: &[DetectionPeriod] = match self {
            RhmdConstruction::TwoFeatures | RhmdConstruction::ThreeFeatures => {
                &[DetectionPeriod::EVERY_WINDOW]
            }
            RhmdConstruction::TwoFeaturesTwoPeriods | RhmdConstruction::ThreeFeaturesTwoPeriods => {
                &[DetectionPeriod::EVERY_WINDOW, DetectionPeriod::EVERY_OTHER]
            }
        };
        let mut out = Vec::new();
        for &p in periods {
            for &k in kinds {
                out.push(FeatureSpec::new(k, p));
            }
        }
        out
    }

    /// Number of base detectors the construction stores.
    pub fn detector_count(self) -> usize {
        self.specs().len()
    }
}

impl fmt::Display for RhmdConstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RhmdConstruction::TwoFeatures => "RHMD-2F",
            RhmdConstruction::ThreeFeatures => "RHMD-3F",
            RhmdConstruction::TwoFeaturesTwoPeriods => "RHMD-2F2P",
            RhmdConstruction::ThreeFeaturesTwoPeriods => "RHMD-3F2P",
        };
        f.write_str(name)
    }
}

/// A trained RHMD: diverse base detectors plus a switching RNG, and
/// optionally a Tang-style unsupervised anomaly scorer as one more
/// switching target (see [`Rhmd::train_with_anomaly`]).
#[derive(Clone, Debug)]
pub struct Rhmd {
    name: String,
    construction: RhmdConstruction,
    bases: Vec<BaselineHmd>,
    /// Benign-only anomaly member: the feature spec it reads and the
    /// fitted scorer. Counts as one extra pick in the switching draw.
    anomaly: Option<(FeatureSpec, AnomalyScorer)>,
    rng: StdRng,
}

impl Rhmd {
    /// Trains an RHMD on a fold: one base detector per feature spec of the
    /// construction, each with a distinct initialisation seed.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainHmdError`] from base-detector training.
    pub fn train(
        dataset: &Dataset,
        indices: &[usize],
        construction: RhmdConstruction,
        config: &HmdTrainConfig,
        switch_seed: u64,
    ) -> Result<Rhmd, TrainHmdError> {
        let mut bases = Vec::new();
        for (i, spec) in construction.specs().into_iter().enumerate() {
            let mut cfg = *config;
            cfg.seed = config.seed.wrapping_add(i as u64);
            bases.push(train_baseline(dataset, indices, spec, &cfg)?);
        }
        Ok(Rhmd {
            name: construction.to_string(),
            construction,
            bases,
            anomaly: None,
            rng: StdRng::seed_from_u64(switch_seed),
        })
    }

    /// Trains an RHMD whose switching pool additionally holds a
    /// Tang-style unsupervised anomaly scorer (RAID'14): fitted on the
    /// *benign* rows of the training fold only, over the construction's
    /// first feature spec. The scorer has a genuinely different failure
    /// surface from the supervised bases — an adversarial sample crafted
    /// against a discriminative boundary does not automatically sit
    /// inside the benign density — so the ensemble gains diversity at the
    /// cost of one more switching target.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainHmdError`] from base-detector training;
    /// [`TrainHmdError::BadTrainingData`] when the fold holds no benign
    /// rows to fit the anomaly envelope on.
    pub fn train_with_anomaly(
        dataset: &Dataset,
        indices: &[usize],
        construction: RhmdConstruction,
        config: &HmdTrainConfig,
        switch_seed: u64,
    ) -> Result<Rhmd, TrainHmdError> {
        let mut rhmd = Rhmd::train(dataset, indices, construction, config, switch_seed)?;
        let spec = construction.specs()[0];
        let labeled = dataset.labeled_features(indices, spec);
        let benign: Vec<Vec<f32>> = labeled
            .inputs
            .iter()
            .zip(&labeled.labels)
            .filter(|(_, &malware)| !malware)
            .map(|(row, _)| row.clone())
            .collect();
        let scorer = AnomalyScorer::fit(&benign, &AnomalyConfig::default())
            .map_err(|e| TrainHmdError::BadTrainingData(e.to_string()))?;
        rhmd.name = format!("{construction}+A");
        rhmd.anomaly = Some((spec, scorer));
        Ok(rhmd)
    }

    /// The construction this RHMD implements.
    pub fn construction(&self) -> RhmdConstruction {
        self.construction
    }

    /// The base detectors.
    pub fn bases(&self) -> &[BaselineHmd] {
        &self.bases
    }

    /// The anomaly member, when trained via [`Rhmd::train_with_anomaly`].
    pub fn anomaly(&self) -> Option<&AnomalyScorer> {
        self.anomaly.as_ref().map(|(_, scorer)| scorer)
    }

    /// Total stored model size in bytes (every base detector, plus the
    /// anomaly member's moments when present).
    pub fn size_bytes(&self) -> usize {
        self.bases
            .iter()
            .map(|b| b.quantized().size_bytes())
            .sum::<usize>()
            + self
                .anomaly
                .as_ref()
                .map_or(0, |(_, scorer)| scorer.size_bytes())
    }
}

impl Detector for Rhmd {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&mut self, trace: &Trace) -> f64 {
        let pool = self.bases.len() + usize::from(self.anomaly.is_some());
        let pick = self.rng.gen_range(0..pool);
        match self.bases.get(pick) {
            Some(base) => base.score_features(&base.spec().extract(trace)),
            None => match &self.anomaly {
                Some((spec, scorer)) => scorer.score(&spec.extract(trace)),
                // Unreachable: pick < pool implies an anomaly member when
                // pick >= bases.len().
                None => 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::evaluate;
    use shmd_workload::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(100), 41)
    }

    #[test]
    fn constructions_have_paper_detector_counts() {
        assert_eq!(RhmdConstruction::TwoFeatures.detector_count(), 2);
        assert_eq!(RhmdConstruction::ThreeFeatures.detector_count(), 3);
        assert_eq!(RhmdConstruction::TwoFeaturesTwoPeriods.detector_count(), 4);
        assert_eq!(
            RhmdConstruction::ThreeFeaturesTwoPeriods.detector_count(),
            6
        );
    }

    #[test]
    fn specs_are_distinct() {
        for c in RhmdConstruction::ALL {
            let specs = c.specs();
            let set: std::collections::HashSet<_> = specs.iter().collect();
            assert_eq!(set.len(), specs.len(), "{c}: duplicate base specs");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(RhmdConstruction::TwoFeatures.to_string(), "RHMD-2F");
        assert_eq!(
            RhmdConstruction::ThreeFeaturesTwoPeriods.to_string(),
            "RHMD-3F2P"
        );
    }

    #[test]
    fn rhmd_detects_malware() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeatures,
            &HmdTrainConfig::fast(),
            7,
        )
        .expect("train");
        let m = evaluate(&mut rhmd, &d, split.testing());
        assert!(m.accuracy() > 0.85, "{m}");
    }

    #[test]
    fn rhmd_switching_produces_varying_scores() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::ThreeFeatures,
            &HmdTrainConfig::fast(),
            3,
        )
        .expect("train");
        // Saturated samples score exactly 1.0 on every base; look for at
        // least one test trace where switching is visible.
        let varying = split.testing().iter().any(|&i| {
            let t = d.trace(i);
            let scores: std::collections::HashSet<u64> =
                (0..30).map(|_| rhmd.score(t).to_bits()).collect();
            scores.len() > 1
        });
        assert!(varying, "random switching must vary scores somewhere");
    }

    #[test]
    fn anomaly_member_keeps_accuracy_and_grows_the_pool() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut rhmd = Rhmd::train_with_anomaly(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeatures,
            &HmdTrainConfig::fast(),
            7,
        )
        .expect("train");
        assert!(rhmd.anomaly().is_some());
        assert_eq!(rhmd.name(), "RHMD-2F+A");
        assert_eq!(rhmd.bases().len(), 2);
        // The anomaly member's moments count toward the stored size.
        let plain = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeatures,
            &HmdTrainConfig::fast(),
            7,
        )
        .expect("train plain");
        assert!(rhmd.size_bytes() > plain.size_bytes());
        // Switching through the anomaly member keeps the ensemble usable.
        let m = evaluate(&mut rhmd, &d, split.testing());
        assert!(m.accuracy() > 0.7, "{m}");
    }

    #[test]
    fn rhmd_stores_every_base() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let rhmd = Rhmd::train(
            &d,
            split.victim_training(),
            RhmdConstruction::TwoFeaturesTwoPeriods,
            &HmdTrainConfig::fast(),
            1,
        )
        .expect("train");
        assert_eq!(rhmd.bases().len(), 4);
        let single = rhmd.bases()[0].quantized().size_bytes();
        assert_eq!(rhmd.size_bytes(), 4 * single);
    }
}

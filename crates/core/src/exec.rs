//! Deterministic parallel execution of experiment task grids.
//!
//! Every experiment in this workspace is a grid of independent tasks
//! (error rate × fold × repetition, proxy × rotation × seed, …). This
//! module fans such grids across a configurable number of threads while
//! guaranteeing **bit-identical results regardless of thread count**:
//!
//! - results are written into a slot indexed by task id, so the output
//!   order never depends on scheduling;
//! - every task derives its RNG seed from the experiment's master seed and
//!   its own grid coordinates with [`derive_seed`] (a splitmix64-style
//!   avalanche mixer), never from a shared sequential RNG stream or a
//!   thread id.
//!
//! The engine is std-only: a [`std::thread::scope`] worker pool claiming
//! task indices from an atomic counter — work-stealing in effect, since an
//! idle worker immediately claims the next unstarted task.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The odd increment of the splitmix64 sequence (2⁶⁴ / φ).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a bijective avalanche mixer over `u64`.
///
/// Every output bit depends on every input bit, so structured inputs
/// (small counters, grid coordinates) map to statistically independent
/// outputs — unlike the additive `seed + a·i + b·j` compositions it
/// replaces, which collide whenever one coordinate's stride overflows into
/// another's (e.g. `(fi, rep)` vs `(fi + 1, rep − 256)` for strides
/// 0x1000/0x100/1).
#[inline]
pub fn mix_seed(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent RNG seed from a master seed and a task's grid
/// coordinates.
///
/// The derivation folds each coordinate through [`mix_seed`] sequentially,
/// so `(a, b)` and `(b, a)` — and paths of different lengths — yield
/// unrelated seeds. Use one coordinate per grid axis, with a leading
/// experiment tag when several experiments share a master seed:
///
/// ```
/// use stochastic_hmd::exec::derive_seed;
/// let s1 = derive_seed(42, &[1, 0, 7]);
/// let s2 = derive_seed(42, &[1, 1, 7]);
/// assert_ne!(s1, s2);
/// ```
#[inline]
pub fn derive_seed(master: u64, path: &[u64]) -> u64 {
    let mut state = mix_seed(master ^ GOLDEN_GAMMA);
    for &coordinate in path {
        state = mix_seed(state.wrapping_add(GOLDEN_GAMMA).wrapping_add(coordinate));
    }
    state
}

/// Thread-count configuration for [`parallel_map`] / [`parallel_map_n`].
///
/// The configuration only affects wall-clock time, never results: the same
/// task grid produces bit-identical output under [`ExecConfig::serial`],
/// [`ExecConfig::threads`], and [`ExecConfig::auto`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    threads: usize,
}

impl ExecConfig {
    /// Runs every task on the calling thread.
    pub fn serial() -> ExecConfig {
        ExecConfig { threads: 1 }
    }

    /// Uses exactly `threads` worker threads (clamped to at least 1).
    pub fn threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// Uses one worker per available hardware thread.
    pub fn auto() -> ExecConfig {
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// From an optional `--threads` flag: `None` means [`ExecConfig::auto`].
    pub fn from_flag(threads: Option<usize>) -> ExecConfig {
        threads.map_or_else(ExecConfig::auto, ExecConfig::threads)
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::auto()
    }
}

/// Maps `f` over the task indices `0..tasks`, returning results in index
/// order.
///
/// Workers claim indices from a shared atomic counter, so load balances
/// dynamically; each result lands in its own slot, so the output is
/// independent of which worker ran which task. A panicking task propagates
/// the panic to the caller once the scope joins.
pub fn parallel_map_n<R, F>(config: &ExecConfig, tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = config.thread_count().min(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let caught: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(result) => *slots[i].lock().expect("slot mutex poisoned") = Some(result),
                    Err(payload) => {
                        // Re-raise on the caller with the original message,
                        // not the scope's generic join panic.
                        caught
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = caught.into_inner().expect("panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every claimed slot is filled")
        })
        .collect()
}

/// Maps `f` over a slice, returning results in item order.
///
/// `f` receives each item's index alongside the item — derive per-task
/// seeds from the index, never from a shared RNG.
pub fn parallel_map<T, R, F>(config: &ExecConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_n(config, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_seed_is_bijective_on_a_sample() {
        let outputs: HashSet<u64> = (0..10_000u64).map(mix_seed).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn derive_seed_avalanches_neighbouring_coordinates() {
        let a = derive_seed(1, &[0, 0, 0]);
        let b = derive_seed(1, &[0, 0, 1]);
        assert_ne!(a, b);
        // Hamming distance should be near 32 for an avalanche mixer.
        let distance = (a ^ b).count_ones();
        assert!((10..=54).contains(&distance), "weak avalanche: {distance}");
    }

    #[test]
    fn derive_seed_distinguishes_path_structure() {
        assert_ne!(derive_seed(7, &[1, 2]), derive_seed(7, &[2, 1]));
        assert_ne!(derive_seed(7, &[1]), derive_seed(7, &[1, 0]));
        assert_ne!(derive_seed(7, &[]), derive_seed(8, &[]));
    }

    #[test]
    fn derived_grid_seeds_are_collision_free() {
        // The additive scheme this replaces collided at reps > 256; the
        // mixed derivation must keep a full 3-axis grid distinct.
        let mut seen = HashSet::new();
        for gi in 0..6u64 {
            for fi in 0..3u64 {
                for rep in 0..300u64 {
                    seen.insert(derive_seed(42, &[gi, fi, rep]));
                }
            }
        }
        assert_eq!(seen.len(), 6 * 3 * 300);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&ExecConfig::threads(8), &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| mix_seed(i as u64);
        let serial = parallel_map_n(&ExecConfig::serial(), 257, f);
        for threads in [2, 3, 8, 64] {
            let parallel = parallel_map_n(&ExecConfig::threads(threads), 257, f);
            assert_eq!(serial, parallel, "results differ at {threads} threads");
        }
    }

    #[test]
    fn empty_and_single_task_grids_work() {
        let none: Vec<u64> = parallel_map_n(&ExecConfig::threads(4), 0, |i| i as u64);
        assert!(none.is_empty());
        let one = parallel_map_n(&ExecConfig::threads(4), 1, |i| i as u64);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn thread_config_accessors() {
        assert_eq!(ExecConfig::serial().thread_count(), 1);
        assert_eq!(ExecConfig::threads(0).thread_count(), 1);
        assert_eq!(ExecConfig::threads(6).thread_count(), 6);
        assert_eq!(ExecConfig::from_flag(Some(3)).thread_count(), 3);
        assert!(ExecConfig::from_flag(None).thread_count() >= 1);
        assert!(ExecConfig::default().thread_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn worker_panics_propagate() {
        let _ = parallel_map_n(&ExecConfig::threads(4), 16, |i| {
            if i == 7 {
                panic!("task boom");
            }
            i
        });
    }
}

//! Trusted detection enclave: undervolt *only* while detecting.
//!
//! §IX "Implication of undervolting on the rest of the system":
//! "the undervolting should be applied only when executing the HMDs
//! detection component ... the voltage needs to be undervolted directly
//! after entering the TEE and scaled back to the nominal voltage just
//! before exiting the TEE", and §III "Trusted control": the voltage
//! regulator must be exclusively owned by the detection component, or the
//! adversary simply restores nominal voltage and strips the defense.
//!
//! [`DetectionEnclave`] packages those rules: it owns an
//! [`AdaptiveVoltageController`] (exclusive VR control), undervolts on
//! entry, restores on exit — including on panic, via an RAII guard — and
//! tracks the voltage state so tests can assert the invariant "outside
//! detection the core always sits at nominal voltage".

use crate::deploy::DetectionPolicy;
use crate::detector::{Detector, Label};
use crate::stochastic::StochasticHmd;
use crate::BaselineHmd;
use shmd_volt::calibration::CalibrationError;
use shmd_volt::controller::{AdaptiveVoltageController, ControllerConfig};
use shmd_volt::fault::FaultModelError;
use shmd_volt::voltage::Millivolts;
use shmd_volt::DeviceProfile;
use shmd_workload::trace::Trace;
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Error constructing or operating a [`DetectionEnclave`].
#[derive(Clone, Debug, PartialEq)]
pub enum EnclaveError {
    /// Device calibration failed.
    Calibration(CalibrationError),
    /// Building the fault model failed.
    Fault(FaultModelError),
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::Calibration(e) => write!(f, "calibration failed: {e}"),
            EnclaveError::Fault(e) => write!(f, "fault model failed: {e}"),
        }
    }
}

impl std::error::Error for EnclaveError {}

impl From<CalibrationError> for EnclaveError {
    fn from(e: CalibrationError) -> EnclaveError {
        EnclaveError::Calibration(e)
    }
}

impl From<FaultModelError> for EnclaveError {
    fn from(e: FaultModelError) -> EnclaveError {
        EnclaveError::Fault(e)
    }
}

/// The simulated core-voltage state the enclave guards.
#[derive(Clone, Debug)]
pub struct CoreVoltageState {
    offset: Rc<Cell<i32>>,
}

impl CoreVoltageState {
    fn new() -> CoreVoltageState {
        CoreVoltageState {
            offset: Rc::new(Cell::new(0)),
        }
    }

    /// The offset currently applied to the core, in mV.
    pub fn current_offset(&self) -> Millivolts {
        Millivolts::new(self.offset.get())
    }

    /// `true` when the core sits at nominal voltage.
    pub fn is_nominal(&self) -> bool {
        self.offset.get() == 0
    }
}

/// RAII guard: undervolts on construction, restores nominal on drop —
/// including on unwinding, so a panicking detection can never leave the
/// system undervolted.
struct UndervoltGuard {
    state: Rc<Cell<i32>>,
}

impl UndervoltGuard {
    fn enter(state: &CoreVoltageState, offset: Millivolts) -> UndervoltGuard {
        state.offset.set(offset.get());
        UndervoltGuard {
            state: Rc::clone(&state.offset),
        }
    }
}

impl Drop for UndervoltGuard {
    fn drop(&mut self) {
        self.state.set(0);
    }
}

/// A trusted detection enclave: exclusive voltage control + a protected
/// detector + a deployment policy.
pub struct DetectionEnclave {
    controller: AdaptiveVoltageController,
    baseline: BaselineHmd,
    detector: StochasticHmd,
    policy: DetectionPolicy,
    voltage: CoreVoltageState,
    detections: u64,
    reseeds: u64,
}

impl DetectionEnclave {
    /// Calibrates `device`, derives the offset for the controller's target
    /// error rate, and deploys `baseline` behind it.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError`] when calibration or fault-model
    /// construction fails.
    pub fn deploy(
        baseline: BaselineHmd,
        device: DeviceProfile,
        config: ControllerConfig,
        policy: DetectionPolicy,
        seed: u64,
    ) -> Result<DetectionEnclave, EnclaveError> {
        let controller = AdaptiveVoltageController::new(device, config)?;
        let detector = StochasticHmd::from_baseline(
            &baseline,
            controller.delivered_error_rate().clamp(0.0, 1.0),
            seed,
        )?;
        Ok(DetectionEnclave {
            controller,
            baseline,
            detector,
            policy,
            voltage: CoreVoltageState::new(),
            detections: 0,
            reseeds: 0,
        })
    }

    /// The guarded voltage state (for monitoring/assertions).
    pub fn voltage_state(&self) -> CoreVoltageState {
        self.voltage.clone()
    }

    /// The controller (offset, delivered rate, calibration temperature).
    pub fn controller(&self) -> &AdaptiveVoltageController {
        &self.controller
    }

    /// Total detections performed.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Feeds a temperature reading; re-derives the offset and rebuilds the
    /// detector's fault model if the controller adjusted.
    ///
    /// # Errors
    ///
    /// Propagates calibration/fault-model errors.
    pub fn observe_temperature(&mut self, temp_c: f64) -> Result<(), EnclaveError> {
        use shmd_volt::controller::ControllerAction;
        let action = self.controller.observe_temperature(temp_c)?;
        if !matches!(action, ControllerAction::Unchanged) {
            self.reseeds += 1;
            let er = self.controller.delivered_error_rate().clamp(0.0, 1.0);
            // Mix in a reseed counter: consecutive re-calibrations without
            // intervening detections must not replay the same fault stream.
            let seed = self.detections ^ (self.reseeds << 32) ^ 0x7ee;
            self.detector = StochasticHmd::from_baseline(&self.baseline, er, seed)?;
        }
        Ok(())
    }

    /// One policy-aggregated detection, undervolting only for its duration.
    ///
    /// The voltage state is guaranteed nominal again when this returns
    /// (even if a detection panics, via the RAII guard).
    pub fn detect(&mut self, trace: &Trace) -> Label {
        let guard = UndervoltGuard::enter(&self.voltage, self.controller.offset());
        debug_assert!(
            !self.voltage.is_nominal(),
            "undervolt applied during detection"
        );
        self.detections += 1;
        let detector = &mut self.detector;
        let verdict = self.policy.decide(|| detector.classify(trace));
        drop(guard);
        verdict
    }
}

impl fmt::Debug for DetectionEnclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectionEnclave")
            .field("offset", &self.controller.offset())
            .field("policy", &self.policy)
            .field("detections", &self.detections)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_ml::metrics::ConfusionMatrix;
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;

    fn deploy() -> (Dataset, DetectionEnclave) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 91);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let enclave = DetectionEnclave::deploy(
            baseline,
            DeviceProfile::reference(),
            ControllerConfig::default(),
            DetectionPolicy::Single,
            1,
        )
        .expect("deploys");
        (dataset, enclave)
    }

    #[test]
    fn voltage_is_nominal_outside_detection() {
        let (dataset, mut enclave) = deploy();
        let state = enclave.voltage_state();
        assert!(state.is_nominal(), "nominal before any detection");
        for i in 0..10 {
            enclave.detect(dataset.trace(i));
            assert!(
                state.is_nominal(),
                "undervolting leaked outside detection (after trace {i})"
            );
        }
        assert_eq!(enclave.detections(), 10);
    }

    #[test]
    fn enclave_detects_malware() {
        let (dataset, mut enclave) = deploy();
        let split = dataset.three_fold_split(0);
        let mut m = ConfusionMatrix::new();
        for &i in split.testing() {
            m.record(
                enclave.detect(dataset.trace(i)).is_malware(),
                dataset.program(i).is_malware(),
            );
        }
        assert!(m.accuracy() > 0.85, "{m}");
    }

    #[test]
    fn temperature_observation_keeps_working() {
        let (dataset, mut enclave) = deploy();
        let before_offset = enclave.controller().offset();
        enclave.observe_temperature(80.0).expect("recalibrates");
        assert_ne!(enclave.controller().offset(), before_offset);
        // Still detects after the re-calibration.
        let verdict = enclave.detect(dataset.trace(0));
        let _ = verdict;
        assert!(enclave.voltage_state().is_nominal());
    }

    #[test]
    fn guard_restores_voltage_on_panic() {
        let state = CoreVoltageState::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = UndervoltGuard::enter(&state, Millivolts::new(-130));
            assert!(!state.is_nominal());
            panic!("detection crashed");
        }));
        assert!(result.is_err());
        assert!(
            state.is_nominal(),
            "a crashed detection must not leave the core undervolted"
        );
    }

    #[test]
    fn policy_is_applied() {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 92);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let mut enclave = DetectionEnclave::deploy(
            baseline,
            DeviceProfile::reference(),
            ControllerConfig::default(),
            DetectionPolicy::MajorityOf(3),
            1,
        )
        .expect("deploys");
        // Majority-of-3 performs 3 inner detections per call; just verify
        // it returns a verdict and restores voltage.
        let _ = enclave.detect(dataset.trace(0));
        assert!(enclave.voltage_state().is_nominal());
    }
}

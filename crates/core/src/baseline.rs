//! The unprotected baseline HMD: an MLP over instruction-category features.

use crate::detector::{Detector, Label};
use serde::{Deserialize, Serialize};
use shmd_ann::network::{InferenceScratch, Network, QuantizedNetwork};
use shmd_volt::fault::ExactDatapath;
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;

/// A trained, deterministic HMD.
///
/// The baseline scores with its quantised Q16.16 model through an exact
/// datapath — the very same datapath a [`crate::stochastic::StochasticHmd`]
/// undervolts, so baseline and protected detector differ *only* in supply
/// voltage, exactly as the paper deploys them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineHmd {
    name: String,
    spec: FeatureSpec,
    network: Network,
    quantized: QuantizedNetwork,
    threshold: f64,
    /// Reusable activation buffers for the `&mut self` scoring path; pure
    /// scratch state, excluded from equality.
    scratch: InferenceScratch,
}

impl PartialEq for BaselineHmd {
    fn eq(&self, other: &BaselineHmd) -> bool {
        self.name == other.name
            && self.spec == other.spec
            && self.network == other.network
            && self.quantized == other.quantized
            && self.threshold == other.threshold
    }
}

impl BaselineHmd {
    /// Wraps a trained network as a detector with the default `0.5`
    /// decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if the network's output is not a single score.
    pub fn new(name: impl Into<String>, spec: FeatureSpec, network: Network) -> BaselineHmd {
        assert_eq!(network.output_dim(), 1, "an HMD outputs one malware score");
        let quantized = network.quantized();
        BaselineHmd {
            name: name.into(),
            spec,
            network,
            quantized,
            threshold: 0.5,
            scratch: InferenceScratch::new(),
        }
    }

    /// Sets the decision threshold (e.g. one tuned with
    /// [`crate::roc::RocCurve::threshold_for_fpr`] to meet a deployment
    /// FPR budget). Every consumer — [`Detector::classify`], the §VI
    /// sweeps, and any [`crate::stochastic::StochasticHmd`] protecting
    /// this model — uses it, so exploration and deployment numbers agree.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not a probability.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> BaselineHmd {
        assert!(
            threshold.is_finite() && (0.0..=1.0).contains(&threshold),
            "threshold {threshold} must be a probability"
        );
        self.threshold = threshold;
        self
    }

    /// The feature specification this detector consumes.
    pub fn spec(&self) -> FeatureSpec {
        self.spec
    }

    /// The underlying float network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The quantised deployment model.
    pub fn quantized(&self) -> &QuantizedNetwork {
        &self.quantized
    }

    /// Scores an already-extracted feature vector (deterministic).
    ///
    /// Allocates per call; callers holding a scratch (or `&mut self` — see
    /// [`Detector::score`]) get the allocation-free path via
    /// [`BaselineHmd::score_features_with`].
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the network input.
    pub fn score_features(&self, features: &[f32]) -> f64 {
        f64::from(self.quantized.infer_with(features, &mut ExactDatapath)[0])
    }

    /// Like [`BaselineHmd::score_features`] but reusing caller-provided
    /// activation buffers: zero heap allocation on the steady path.
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the network input.
    pub fn score_features_with(&self, features: &[f32], scratch: &mut InferenceScratch) -> f64 {
        let out = self
            .quantized
            .infer_into(features, &mut ExactDatapath, scratch);
        f64::from(out[0].to_f32())
    }

    /// Deterministic classification of a feature vector against this
    /// detector's threshold.
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the network input.
    pub fn classify_features(&self, features: &[f32]) -> Label {
        Label::from_bool(self.score_features(features) >= self.threshold)
    }
}

impl Detector for BaselineHmd {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&mut self, trace: &Trace) -> f64 {
        let features = self.spec.extract(trace);
        let out = self
            .quantized
            .infer_into(&features, &mut ExactDatapath, &mut self.scratch);
        f64::from(out[0].to_f32())
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_ml::metrics::ConfusionMatrix;
    use shmd_workload::dataset::{Dataset, DatasetConfig};

    fn trained() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 11);
        let split = dataset.three_fold_split(0);
        let hmd = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("training succeeds");
        (dataset, hmd)
    }

    #[test]
    fn baseline_detects_held_out_malware() {
        let (dataset, mut hmd) = trained();
        let split = dataset.three_fold_split(0);
        let m = ConfusionMatrix::from_pairs(split.testing().iter().map(|&i| {
            (
                hmd.classify(dataset.trace(i)).is_malware(),
                dataset.program(i).is_malware(),
            )
        }));
        assert!(m.accuracy() > 0.9, "baseline accuracy {}", m.accuracy());
    }

    #[test]
    fn baseline_is_deterministic() {
        let (dataset, mut hmd) = trained();
        let t = dataset.trace(0);
        let a = hmd.score(t);
        let b = hmd.score(t);
        assert_eq!(a, b, "the unprotected HMD must be deterministic");
    }

    #[test]
    fn scores_are_probabilities() {
        let (dataset, mut hmd) = trained();
        for i in 0..dataset.len().min(30) {
            let s = hmd.score(dataset.trace(i));
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn feature_and_trace_paths_agree() {
        let (dataset, mut hmd) = trained();
        let t = dataset.trace(2);
        let f = hmd.spec().extract(t);
        assert_eq!(hmd.score(t), hmd.score_features(&f));
    }

    #[test]
    fn tuned_threshold_drives_classification() {
        let (dataset, hmd) = trained();
        let t = dataset.trace(0);
        let f = hmd.spec().extract(t);
        let score = hmd.score_features(&f);
        let strict = hmd
            .clone()
            .with_threshold((score + 1.0).min(1.0) / 2.0 + 0.49);
        let lenient = hmd.clone().with_threshold(0.0);
        assert_eq!(Detector::threshold(&lenient), 0.0);
        assert!(lenient.classify_features(&f).is_malware());
        if score < Detector::threshold(&strict) {
            assert!(!strict.classify_features(&f).is_malware());
        }
    }

    #[test]
    fn scratch_scoring_matches_allocating_path() {
        let (dataset, mut hmd) = trained();
        let mut scratch = InferenceScratch::new();
        for i in 0..10 {
            let t = dataset.trace(i);
            let f = hmd.spec().extract(t);
            let plain = hmd.score_features(&f);
            assert_eq!(plain, hmd.score_features_with(&f, &mut scratch));
            assert_eq!(plain, hmd.score(t));
        }
    }

    #[test]
    fn equality_ignores_scratch_state() {
        let (dataset, mut hmd) = trained();
        let pristine = hmd.clone();
        hmd.score(dataset.trace(0)); // warms the internal scratch
        assert_eq!(hmd, pristine, "scratch buffers must not affect equality");
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn non_probability_threshold_is_rejected() {
        let (_, hmd) = trained();
        let _ = hmd.with_threshold(1.5);
    }

    #[test]
    #[should_panic(expected = "one malware score")]
    fn multi_output_network_is_rejected() {
        use shmd_ann::builder::NetworkBuilder;
        let net = NetworkBuilder::new(16).output(2).build().unwrap();
        let _ = BaselineHmd::new("bad", FeatureSpec::frequency(), net);
    }
}

//! Training pipelines and the 3-fold cross-validation harness.

use crate::baseline::BaselineHmd;
use crate::detector::Detector;
use serde::{Deserialize, Serialize};
use shmd_ann::builder::{BuildNetworkError, NetworkBuilder};
use shmd_ann::train::{RpropTrainer, TrainData, TrainDataError};
use shmd_ml::metrics::ConfusionMatrix;
use shmd_workload::dataset::Dataset;
use shmd_workload::features::{FeatureSpec, FEATURE_DIM};
use std::fmt;

/// Error training an HMD.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainHmdError {
    /// The training fold is unusable (empty / ragged / single class).
    BadTrainingData(String),
    /// The network topology is invalid.
    BadTopology(BuildNetworkError),
}

impl fmt::Display for TrainHmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainHmdError::BadTrainingData(msg) => write!(f, "bad training data: {msg}"),
            TrainHmdError::BadTopology(e) => write!(f, "bad network topology: {e}"),
        }
    }
}

impl std::error::Error for TrainHmdError {}

impl From<TrainDataError> for TrainHmdError {
    fn from(e: TrainDataError) -> TrainHmdError {
        TrainHmdError::BadTrainingData(e.to_string())
    }
}

impl From<BuildNetworkError> for TrainHmdError {
    fn from(e: BuildNetworkError) -> TrainHmdError {
        TrainHmdError::BadTopology(e)
    }
}

/// HMD training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmdTrainConfig {
    /// Hidden-layer width of the MLP.
    pub hidden: usize,
    /// iRPROP− epochs.
    pub epochs: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl HmdTrainConfig {
    /// The configuration used for the paper-scale experiments.
    pub fn paper() -> HmdTrainConfig {
        HmdTrainConfig {
            hidden: 12,
            epochs: 200,
            seed: 0,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn fast() -> HmdTrainConfig {
        HmdTrainConfig {
            hidden: 8,
            epochs: 80,
            seed: 0,
        }
    }
}

impl Default for HmdTrainConfig {
    fn default() -> HmdTrainConfig {
        HmdTrainConfig::paper()
    }
}

/// Trains a baseline HMD on a fold of the dataset.
///
/// # Errors
///
/// Returns [`TrainHmdError`] when the fold is unusable or the topology is
/// invalid.
pub fn train_baseline(
    dataset: &Dataset,
    indices: &[usize],
    spec: FeatureSpec,
    config: &HmdTrainConfig,
) -> Result<BaselineHmd, TrainHmdError> {
    let lf = dataset.labeled_features(indices, spec);
    let targets: Vec<Vec<f32>> = lf
        .labels
        .iter()
        .map(|&m| vec![if m { 1.0 } else { 0.0 }])
        .collect();
    let data = TrainData::new(lf.inputs, targets)?;
    let mut network = NetworkBuilder::new(FEATURE_DIM)
        .hidden(config.hidden)
        .output(1)
        .seed(config.seed)
        .build()?;
    RpropTrainer::new()
        .epochs(config.epochs)
        .train(&mut network, &data);
    Ok(BaselineHmd::new(format!("hmd[{spec}]"), spec, network))
}

/// Evaluates a detector over a set of program indices, one detection per
/// program.
pub fn evaluate(
    detector: &mut dyn Detector,
    dataset: &Dataset,
    indices: &[usize],
) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for &i in indices {
        m.record(
            detector.classify(dataset.trace(i)).is_malware(),
            dataset.program(i).is_malware(),
        );
    }
    m
}

/// One rotation of the 3-fold cross-validation: train on the victim fold,
/// evaluate on the test fold.
///
/// # Errors
///
/// Propagates [`TrainHmdError`].
pub fn cross_validate_baseline(
    dataset: &Dataset,
    spec: FeatureSpec,
    config: &HmdTrainConfig,
) -> Result<Vec<ConfusionMatrix>, TrainHmdError> {
    let mut out = Vec::with_capacity(3);
    for rotation in 0..3 {
        let split = dataset.three_fold_split(rotation);
        let mut hmd = train_baseline(dataset, split.victim_training(), spec, config)?;
        out.push(evaluate(&mut hmd, dataset, split.testing()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(100), 31)
    }

    #[test]
    fn training_yields_accurate_detector() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let mut hmd = train_baseline(
            &d,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let m = evaluate(&mut hmd, &d, split.testing());
        assert!(m.accuracy() > 0.9, "{m}");
    }

    #[test]
    fn cross_validation_runs_three_rotations() {
        let d = dataset();
        let folds = cross_validate_baseline(&d, FeatureSpec::frequency(), &HmdTrainConfig::fast())
            .expect("cv");
        assert_eq!(folds.len(), 3);
        for m in &folds {
            assert!(m.accuracy() > 0.85, "{m}");
        }
    }

    #[test]
    fn empty_fold_is_an_error() {
        let d = dataset();
        let err = train_baseline(&d, &[], FeatureSpec::frequency(), &HmdTrainConfig::fast())
            .expect_err("empty fold");
        assert!(matches!(err, TrainHmdError::BadTrainingData(_)));
    }

    #[test]
    fn training_is_deterministic() {
        let d = dataset();
        let split = d.three_fold_split(0);
        let a = train_baseline(
            &d,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .unwrap();
        let b = train_baseline(
            &d,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .unwrap();
        assert_eq!(a.network(), b.network());
    }

    #[test]
    fn different_specs_yield_different_detectors() {
        use shmd_workload::features::{DetectionPeriod, FeatureKind};
        let d = dataset();
        let split = d.three_fold_split(0);
        let cfg = HmdTrainConfig::fast();
        let a =
            train_baseline(&d, split.victim_training(), FeatureSpec::frequency(), &cfg).unwrap();
        let b = train_baseline(
            &d,
            split.victim_training(),
            FeatureSpec::new(FeatureKind::Burstiness, DetectionPeriod::EVERY_WINDOW),
            &cfg,
        )
        .unwrap();
        assert_ne!(a.network(), b.network());
    }

    #[test]
    fn error_display_is_informative() {
        let e = TrainHmdError::BadTrainingData("empty".into());
        assert!(e.to_string().contains("empty"));
    }
}

//! Serving-layer telemetry: what a production monitor exports besides
//! verdicts.
//!
//! Kumar et al. (DAC 2021) argue an HMD deployed as a service must export
//! runtime confidence signals *alongside* its verdicts — a bare
//! malware/benign bit gives the operator no way to notice drift, a stuck
//! shard, or a defense that silently stopped injecting faults. This module
//! is the [`crate::serve`] engine's export surface:
//!
//! - [`ScoreHistogram`] — the score distribution per shard, the §VI
//!   confidence-distribution view taken continuously instead of offline;
//! - [`ShardReport`] — one replica's counters: queries, flags, fault
//!   counts folded from its injector, and its degradation state;
//! - [`TelemetrySnapshot`] — the service-wide report, serialisable to
//!   JSON and parseable back ([`TelemetrySnapshot::to_json`] /
//!   [`TelemetrySnapshot::from_json`]).
//!
//! Everything in a snapshot except [`TelemetrySnapshot::batch_latency_micros`]
//! is a deterministic function of the seed and the query stream;
//! [`TelemetrySnapshot::without_timing`] strips the wall-clock part so two
//! runs can be compared bit-for-bit (the `serve_bench` binary asserts this
//! across thread counts).
//!
//! The vendored `serde` derives are no-op stand-ins (see DESIGN.md §8), so
//! the JSON codec is implemented here by hand; 64-bit quantities that can
//! exceed 2⁵³ (derived seeds, checksums) are emitted as decimal strings to
//! stay integer-exact in any reader.

use crate::supervisor::ShardHealth;
use serde::{Deserialize, Serialize};
use shmd_volt::fault::{FaultStats, FaultTally};
use std::fmt;

/// Number of bins in a [`ScoreHistogram`] (scores span `[0, 1]`).
pub const HISTOGRAM_BINS: usize = 20;

/// A fixed-bin histogram of detection scores in `[0, 1]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreHistogram {
    counts: [u64; HISTOGRAM_BINS],
}

impl ScoreHistogram {
    /// An empty histogram.
    pub fn new() -> ScoreHistogram {
        ScoreHistogram {
            counts: [0; HISTOGRAM_BINS],
        }
    }

    /// Records one score. Out-of-range scores (including infinities) clamp
    /// into the edge bins; `NaN` lands in bin 0.
    pub fn record(&mut self, score: f64) {
        let clamped = if score.is_nan() {
            0.0
        } else {
            score.clamp(0.0, 1.0)
        };
        let bin = ((clamped * HISTOGRAM_BINS as f64) as usize).min(HISTOGRAM_BINS - 1);
        self.counts[bin] += 1;
    }

    /// Per-bin counts, lowest score bin first.
    pub fn counts(&self) -> &[u64; HISTOGRAM_BINS] {
        &self.counts
    }

    /// Total scores recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &ScoreHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    pub(crate) fn from_counts(counts: [u64; HISTOGRAM_BINS]) -> ScoreHistogram {
        ScoreHistogram { counts }
    }
}

impl Default for ScoreHistogram {
    fn default() -> ScoreHistogram {
        ScoreHistogram::new()
    }
}

/// Compact fault-injection counters, folded from [`FaultStats`].
///
/// The serving layer cares about rates, not the 64-entry per-bit profile,
/// so only the totals travel in a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Total multiplications processed.
    pub multiplies: u64,
    /// Multiplications whose result was corrupted.
    pub faulty: u64,
    /// Total product bits flipped.
    pub bit_flips: u64,
}

impl FaultCounters {
    /// Adds an injector's accumulated statistics into these counters.
    pub fn fold(&mut self, stats: &FaultStats) {
        self.multiplies += stats.multiplies;
        self.faulty += stats.faulty;
        self.bit_flips += stats.total_flips();
    }

    /// Adds a batched lane's tally — the same fold as
    /// [`FaultCounters::fold`] fed by a [`FaultTally`], which the batched
    /// stream produces without materializing a heap-backed `FaultStats`
    /// per lane per block.
    pub fn fold_tally(&mut self, tally: &FaultTally) {
        self.multiplies += tally.multiplies;
        self.faulty += tally.faulty;
        self.bit_flips += tally.bit_flips;
    }

    /// Adds another counter record into this one — the additive fold the
    /// serving layer uses to merge per-worker deltas at batch boundaries.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.multiplies += other.multiplies;
        self.faulty += other.faulty;
        self.bit_flips += other.bit_flips;
    }

    /// Observed fraction of faulty multiplications.
    pub fn observed_error_rate(&self) -> f64 {
        if self.multiplies == 0 {
            0.0
        } else {
            self.faulty as f64 / self.multiplies as f64
        }
    }
}

/// One shard's telemetry: a replica's counters and degradation state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index within the service.
    pub shard: usize,
    /// The shard's derived RNG seed (current generation).
    pub seed: u64,
    /// `true` when the shard is currently serving from the baseline
    /// fallback instead of its stochastic replica.
    pub degraded: bool,
    /// Why the shard degraded, when it did.
    pub degraded_reason: Option<String>,
    /// The shard's supervision health state.
    pub health: ShardHealth,
    /// Health transitions since deployment.
    pub transitions: u64,
    /// Crashes (freeze or chaos) since deployment.
    pub crashes: u64,
    /// Watchdog drift detections since deployment.
    pub drift_events: u64,
    /// Recalibration retries attempted since deployment.
    pub retries: u64,
    /// Queries this shard answered.
    pub queries: u64,
    /// Queries this shard flagged as malware.
    pub flags: u64,
    /// Verdicts whose primary score landed inside the uncertainty-aware
    /// re-query confidence band (0 while re-query is disabled).
    pub band_hits: u64,
    /// Ensemble replica draws this shard spent on re-queries.
    pub requeries: u64,
    /// Fault-injection counters folded from the shard's injector(s),
    /// including generations replaced by recalibration.
    pub faults: FaultCounters,
    /// Distribution of the shard's policy-aggregated scores.
    pub histogram: ScoreHistogram,
    /// Cumulative detection energy this shard spent, microjoules —
    /// `queries × modelled latency × core power at the shard's live
    /// offset`, accrued on the supervision thread at batch boundaries so
    /// the figure is a deterministic function of the query stream (see
    /// DESIGN.md §13).
    pub energy_uj: f64,
    /// Core power (watts) at the shard's offset when the supervisor last
    /// accrued energy; `None` before the first accrual.
    pub power_w: Option<f64>,
    /// The per-shard error-rate target the power scheduler last assigned;
    /// `None` when no budget policy is installed.
    pub power_target_er: Option<f64>,
}

/// A serialisable snapshot of the whole monitoring service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// The service's master seed.
    pub seed: u64,
    /// Display form of the deployed [`crate::deploy::DetectionPolicy`].
    pub policy: String,
    /// Batches processed.
    pub batches: u64,
    /// Queries served across all shards.
    pub queries: u64,
    /// Queries flagged as malware across all shards.
    pub flags: u64,
    /// Verdicts re-query found inside the confidence band, summed over
    /// all shards.
    pub band_hits: u64,
    /// Ensemble replica draws spent on re-queries, summed over all
    /// shards.
    pub requeries: u64,
    /// Cumulative shard degradations (a shard recalibrated back to
    /// stochastic and degraded again counts twice).
    pub degradation_events: u64,
    /// Queries rejected at ingestion (malformed width or non-finite
    /// features) instead of being dispatched to a shard.
    pub rejected_queries: u64,
    /// Order-sensitive checksum over the verdict stream; bit-identical at
    /// any worker-thread count.
    pub verdict_checksum: u64,
    /// The service-wide core-power budget (watts) the scheduler enforces;
    /// `None` when no budget policy is installed.
    pub power_budget_w: Option<f64>,
    /// Projected busy core power (watts) summed over live shards at the
    /// last supervision tick; `None` before the first tick or without a
    /// budget policy.
    pub service_power_w: Option<f64>,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall-clock per batch, microseconds, for the most recent batches
    /// only (the service keeps a sliding window of
    /// [`crate::serve::BATCH_LATENCY_WINDOW`] entries so a long-lived
    /// monitor's history stays bounded). The only non-deterministic
    /// field — see [`TelemetrySnapshot::without_timing`].
    pub batch_latency_micros: Vec<u64>,
}

/// Error parsing a snapshot from JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryParseError(String);

impl fmt::Display for TelemetryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed telemetry snapshot: {}", self.0)
    }
}

impl std::error::Error for TelemetryParseError {}

impl From<String> for TelemetryParseError {
    fn from(message: String) -> TelemetryParseError {
        TelemetryParseError(message)
    }
}

impl TelemetrySnapshot {
    /// Shards currently serving degraded (baseline fallback).
    pub fn degraded_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.degraded).count()
    }

    /// Shards currently in the given health state.
    pub fn shards_in(&self, health: ShardHealth) -> usize {
        self.shards.iter().filter(|s| s.health == health).count()
    }

    /// Health transitions summed over all shards.
    pub fn total_transitions(&self) -> u64 {
        self.shards.iter().map(|s| s.transitions).sum()
    }

    /// Crashes summed over all shards.
    pub fn total_crashes(&self) -> u64 {
        self.shards.iter().map(|s| s.crashes).sum()
    }

    /// Watchdog drift detections summed over all shards.
    pub fn total_drift_events(&self) -> u64 {
        self.shards.iter().map(|s| s.drift_events).sum()
    }

    /// Recalibration retries summed over all shards.
    pub fn total_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.retries).sum()
    }

    /// Fault counters summed over all shards.
    pub fn total_faults(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for s in &self.shards {
            total.multiplies += s.faults.multiplies;
            total.faulty += s.faults.faulty;
            total.bit_flips += s.faults.bit_flips;
        }
        total
    }

    /// Detection energy summed over all shards, microjoules.
    pub fn total_energy_uj(&self) -> f64 {
        self.shards.iter().map(|s| s.energy_uj).sum()
    }

    /// Mean latency of the batches in the retained window, microseconds;
    /// `None` before the first batch.
    pub fn mean_batch_latency_micros(&self) -> Option<f64> {
        if self.batch_latency_micros.is_empty() {
            return None;
        }
        Some(
            self.batch_latency_micros.iter().sum::<u64>() as f64
                / self.batch_latency_micros.len() as f64,
        )
    }

    /// The snapshot with wall-clock timing stripped: every remaining field
    /// is a deterministic function of the seed and the query stream, so
    /// two runs of the same stream compare equal regardless of thread
    /// count or machine load.
    #[must_use]
    pub fn without_timing(&self) -> TelemetrySnapshot {
        let mut s = self.clone();
        s.batch_latency_micros.clear();
        s
    }

    /// Renders the snapshot as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"snapshot\": \"stochastic-hmd-serve\",\n");
        out.push_str(&format!("  \"seed\": \"{}\",\n", self.seed));
        out.push_str(&format!(
            "  \"policy\": \"{}\",\n",
            escape_json(&self.policy)
        ));
        out.push_str(&format!("  \"batches\": {},\n", self.batches));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"flags\": {},\n", self.flags));
        out.push_str(&format!("  \"band_hits\": {},\n", self.band_hits));
        out.push_str(&format!("  \"requeries\": {},\n", self.requeries));
        out.push_str(&format!(
            "  \"degradation_events\": {},\n",
            self.degradation_events
        ));
        out.push_str(&format!(
            "  \"rejected_queries\": {},\n",
            self.rejected_queries
        ));
        out.push_str(&format!(
            "  \"verdict_checksum\": \"{}\",\n",
            self.verdict_checksum
        ));
        out.push_str(&format!(
            "  \"power_budget_w\": {},\n",
            json_f64(self.power_budget_w)
        ));
        out.push_str(&format!(
            "  \"service_power_w\": {},\n",
            json_f64(self.service_power_w)
        ));
        out.push_str(&format!(
            "  \"total_energy_uj\": {},\n",
            json_f64(Some(self.total_energy_uj()))
        ));
        out.push_str(&format!(
            "  \"mean_batch_latency_micros\": {},\n",
            json_f64(self.mean_batch_latency_micros())
        ));
        out.push_str("  \"batch_latency_micros\": [");
        for (i, l) in self.batch_latency_micros.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&l.to_string());
        }
        out.push_str("],\n");
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shard\": {}, \"seed\": \"{}\", \"degraded\": {}, \
                 \"degraded_reason\": {}, \"health\": \"{}\", \
                 \"transitions\": {}, \"crashes\": {}, \"drift_events\": {}, \
                 \"retries\": {}, \"queries\": {}, \"flags\": {}, \
                 \"band_hits\": {}, \"requeries\": {}, \
                 \"multiplies\": {}, \"faulty\": {}, \"bit_flips\": {}, \
                 \"energy_uj\": {}, \"power_w\": {}, \
                 \"power_target_er\": {}, \"histogram\": [{}]}}{}\n",
                s.shard,
                s.seed,
                s.degraded,
                match &s.degraded_reason {
                    Some(r) => format!("\"{}\"", escape_json(r)),
                    None => "null".to_string(),
                },
                s.health,
                s.transitions,
                s.crashes,
                s.drift_events,
                s.retries,
                s.queries,
                s.flags,
                s.band_hits,
                s.requeries,
                s.faults.multiplies,
                s.faults.faulty,
                s.faults.bit_flips,
                json_f64(Some(s.energy_uj)),
                json_f64(s.power_w),
                json_f64(s.power_target_er),
                s.histogram
                    .counts()
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == self.shards.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot previously rendered by
    /// [`TelemetrySnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryParseError`] on malformed JSON or a schema
    /// mismatch.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, TelemetryParseError> {
        let value = json::parse(text).map_err(TelemetryParseError)?;
        let top = value.as_object("snapshot")?;
        let shards_value = top.field("shards")?;
        let mut shards = Vec::new();
        for (i, sv) in shards_value.as_array("shards")?.iter().enumerate() {
            let obj = sv.as_object(&format!("shards[{i}]"))?;
            let hist_values = obj.field("histogram")?.as_array("histogram")?;
            if hist_values.len() != HISTOGRAM_BINS {
                return Err(TelemetryParseError(format!(
                    "histogram has {} bins, expected {HISTOGRAM_BINS}",
                    hist_values.len()
                )));
            }
            let mut counts = [0u64; HISTOGRAM_BINS];
            for (slot, v) in counts.iter_mut().zip(hist_values) {
                *slot = v.as_u64("histogram bin")?;
            }
            shards.push(ShardReport {
                shard: obj.field("shard")?.as_u64("shard")? as usize,
                seed: obj.field("seed")?.as_u64("seed")?,
                degraded: obj.field("degraded")?.as_bool("degraded")?,
                degraded_reason: match obj.field("degraded_reason")? {
                    json::Value::Null => None,
                    other => Some(other.as_str("degraded_reason")?.to_string()),
                },
                health: {
                    let name = obj.field("health")?.as_str("health")?;
                    ShardHealth::parse(name)
                        .ok_or_else(|| format!("unknown shard health {name:?}"))?
                },
                transitions: obj.field("transitions")?.as_u64("transitions")?,
                crashes: obj.field("crashes")?.as_u64("crashes")?,
                drift_events: obj.field("drift_events")?.as_u64("drift_events")?,
                retries: obj.field("retries")?.as_u64("retries")?,
                queries: obj.field("queries")?.as_u64("queries")?,
                flags: obj.field("flags")?.as_u64("flags")?,
                // Re-query counters are absent in pre-arena snapshots;
                // they read back as "no re-queries yet".
                band_hits: optional_u64(&obj, "band_hits")?.unwrap_or(0),
                requeries: optional_u64(&obj, "requeries")?.unwrap_or(0),
                faults: FaultCounters {
                    multiplies: obj.field("multiplies")?.as_u64("multiplies")?,
                    faulty: obj.field("faulty")?.as_u64("faulty")?,
                    bit_flips: obj.field("bit_flips")?.as_u64("bit_flips")?,
                },
                histogram: ScoreHistogram::from_counts(counts),
                // Energy fields are absent in pre-power snapshots; they
                // read back as "no energy accounted yet".
                energy_uj: optional_f64(&obj, "energy_uj")?.unwrap_or(0.0),
                power_w: optional_f64(&obj, "power_w")?,
                power_target_er: optional_f64(&obj, "power_target_er")?,
            });
        }
        let latency = top
            .field("batch_latency_micros")?
            .as_array("batch_latency_micros")?
            .iter()
            .map(|v| v.as_u64("batch latency"))
            .collect::<Result<Vec<u64>, _>>()?;
        // The mean is derived from the latency window, so its value is
        // recomputed rather than trusted; the field is still type-checked
        // (`null` or a number — `null` is how a non-finite or absent mean
        // serialises). Absent entirely in pre-durability snapshots.
        if let Ok(v) = top.field("mean_batch_latency_micros") {
            if !matches!(v, json::Value::Null) {
                v.as_f64("mean_batch_latency_micros")?;
            }
        }
        // total_energy_uj is likewise derived from the shard rows; only
        // its type is checked.
        if let Ok(v) = top.field("total_energy_uj") {
            if !matches!(v, json::Value::Null) {
                v.as_f64("total_energy_uj")?;
            }
        }
        Ok(TelemetrySnapshot {
            seed: top.field("seed")?.as_u64("seed")?,
            policy: top.field("policy")?.as_str("policy")?.to_string(),
            batches: top.field("batches")?.as_u64("batches")?,
            queries: top.field("queries")?.as_u64("queries")?,
            flags: top.field("flags")?.as_u64("flags")?,
            band_hits: optional_u64(&top, "band_hits")?.unwrap_or(0),
            requeries: optional_u64(&top, "requeries")?.unwrap_or(0),
            degradation_events: top
                .field("degradation_events")?
                .as_u64("degradation_events")?,
            rejected_queries: top.field("rejected_queries")?.as_u64("rejected_queries")?,
            verdict_checksum: top.field("verdict_checksum")?.as_u64("verdict_checksum")?,
            power_budget_w: optional_f64(&top, "power_budget_w")?,
            service_power_w: optional_f64(&top, "service_power_w")?,
            shards,
            batch_latency_micros: latency,
        })
    }
}

/// Reads an optional float field: absent (pre-power snapshots) and `null`
/// both map to `None`, mirroring how [`json_f64`] writes them.
fn optional_f64(obj: &json::Object<'_>, name: &str) -> Result<Option<f64>, String> {
    match obj.field(name) {
        Ok(json::Value::Null) | Err(_) => Ok(None),
        Ok(v) => Ok(Some(v.as_f64(name)?)),
    }
}

/// Reads an optional counter field: absent (pre-arena snapshots) and
/// `null` both map to `None`, the same back-compat idiom as
/// [`optional_f64`].
fn optional_u64(obj: &json::Object<'_>, name: &str) -> Result<Option<u64>, String> {
    match obj.field(name) {
        Ok(json::Value::Null) | Err(_) => Ok(None),
        Ok(v) => Ok(Some(v.as_u64(name)?)),
    }
}

/// Serialises an optional float as JSON: `None` *and* non-finite values
/// become `null` — bare `NaN`/`inf` tokens are not JSON and would poison
/// every standard reader of the document.
fn json_f64(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON reader for the snapshot schema: the vendored serde shim
/// cannot deserialize, and the documents parsed here are the ones this
/// module itself emits.
mod json {
    pub enum Value {
        Null,
        Bool(bool),
        Int(u64),
        Float(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    pub struct Object<'a>(&'a [(String, Value)]);

    impl<'a> Object<'a> {
        pub fn field(&self, name: &str) -> Result<&'a Value, String> {
            self.0
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name}"))
        }
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<Object<'_>, String> {
            match self {
                Value::Obj(fields) => Ok(Object(fields)),
                _ => Err(format!("{what} is not an object")),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(format!("{what} is not an array")),
            }
        }

        pub fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("{what} is not a boolean")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("{what} is not a string")),
            }
        }

        /// Accepts either a bare integer or a decimal string (the form
        /// used for quantities that can exceed 2⁵³).
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Int(n) => Ok(*n),
                Value::Str(s) => s
                    .parse::<u64>()
                    .map_err(|_| format!("{what} is not a u64: {s:?}")),
                _ => Err(format!("{what} is not an integer")),
            }
        }

        /// Accepts any JSON number.
        pub fn as_f64(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Int(n) => Ok(*n as f64),
                Value::Float(x) => Ok(*x),
                _ => Err(format!("{what} is not a number")),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            _ => Err(format!("unexpected input at byte {}", *pos)),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word} at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let int_digits = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == int_digits {
            return Err(format!("bad number at byte {start}"));
        }
        let mut is_float = false;
        if bytes.get(*pos) == Some(&b'.') {
            is_float = true;
            *pos += 1;
            let frac_digits = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == frac_digits {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
            is_float = true;
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            let exp_digits = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == exp_digits {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !is_float {
            // Counters stay integer-exact as long as they fit u64; a
            // negative or oversized integer falls back to the float form.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let read_hex = |at: usize| {
                                bytes
                                    .get(at..at + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                            };
                            let hex = read_hex(*pos + 1)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                            let (code, hex_len) = if (0xd800..=0xdbff).contains(&hex) {
                                // High surrogate: standard JSON encodes
                                // non-BMP characters as a \uXXXX\uXXXX
                                // surrogate pair.
                                if bytes.get(*pos + 5) != Some(&b'\\')
                                    || bytes.get(*pos + 6) != Some(&b'u')
                                {
                                    return Err(format!("unpaired surrogate at byte {}", *pos));
                                }
                                let low = read_hex(*pos + 7)
                                    .filter(|c| (0xdc00..=0xdfff).contains(c))
                                    .ok_or_else(|| {
                                        format!("unpaired surrogate at byte {}", *pos)
                                    })?;
                                (0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00), 10)
                            } else {
                                (hex, 4)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point at byte {}", *pos))?,
                            );
                            *pos += hex_len;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                    let c = rest.chars().next().expect("non-empty by match arm");
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut histogram = ScoreHistogram::new();
        histogram.record(0.03);
        histogram.record(0.97);
        histogram.record(0.97);
        TelemetrySnapshot {
            seed: 42,
            policy: "majority-of-3".to_string(),
            batches: 2,
            queries: 3,
            flags: 2,
            band_hits: 1,
            requeries: 5,
            degradation_events: 1,
            rejected_queries: 4,
            verdict_checksum: u64::MAX - 7,
            power_budget_w: Some(40.0),
            service_power_w: Some(16.5),
            shards: vec![
                ShardReport {
                    shard: 0,
                    seed: u64::MAX / 3,
                    degraded: false,
                    degraded_reason: None,
                    health: ShardHealth::Healthy,
                    transitions: 0,
                    crashes: 0,
                    drift_events: 0,
                    retries: 0,
                    queries: 2,
                    flags: 1,
                    band_hits: 1,
                    requeries: 5,
                    faults: FaultCounters {
                        multiplies: 408,
                        faulty: 37,
                        bit_flips: 41,
                    },
                    histogram: histogram.clone(),
                    energy_uj: 1234.5,
                    power_w: Some(8.25),
                    power_target_er: Some(0.12),
                },
                ShardReport {
                    shard: 1,
                    seed: 7,
                    degraded: true,
                    degraded_reason: Some("error rate 0.99 unreachable \"before\" freeze".into()),
                    health: ShardHealth::Degraded,
                    transitions: 3,
                    crashes: 1,
                    drift_events: 2,
                    retries: 4,
                    queries: 1,
                    flags: 1,
                    band_hits: 0,
                    requeries: 0,
                    faults: FaultCounters::default(),
                    histogram: ScoreHistogram::new(),
                    energy_uj: 0.0,
                    power_w: None,
                    power_target_er: None,
                },
            ],
            batch_latency_micros: vec![120, 95],
        }
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = ScoreHistogram::new();
        h.record(0.0);
        h.record(0.049); // still bin 0
        h.record(1.0); // clamps into the top bin
        h.record(2.5); // out of range clamps too
        h.record(f64::NAN); // NaN lands in bin 0
        h.record(f64::NEG_INFINITY); // clamps into bin 0
        h.record(f64::INFINITY); // clamps into the top bin
        assert_eq!(h.counts()[0], 4);
        assert_eq!(h.counts()[HISTOGRAM_BINS - 1], 3);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_merges() {
        let mut a = ScoreHistogram::new();
        a.record(0.1);
        let mut b = ScoreHistogram::new();
        b.record(0.1);
        b.record(0.9);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn fault_counters_fold_stats() {
        let mut bit_flips = vec![0; 64];
        bit_flips[40] = 8;
        bit_flips[41] = 3;
        let stats = FaultStats {
            multiplies: 100,
            faulty: 9,
            bit_flips,
        };
        let mut c = FaultCounters::default();
        c.fold(&stats);
        c.fold(&stats);
        assert_eq!(c.multiplies, 200);
        assert_eq!(c.faulty, 18);
        assert_eq!(c.bit_flips, 22);
        assert!((c.observed_error_rate() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snapshot = sample_snapshot();
        let json = snapshot.to_json();
        let back = TelemetrySnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snapshot, "JSON round-trip must be lossless");
    }

    #[test]
    fn round_trip_preserves_full_u64_range() {
        let mut snapshot = sample_snapshot();
        snapshot.verdict_checksum = u64::MAX;
        snapshot.seed = u64::MAX - 1;
        snapshot.shards[0].seed = 0x9e37_79b9_7f4a_7c15;
        let back = TelemetrySnapshot::from_json(&snapshot.to_json()).expect("parses");
        assert_eq!(back.verdict_checksum, u64::MAX);
        assert_eq!(back.shards[0].seed, 0x9e37_79b9_7f4a_7c15);
    }

    #[test]
    fn without_timing_strips_only_latency() {
        let snapshot = sample_snapshot();
        let stripped = snapshot.without_timing();
        assert!(stripped.batch_latency_micros.is_empty());
        assert_eq!(stripped.shards, snapshot.shards);
        assert_eq!(stripped.verdict_checksum, snapshot.verdict_checksum);
    }

    #[test]
    fn aggregates_sum_over_shards() {
        let snapshot = sample_snapshot();
        assert_eq!(snapshot.degraded_shards(), 1);
        assert_eq!(snapshot.shards_in(ShardHealth::Healthy), 1);
        assert_eq!(snapshot.shards_in(ShardHealth::Degraded), 1);
        assert_eq!(snapshot.shards_in(ShardHealth::Quarantined), 0);
        assert_eq!(snapshot.total_transitions(), 3);
        assert_eq!(snapshot.total_crashes(), 1);
        assert_eq!(snapshot.total_drift_events(), 2);
        assert_eq!(snapshot.total_retries(), 4);
        assert_eq!(snapshot.total_faults().multiplies, 408);
        assert_eq!(snapshot.mean_batch_latency_micros(), Some(107.5));
        assert_eq!(
            sample_snapshot()
                .without_timing()
                .mean_batch_latency_micros(),
            None
        );
    }

    #[test]
    fn energy_fields_round_trip_and_aggregate() {
        let snapshot = sample_snapshot();
        assert_eq!(snapshot.total_energy_uj(), 1234.5);
        let json = snapshot.to_json();
        assert!(json.contains("\"power_budget_w\": 40"));
        assert!(json.contains("\"total_energy_uj\": 1234.5"));
        assert!(json.contains("\"power_w\": 8.25"));
        // The idle shard's power fields render as null, not 0.
        assert!(json.contains("\"energy_uj\": 0, \"power_w\": null, \"power_target_er\": null"));
        let back = TelemetrySnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snapshot);
        assert_eq!(back.total_energy_uj().to_bits(), 1234.5f64.to_bits());
    }

    #[test]
    fn pre_power_snapshots_still_parse() {
        // Snapshots written before energy accounting carry none of the
        // power fields; they read back as "nothing accounted".
        let json = sample_snapshot().to_json();
        let stripped = json
            .lines()
            .filter(|l| {
                !l.contains("\"power_budget_w\"")
                    && !l.contains("\"service_power_w\"")
                    && !l.contains("\"total_energy_uj\"")
            })
            .map(|l| {
                let mut l = l.to_string();
                if let Some(at) = l.find(", \"energy_uj\"") {
                    let end = l.find(", \"histogram\"").expect("shard row has histogram");
                    l.replace_range(at..end, "");
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = TelemetrySnapshot::from_json(&stripped).expect("parses");
        assert_eq!(back.power_budget_w, None);
        assert_eq!(back.service_power_w, None);
        assert_eq!(back.total_energy_uj(), 0.0);
        assert!(back.shards.iter().all(|s| s.power_w.is_none()));
    }

    #[test]
    fn pre_requery_snapshots_still_parse() {
        // Snapshots written before uncertainty-aware re-query carry no
        // band-hit or re-query counters; they read back as zero.
        let json = sample_snapshot().to_json();
        let stripped = json
            .lines()
            .filter(|l| {
                !l.trim_start().starts_with("\"band_hits\"") && {
                    !l.trim_start().starts_with("\"requeries\"")
                }
            })
            .map(|l| {
                let mut l = l.to_string();
                if let Some(at) = l.find(", \"band_hits\"") {
                    let end = l.find(", \"multiplies\"").expect("shard row has faults");
                    l.replace_range(at..end, "");
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = TelemetrySnapshot::from_json(&stripped).expect("parses");
        assert_eq!(back.band_hits, 0);
        assert_eq!(back.requeries, 0);
        assert!(back.shards.iter().all(|s| s.band_hits == 0));
        assert!(back.shards.iter().all(|s| s.requeries == 0));
    }

    #[test]
    fn non_finite_latency_summaries_serialise_as_null() {
        // Bare NaN/inf tokens are not JSON; the float helper must map
        // every non-finite (and absent) value to null.
        assert_eq!(json_f64(Some(f64::NAN)), "null");
        assert_eq!(json_f64(Some(f64::INFINITY)), "null");
        assert_eq!(json_f64(Some(f64::NEG_INFINITY)), "null");
        assert_eq!(json_f64(None), "null");
        assert_eq!(json_f64(Some(107.5)), "107.5");
        // An empty latency window renders the mean as null end-to-end, and
        // the document still round-trips.
        let snapshot = sample_snapshot().without_timing();
        let json = snapshot.to_json();
        assert!(json.contains("\"mean_batch_latency_micros\": null"));
        let back = TelemetrySnapshot::from_json(&json).expect("parses");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn emitted_mean_latency_round_trips() {
        let snapshot = sample_snapshot();
        let json = snapshot.to_json();
        assert!(json.contains("\"mean_batch_latency_micros\": 107.5"));
        let back = TelemetrySnapshot::from_json(&json).expect("parses");
        assert_eq!(back.mean_batch_latency_micros(), Some(107.5));
        // A reader-normalised variant (null mean) still parses: the value
        // is derived, so only its type is checked.
        let nulled = json.replace(
            "\"mean_batch_latency_micros\": 107.5",
            "\"mean_batch_latency_micros\": null",
        );
        assert_eq!(
            TelemetrySnapshot::from_json(&nulled).expect("parses"),
            snapshot
        );
        // ...but a bare NaN token is rejected as the malformed JSON it is.
        let poisoned = json.replace(
            "\"mean_batch_latency_micros\": 107.5",
            "\"mean_batch_latency_micros\": NaN",
        );
        assert!(TelemetrySnapshot::from_json(&poisoned).is_err());
    }

    #[test]
    fn parser_reads_floats_and_signed_numbers() {
        for (text, want) in [
            ("107.5", 107.5),
            ("-3.25", -3.25),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("-7", -7.0),
        ] {
            let v = json::parse(text).expect("parses");
            assert_eq!(v.as_f64("n").unwrap(), want, "{text}");
        }
        // Integers that fit u64 stay integer-exact.
        let v = json::parse("18446744073709551615").expect("parses");
        assert_eq!(v.as_u64("n").unwrap(), u64::MAX);
        for bad in ["-", "1.", ".5", "1e", "1e+", "--1", "1.2.3"] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_standard_string_escapes() {
        // A standard JSON library re-emitting a snapshot may use any of
        // the short escape forms; from_json must read them all.
        let value = json::parse(r#""a\tb\rc\nd\be\ff\/g\"h\\i""#).expect("parses");
        assert_eq!(
            value.as_str("s").unwrap(),
            "a\tb\rc\nd\u{0008}e\u{000c}f/g\"h\\i"
        );
    }

    #[test]
    fn parser_decodes_surrogate_pairs() {
        // U+1F600 as a standard JSON library escapes it: "\ud83d\ude00".
        let text = "\"pre \\ud83d\\ude00 post\"";
        let value = json::parse(text).expect("parses");
        assert_eq!(value.as_str("s").unwrap(), "pre \u{1f600} post");
    }

    #[test]
    fn parser_rejects_unpaired_surrogates() {
        for bad in [
            "\"\\ud83d\"",        // lone high surrogate at end of string
            "\"\\ud83d rest\"",   // high surrogate not followed by \u
            "\"\\ud83d\\u0041\"", // high surrogate paired with a non-low \u
            "\"\\ude00\"",        // lone low surrogate
        ] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "[1, 2",
            "{\"snapshot\": \"x\"}",
            "nonsense",
            "{\"seed\": 1} trailing",
        ] {
            assert!(
                TelemetrySnapshot::from_json(bad).is_err(),
                "accepted malformed input {bad:?}"
            );
        }
    }
}

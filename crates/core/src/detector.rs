//! The common detector interface.

use serde::{Deserialize, Serialize};
use shmd_workload::trace::Trace;
use std::fmt;

/// A detection verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Classified as a benign program.
    Benign,
    /// Classified as malware.
    Malware,
}

impl Label {
    /// `true` for [`Label::Malware`].
    #[inline]
    pub fn is_malware(self) -> bool {
        matches!(self, Label::Malware)
    }

    /// Builds a label from a boolean (`true` = malware).
    #[inline]
    pub fn from_bool(is_malware: bool) -> Label {
        if is_malware {
            Label::Malware
        } else {
            Label::Benign
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Label::Benign => "benign",
            Label::Malware => "malware",
        })
    }
}

/// A hardware malware detector: scores execution traces.
///
/// `&mut self` because the detectors this crate cares about are
/// *stochastic*: a [`crate::stochastic::StochasticHmd`] advances its fault
/// injector's RNG per query and an [`crate::rhmd::Rhmd`] picks a random
/// base detector per query. Two consecutive calls with the same trace may
/// legitimately disagree — that is the moving-target defense.
pub trait Detector {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// The malware score in `[0, 1]` for one detection of this trace.
    fn score(&mut self, trace: &Trace) -> f64;

    /// The decision threshold (default `0.5`).
    fn threshold(&self) -> f64 {
        0.5
    }

    /// One detection: scores the trace and thresholds.
    fn classify(&mut self, trace: &Trace) -> Label {
        Label::from_bool(self.score(trace) >= self.threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::isa::CATEGORY_COUNT;

    struct ConstDetector(f64);

    impl Detector for ConstDetector {
        fn name(&self) -> &str {
            "const"
        }
        fn score(&mut self, _trace: &Trace) -> f64 {
            self.0
        }
    }

    fn dummy_trace() -> Trace {
        Trace::from_windows(vec![[1u32; CATEGORY_COUNT]])
    }

    #[test]
    fn label_round_trip() {
        assert!(Label::from_bool(true).is_malware());
        assert!(!Label::from_bool(false).is_malware());
        assert_eq!(Label::Malware.to_string(), "malware");
        assert_eq!(Label::Benign.to_string(), "benign");
    }

    #[test]
    fn default_threshold_is_half() {
        let mut hi = ConstDetector(0.7);
        let mut lo = ConstDetector(0.3);
        assert_eq!(hi.classify(&dummy_trace()), Label::Malware);
        assert_eq!(lo.classify(&dummy_trace()), Label::Benign);
    }

    #[test]
    fn boundary_score_is_malware() {
        let mut d = ConstDetector(0.5);
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
    }
}

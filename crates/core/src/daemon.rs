//! The monitoring daemon: admission control and zero-downtime rolling
//! upgrade in front of [`MonitoringService`].
//!
//! [`crate::serve`] is a library you call in-process; this module is the
//! always-on deployment the paper assumes. A [`Daemon`] owns a service and
//! its write-ahead [`StateJournal`], takes [`crate::wire`] frames from
//! hostile byte streams, and adds the two things a wire boundary demands:
//!
//! - **Admission control** — a bounded in-flight queue with deterministic
//!   reject accounting ([`AdmissionStats`] satisfies an exact conservation
//!   law), optional per-tenant quotas, oversized-frame rejection *before*
//!   any allocation, and a batch-indexed deadline that force-degrades a
//!   hung shard (a chaos `Hang`) to the baseline instead of wedging the
//!   daemon.
//! - **Rolling upgrade** — a first-class state machine
//!   ([`DaemonPhase`]): drain admissions → journaled checkpoint →
//!   [`Frame::HandoffState`] → the successor restores and asserts
//!   verdict-checksum identity *before* taking traffic
//!   ([`Daemon::resume_from_handoff`]).
//!
//! # Determinism
//!
//! Every daemon decision — admission, rejection, hang deadlines, drain,
//! hand-off — is driven from batch indices and queue contents, never from
//! wall-clock time or thread scheduling. The service underneath already
//! guarantees serial == N-thread bit-identical verdicts, so the whole
//! drain → handoff → resume cycle preserves that: an upgraded stream's
//! verdict checksum equals a never-upgraded run's, at any thread count.

// Frames arrive from outside the process; the admission path is audited
// to the same "hostile bytes never panic" bar as the wire codec.
#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use crate::baseline::BaselineHmd;
use crate::checkpoint::{CheckpointError, RestoreError, ServiceCheckpoint, StateJournal};
use crate::exec::ExecConfig;
use crate::serve::MonitoringService;
use crate::supervisor::SupervisorConfig;
use crate::wire::{decode_frame, encode_frame, Frame, RejectCode, WireError};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;

/// Frame cap for decoding a hand-off, which carries a whole service
/// checkpoint and therefore dwarfs ordinary traffic frames.
pub const HANDOFF_FRAME_CAP: u32 = 1 << 26;

/// Admission-control bounds. Defaults are deliberate: a 1 MiB frame cap,
/// an 8192-query in-flight bound, no tenant quota, a 64-batch hang
/// deadline, and a checkpoint every 8 batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Whole-frame byte cap; larger frames are rejected before allocation.
    pub max_frame_bytes: u32,
    /// Bound on queries queued but not yet pumped.
    pub max_queued_queries: usize,
    /// Per-tenant bound on queued queries, if any.
    pub tenant_quota: Option<usize>,
    /// Batches a shard may stay non-serving before the daemon
    /// force-degrades it to the baseline.
    pub hang_deadline: u64,
    /// Journaled-checkpoint cadence in batches.
    pub checkpoint_cadence: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_BYTES,
            max_queued_queries: 8192,
            tenant_quota: None,
            hang_deadline: 64,
            checkpoint_cadence: 8,
        }
    }
}

impl AdmissionConfig {
    /// Sets the whole-frame byte cap.
    pub fn with_max_frame_bytes(mut self, cap: u32) -> AdmissionConfig {
        self.max_frame_bytes = cap;
        self
    }

    /// Sets the in-flight query bound.
    pub fn with_max_queued_queries(mut self, cap: usize) -> AdmissionConfig {
        self.max_queued_queries = cap;
        self
    }

    /// Sets a per-tenant queued-query quota.
    pub fn with_tenant_quota(mut self, quota: usize) -> AdmissionConfig {
        self.tenant_quota = Some(quota);
        self
    }

    /// Sets the hang deadline in batches (clamped to at least 1).
    pub fn with_hang_deadline(mut self, batches: u64) -> AdmissionConfig {
        self.hang_deadline = batches.max(1);
        self
    }

    /// Sets the checkpoint cadence in batches (clamped to at least 1).
    pub fn with_checkpoint_cadence(mut self, batches: u64) -> AdmissionConfig {
        self.checkpoint_cadence = batches.max(1);
        self
    }
}

/// Deterministic admission accounting. Every offered frame lands in
/// exactly one bucket, so the conservation law
/// `offered_frames == admitted_frames + rejected_* + malformed_frames +
/// control_frames` holds exactly — overload is *accounted*, not guessed
/// at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Frames offered to [`Daemon::handle_frame`].
    pub offered_frames: u64,
    /// Submissions admitted to the queue.
    pub admitted_frames: u64,
    /// Queries inside admitted submissions.
    pub admitted_queries: u64,
    /// Frames rejected for declaring more bytes than the cap.
    pub rejected_oversized: u64,
    /// Submissions rejected because the in-flight queue was full.
    pub rejected_backpressure: u64,
    /// Submissions rejected by a tenant quota.
    pub rejected_quota: u64,
    /// Submissions rejected while draining for an upgrade.
    pub rejected_draining: u64,
    /// Submissions rejected after shutdown.
    pub rejected_shutdown: u64,
    /// Frames that failed to decode (truncated, corrupt, foreign).
    pub malformed_frames: u64,
    /// Non-submission frames (snapshot, retarget, checkpoint, handoff,
    /// shutdown) — accounted so conservation stays exact.
    pub control_frames: u64,
    /// Hung shards force-degraded by the admission deadline.
    pub deadline_degrades: u64,
}

impl AdmissionStats {
    /// The conservation law: every offered frame is in exactly one bucket.
    pub fn is_conserved(&self) -> bool {
        self.offered_frames
            == self.admitted_frames
                + self.rejected_oversized
                + self.rejected_backpressure
                + self.rejected_quota
                + self.rejected_draining
                + self.rejected_shutdown
                + self.malformed_frames
                + self.control_frames
    }
}

/// Where the daemon is in its lifecycle / rolling-upgrade state machine.
///
/// ```text
/// Serving --Handoff--> Draining --queue empties--> Drained
///    |                                               |
///    |                                         --Handoff--> HandedOff
///    +--Shutdown--> ShutDown <--Shutdown-- (any phase)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonPhase {
    /// Admitting and serving traffic.
    Serving,
    /// An upgrade began: no new admissions, queued work still pumping.
    Draining,
    /// The queue is empty; the hand-off frame can be produced.
    Drained,
    /// The hand-off frame was produced; this instance is done.
    HandedOff,
    /// Shut down; every submission is rejected.
    ShutDown,
}

/// Why resuming from a hand-off frame failed. The successor refuses to
/// take traffic unless every check passes — a half-restored instance
/// never serves.
#[derive(Clone, Debug, PartialEq)]
pub enum HandoffError {
    /// The hand-off bytes were not a valid wire frame.
    Wire(WireError),
    /// The bytes decoded to a frame other than [`Frame::HandoffState`].
    NotHandoff,
    /// The embedded checkpoint failed to decode.
    Checkpoint(CheckpointError),
    /// The checkpoint decoded but the service could not be rebuilt.
    Restore(RestoreError),
    /// The restored service does not reproduce the predecessor's
    /// identity; taking traffic would fork the verdict stream.
    ChecksumMismatch {
        /// Identity the hand-off frame promised.
        expected: u64,
        /// Identity the restored service computed.
        got: u64,
    },
    /// Writing the successor's initial checkpoint failed.
    Io(String),
}

impl fmt::Display for HandoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandoffError::Wire(e) => write!(f, "hand-off frame: {e}"),
            HandoffError::NotHandoff => write!(f, "frame is not a hand-off"),
            HandoffError::Checkpoint(e) => write!(f, "hand-off checkpoint: {e}"),
            HandoffError::Restore(e) => write!(f, "hand-off restore: {e}"),
            HandoffError::ChecksumMismatch { expected, got } => write!(
                f,
                "restored verdict checksum {got:#018x} does not match hand-off {expected:#018x}"
            ),
            HandoffError::Io(e) => write!(f, "hand-off journal: {e}"),
        }
    }
}

impl std::error::Error for HandoffError {}

impl From<WireError> for HandoffError {
    fn from(e: WireError) -> HandoffError {
        HandoffError::Wire(e)
    }
}

/// A submission admitted to the queue but not yet pumped.
struct PendingBatch {
    tenant: u32,
    features: Vec<Vec<f32>>,
}

/// The wire-facing monitoring daemon: a [`MonitoringService`] behind
/// admission control, journaled checkpoints, and the rolling-upgrade
/// state machine. See the module docs for the architecture.
pub struct Daemon {
    service: MonitoringService,
    journal: StateJournal,
    config: AdmissionConfig,
    stats: AdmissionStats,
    queue: VecDeque<PendingBatch>,
    queued_queries: usize,
    tenant_queued: BTreeMap<u32, usize>,
    phase: DaemonPhase,
    /// Batch index at which each currently non-serving shard was first
    /// seen down, for the hang deadline.
    down_since: BTreeMap<usize, u64>,
}

impl Daemon {
    /// Puts `service` behind the daemon, journaling an initial checkpoint
    /// so a crash before the first cadence point still recovers.
    pub fn new(
        service: MonitoringService,
        mut journal: StateJournal,
        config: AdmissionConfig,
    ) -> io::Result<Daemon> {
        journal.append_checkpoint(&service.checkpoint())?;
        Ok(Daemon {
            service,
            journal,
            config,
            stats: AdmissionStats::default(),
            queue: VecDeque::new(),
            queued_queries: 0,
            tenant_queued: BTreeMap::new(),
            phase: DaemonPhase::Serving,
            down_since: BTreeMap::new(),
        })
    }

    /// Handles one wire frame and returns the encoded response frame.
    ///
    /// Submissions go through admission control and are answered with
    /// `Ack` (queued; verdicts arrive when [`Daemon::pump`] runs) or
    /// `Reject`. Control frames are answered synchronously. An
    /// over-the-cap frame is answered `Reject(Oversized)` *without
    /// decoding its payload*.
    ///
    /// # Errors
    ///
    /// A frame that fails to decode (other than by size) is unanswerable
    /// — there is no tenant to address — so the decode error is returned
    /// for the transport to handle. Never panics, for any input.
    pub fn handle_frame(&mut self, bytes: &[u8]) -> Result<Vec<u8>, WireError> {
        self.stats.offered_frames += 1;
        let frame = match decode_frame(bytes, self.config.max_frame_bytes) {
            Ok((frame, _)) => frame,
            Err(WireError::Oversized { declared, cap }) => {
                self.stats.rejected_oversized += 1;
                return Ok(encode_frame(&Frame::Reject {
                    code: RejectCode::Oversized,
                    queued: declared,
                    cap,
                }));
            }
            Err(e) => {
                self.stats.malformed_frames += 1;
                return Err(e);
            }
        };
        let reply = match frame {
            Frame::SubmitBatch { tenant, queries } => self.admit(tenant, queries),
            Frame::Snapshot => {
                self.stats.control_frames += 1;
                Frame::SnapshotText {
                    json: self.service.snapshot().to_json(),
                }
            }
            Frame::Retarget { target_error_rate } => {
                self.stats.control_frames += 1;
                match self.service.retarget(target_error_rate) {
                    Ok(()) => Frame::Ack,
                    Err(e) => Frame::ErrorReply {
                        message: e.to_string(),
                    },
                }
            }
            Frame::Checkpoint => {
                self.stats.control_frames += 1;
                let checkpoint = self.service.checkpoint();
                match self.journal.append_checkpoint(&checkpoint) {
                    Ok(()) => Frame::CheckpointBytes {
                        bytes: checkpoint.encode(),
                    },
                    Err(e) => Frame::ErrorReply {
                        message: e.to_string(),
                    },
                }
            }
            Frame::Handoff => {
                self.stats.control_frames += 1;
                if self.phase == DaemonPhase::Serving {
                    self.begin_drain();
                }
                if self.queue.is_empty() {
                    match self.handoff() {
                        Ok(bytes) => return Ok(bytes),
                        Err(e) => Frame::ErrorReply {
                            message: e.to_string(),
                        },
                    }
                } else {
                    // Drain in progress: the caller pumps and asks again.
                    Frame::Reject {
                        code: RejectCode::Draining,
                        queued: self.queued_queries as u64,
                        cap: self.config.max_queued_queries as u64,
                    }
                }
            }
            Frame::Shutdown => {
                self.stats.control_frames += 1;
                self.phase = DaemonPhase::ShutDown;
                Frame::Ack
            }
            // Response frames offered as requests decode fine but cannot
            // be served; answering typed beats panicking on a confused
            // (or probing) peer.
            other => {
                self.stats.control_frames += 1;
                Frame::ErrorReply {
                    message: format!("frame kind is not a request: {other:?}"),
                }
            }
        };
        Ok(encode_frame(&reply))
    }

    /// The in-process submission path, used by tests and embedders that
    /// skip the wire: same admission control, typed errors instead of
    /// reply frames.
    ///
    /// # Errors
    ///
    /// [`WireError::Backpressure`] when the queue, a tenant quota, or the
    /// daemon's phase refuses the submission.
    pub fn try_submit(&mut self, tenant: u32, features: Vec<Vec<f32>>) -> Result<(), WireError> {
        self.stats.offered_frames += 1;
        match self.admit(tenant, features) {
            Frame::Ack => Ok(()),
            Frame::Reject { queued, cap, .. } => Err(WireError::Backpressure { queued, cap }),
            // admit() only returns Ack or Reject; a typed error keeps the
            // path panic-free without an unreachable!.
            _ => Err(WireError::Corrupted(
                "admission returned non-ack".to_string(),
            )),
        }
    }

    /// Admission control for one submission. Exactly one stats bucket is
    /// incremented.
    fn admit(&mut self, tenant: u32, queries: Vec<Vec<f32>>) -> Frame {
        let n = queries.len();
        match self.phase {
            DaemonPhase::Serving => {}
            DaemonPhase::Draining | DaemonPhase::Drained | DaemonPhase::HandedOff => {
                self.stats.rejected_draining += 1;
                return Frame::Reject {
                    code: RejectCode::Draining,
                    queued: self.queued_queries as u64,
                    cap: self.config.max_queued_queries as u64,
                };
            }
            DaemonPhase::ShutDown => {
                self.stats.rejected_shutdown += 1;
                return Frame::Reject {
                    code: RejectCode::ShuttingDown,
                    queued: self.queued_queries as u64,
                    cap: self.config.max_queued_queries as u64,
                };
            }
        }
        // Quota before backpressure: "your quota is full" is true no
        // matter what the rest of the fleet queued, so the more precise
        // rejection wins when both bounds are violated.
        if let Some(quota) = self.config.tenant_quota {
            let used = self.tenant_queued.get(&tenant).copied().unwrap_or(0);
            if used.saturating_add(n) > quota {
                self.stats.rejected_quota += 1;
                return Frame::Reject {
                    code: RejectCode::TenantQuota,
                    queued: used as u64,
                    cap: quota as u64,
                };
            }
        }
        if self.queued_queries.saturating_add(n) > self.config.max_queued_queries {
            self.stats.rejected_backpressure += 1;
            return Frame::Reject {
                code: RejectCode::Backpressure,
                queued: self.queued_queries as u64,
                cap: self.config.max_queued_queries as u64,
            };
        }
        self.stats.admitted_frames += 1;
        self.stats.admitted_queries += n as u64;
        self.queued_queries += n;
        *self.tenant_queued.entry(tenant).or_insert(0) += n;
        self.queue.push_back(PendingBatch {
            tenant,
            features: queries,
        });
        Frame::Ack
    }

    /// Pumps up to `max_batches` queued submissions through the service,
    /// returning one encoded [`Frame::Verdicts`] per batch. Each batch is
    /// journaled before its verdicts are returned, a checkpoint is
    /// appended at the configured cadence, and the hang deadline is
    /// enforced from batch indices.
    pub fn pump(&mut self, max_batches: usize) -> io::Result<Vec<Vec<u8>>> {
        let mut replies = Vec::new();
        for _ in 0..max_batches {
            let Some(batch) = self.queue.pop_front() else {
                break;
            };
            let n = batch.features.len();
            self.queued_queries = self.queued_queries.saturating_sub(n);
            if let Some(used) = self.tenant_queued.get_mut(&batch.tenant) {
                *used = used.saturating_sub(n);
                if *used == 0 {
                    self.tenant_queued.remove(&batch.tenant);
                }
            }
            let verdicts = self
                .service
                .process_feature_batch_journaled(&batch.features, &mut self.journal)?;
            self.enforce_hang_deadline();
            if self
                .service
                .batches()
                .is_multiple_of(self.config.checkpoint_cadence.max(1))
            {
                self.journal.append_checkpoint(&self.service.checkpoint())?;
            }
            replies.push(encode_frame(&Frame::Verdicts {
                tenant: batch.tenant,
                verdicts,
            }));
        }
        if self.phase == DaemonPhase::Draining && self.queue.is_empty() {
            self.phase = DaemonPhase::Drained;
        }
        Ok(replies)
    }

    /// Pumps until the queue is empty.
    pub fn pump_all(&mut self) -> io::Result<Vec<Vec<u8>>> {
        self.pump(usize::MAX)
    }

    /// The hang deadline: a shard that has not served for
    /// `hang_deadline` consecutive batches is force-degraded to the
    /// baseline. Driven purely from batch indices, so the decision is
    /// identical at any thread count.
    fn enforce_hang_deadline(&mut self) {
        let batch = self.service.batches();
        let deadline = self.config.hang_deadline.max(1);
        let healths = self.service.shard_healths();
        for (id, health) in healths.iter().enumerate() {
            if health.is_serving() {
                self.down_since.remove(&id);
                continue;
            }
            let since = *self.down_since.entry(id).or_insert(batch);
            if batch.saturating_sub(since) >= deadline
                && self
                    .service
                    .force_degrade_shard(id, "hung past the admission deadline")
            {
                self.stats.deadline_degrades += 1;
                self.down_since.remove(&id);
            }
        }
    }

    /// Starts draining: no new admissions; queued work still pumps.
    pub fn begin_drain(&mut self) {
        if self.phase == DaemonPhase::Serving {
            self.phase = DaemonPhase::Draining;
        }
    }

    /// Produces the hand-off frame: final journaled checkpoint plus the
    /// verdict-checksum identity the successor must reproduce. The queue
    /// must already be drained — committed queries are never abandoned.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] if queued work remains or the final checkpoint
    /// cannot be journaled.
    pub fn handoff(&mut self) -> io::Result<Vec<u8>> {
        if !self.queue.is_empty() {
            return Err(io::Error::other(format!(
                "handoff with {} queries still queued",
                self.queued_queries
            )));
        }
        let checkpoint = self.service.checkpoint();
        self.journal.append_checkpoint(&checkpoint)?;
        self.phase = DaemonPhase::HandedOff;
        Ok(encode_frame(&Frame::HandoffState {
            checkpoint: checkpoint.encode(),
            verdict_checksum: self.service.verdict_checksum(),
            served: self.service.served(),
            batches: self.service.batches(),
        }))
    }

    /// The successor's half of the rolling upgrade: decode the hand-off
    /// frame, restore the service from the embedded checkpoint, and
    /// assert verdict-checksum identity — only then does the new daemon
    /// exist to take traffic. `journal` is the *successor's* journal; its
    /// initial checkpoint is appended before returning.
    ///
    /// # Errors
    ///
    /// A typed [`HandoffError`] for every way the hand-off can be wrong;
    /// hostile or stale hand-off bytes never panic and never produce a
    /// serving daemon.
    pub fn resume_from_handoff(
        handoff: &[u8],
        baseline: &BaselineHmd,
        supervision: Option<SupervisorConfig>,
        exec: ExecConfig,
        journal: StateJournal,
        config: AdmissionConfig,
    ) -> Result<Daemon, HandoffError> {
        let (frame, _) = decode_frame(handoff, HANDOFF_FRAME_CAP)?;
        let Frame::HandoffState {
            checkpoint,
            verdict_checksum,
            served,
            batches,
        } = frame
        else {
            return Err(HandoffError::NotHandoff);
        };
        let checkpoint =
            ServiceCheckpoint::decode(&checkpoint).map_err(HandoffError::Checkpoint)?;
        let service = MonitoringService::restore(baseline, supervision, &checkpoint, exec)
            .map_err(HandoffError::Restore)?;
        if service.verdict_checksum() != verdict_checksum
            || service.served() != served
            || service.batches() != batches
        {
            return Err(HandoffError::ChecksumMismatch {
                expected: verdict_checksum,
                got: service.verdict_checksum(),
            });
        }
        let mut daemon =
            Daemon::new(service, journal, config).map_err(|e| HandoffError::Io(e.to_string()))?;
        daemon.phase = DaemonPhase::Serving;
        Ok(daemon)
    }

    /// Admission accounting so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> DaemonPhase {
        self.phase
    }

    /// Queries queued but not yet pumped.
    pub fn queued_queries(&self) -> usize {
        self.queued_queries
    }

    /// The service behind the daemon.
    pub fn service(&self) -> &MonitoringService {
        &self.service
    }

    /// The running verdict-checksum identity (see
    /// [`MonitoringService::verdict_checksum`]).
    pub fn verdict_checksum(&self) -> u64 {
        self.service.verdict_checksum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::serve::ServeConfig;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_volt::calibration::{Calibrator, DeviceProfile};
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_journal() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "shmd-daemon-test-{}-{n}.journal",
            std::process::id()
        ))
    }

    fn setup() -> (Dataset, BaselineHmd, MonitoringService) {
        let dataset = Dataset::generate(&DatasetConfig::small(80), 31);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        let service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(5))
                .expect("valid config");
        (dataset, baseline, service)
    }

    fn feature_batch(dataset: &Dataset, baseline: &BaselineHmd, n: usize) -> Vec<Vec<f32>> {
        let spec = baseline.spec();
        (0..n)
            .map(|i| spec.extract(dataset.trace(i % dataset.len())))
            .collect()
    }

    #[test]
    fn admission_accounting_is_conserved_under_overload() {
        let (dataset, baseline, service) = setup();
        let batch = feature_batch(&dataset, &baseline, 4);
        let config = AdmissionConfig::default()
            .with_max_queued_queries(10)
            .with_tenant_quota(8);
        let journal = StateJournal::create(scratch_journal()).expect("journal");
        let mut daemon = Daemon::new(service, journal, config).expect("daemon");

        // Tenant 1 admits twice (8 queries), then hits its quota.
        for _ in 0..2 {
            let reply = daemon
                .handle_frame(&encode_frame(&Frame::SubmitBatch {
                    tenant: 1,
                    queries: batch.clone(),
                }))
                .expect("handled");
            let (frame, _) = decode_frame(&reply, HANDOFF_FRAME_CAP).expect("reply");
            assert_eq!(frame, Frame::Ack);
        }
        let reply = daemon
            .handle_frame(&encode_frame(&Frame::SubmitBatch {
                tenant: 1,
                queries: batch.clone(),
            }))
            .expect("handled");
        let (frame, _) = decode_frame(&reply, HANDOFF_FRAME_CAP).expect("reply");
        assert_eq!(
            frame,
            Frame::Reject {
                code: RejectCode::TenantQuota,
                queued: 8,
                cap: 8,
            }
        );
        // Tenant 2 hits the global bound (8 queued + 4 > 10).
        let reply = daemon
            .handle_frame(&encode_frame(&Frame::SubmitBatch {
                tenant: 2,
                queries: batch.clone(),
            }))
            .expect("handled");
        let (frame, _) = decode_frame(&reply, HANDOFF_FRAME_CAP).expect("reply");
        assert_eq!(
            frame,
            Frame::Reject {
                code: RejectCode::Backpressure,
                queued: 8,
                cap: 10,
            }
        );
        // Malformed bytes are counted and fail typed.
        assert!(daemon.handle_frame(b"SHWP garbage").is_err());
        // Oversized is rejected before decode.
        let mut daemon2_cfg = daemon.config;
        daemon2_cfg.max_frame_bytes = 64;
        daemon.config = daemon2_cfg;
        let big = encode_frame(&Frame::SubmitBatch {
            tenant: 3,
            queries: vec![vec![0.0; 100]],
        });
        let reply = daemon.handle_frame(&big).expect("handled");
        let (frame, _) = decode_frame(&reply, HANDOFF_FRAME_CAP).expect("reply");
        assert!(matches!(
            frame,
            Frame::Reject {
                code: RejectCode::Oversized,
                ..
            }
        ));

        let stats = daemon.stats();
        assert_eq!(stats.offered_frames, 6);
        assert_eq!(stats.admitted_frames, 2);
        assert_eq!(stats.admitted_queries, 8);
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.rejected_backpressure, 1);
        assert_eq!(stats.malformed_frames, 1);
        assert_eq!(stats.rejected_oversized, 1);
        assert!(stats.is_conserved());

        // Pumping drains the queue and frees the quota.
        let replies = daemon.pump_all().expect("pumps");
        assert_eq!(replies.len(), 2);
        assert_eq!(daemon.queued_queries(), 0);
        daemon.config.max_frame_bytes = crate::wire::DEFAULT_MAX_FRAME_BYTES;
        assert!(daemon.try_submit(1, batch).is_ok());
        let _ = std::fs::remove_file(daemon.journal.path());
    }

    #[test]
    fn drain_handoff_resume_preserves_the_verdict_stream() {
        let (dataset, baseline, service) = setup();
        let batch = feature_batch(&dataset, &baseline, 6);
        let journal_a = StateJournal::create(scratch_journal()).expect("journal");
        let mut old = Daemon::new(service, journal_a, AdmissionConfig::default()).expect("daemon");

        // Reference: the same stream on a never-upgraded service.
        let (_, _, mut reference) = setup();
        for _ in 0..6 {
            reference.process_feature_batch(&batch);
        }

        for _ in 0..3 {
            old.try_submit(0, batch.clone()).expect("admitted");
        }
        old.pump_all().expect("pumps");

        // Handoff while work is queued: rejected as draining, then fine.
        old.try_submit(0, batch.clone()).expect("admitted");
        let reply = old
            .handle_frame(&encode_frame(&Frame::Handoff))
            .expect("handled");
        let (frame, _) = decode_frame(&reply, HANDOFF_FRAME_CAP).expect("reply");
        assert!(matches!(
            frame,
            Frame::Reject {
                code: RejectCode::Draining,
                ..
            }
        ));
        assert_eq!(old.phase(), DaemonPhase::Draining);
        assert!(
            old.try_submit(0, batch.clone()).is_err(),
            "draining admits nothing"
        );
        old.pump_all().expect("pumps");
        assert_eq!(old.phase(), DaemonPhase::Drained);

        let handoff = old
            .handle_frame(&encode_frame(&Frame::Handoff))
            .expect("handled");
        let (frame, _) = decode_frame(&handoff, HANDOFF_FRAME_CAP).expect("handoff frame");
        assert!(matches!(frame, Frame::HandoffState { .. }));
        assert_eq!(old.phase(), DaemonPhase::HandedOff);

        let journal_b = StateJournal::create(scratch_journal()).expect("journal");
        let mut new = Daemon::resume_from_handoff(
            &handoff,
            &baseline,
            None,
            ExecConfig::serial(),
            journal_b,
            AdmissionConfig::default(),
        )
        .expect("resumes");
        assert_eq!(new.phase(), DaemonPhase::Serving);
        assert_eq!(new.verdict_checksum(), old.verdict_checksum());

        // The successor continues the stream exactly where the reference is.
        new.try_submit(0, batch.clone()).expect("admitted");
        new.try_submit(0, batch).expect("admitted");
        new.pump_all().expect("pumps");
        assert_eq!(new.verdict_checksum(), reference.verdict_checksum());
        assert_eq!(new.service().served(), reference.served());
        let _ = std::fs::remove_file(new.journal.path());
    }

    #[test]
    fn hostile_handoff_bytes_never_produce_a_serving_daemon() {
        let (_, baseline, _) = setup();
        let resume = |bytes: &[u8]| {
            let journal = StateJournal::create(scratch_journal()).expect("journal");
            let path = journal.path().to_path_buf();
            let out = Daemon::resume_from_handoff(
                bytes,
                &baseline,
                None,
                ExecConfig::serial(),
                journal,
                AdmissionConfig::default(),
            );
            let _ = std::fs::remove_file(path);
            out
        };
        assert!(matches!(
            resume(b"not a frame"),
            Err(HandoffError::Wire(WireError::BadMagic))
        ));
        assert_eq!(
            resume(&encode_frame(&Frame::Ack)).err(),
            Some(HandoffError::NotHandoff)
        );
        let bad_checkpoint = encode_frame(&Frame::HandoffState {
            checkpoint: vec![0; 16],
            verdict_checksum: 1,
            served: 1,
            batches: 1,
        });
        assert!(matches!(
            resume(&bad_checkpoint),
            Err(HandoffError::Checkpoint(_))
        ));
    }
}

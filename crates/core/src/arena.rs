//! The adaptive-attacker arena: a live [`MonitoringService`] behind the
//! black-box [`Detector`] interface.
//!
//! The paper's §V threat model gives the adversary unlimited black-box
//! query access — but every attack in `shmd-attack` drives a bare
//! [`Detector`], while what a fleet actually exposes is the full serving
//! stack: sharded fan-out, calibration generations, supervision,
//! uncertainty-aware re-query, checkpoint/restore. [`ArenaOracle`] closes
//! that gap. It wraps a deployed service and answers `classify` through
//! the real `process_batch` path, so each attacker query advances the
//! *real* stream position, draws the *real* per-position fault stream,
//! and receives the verdict the deployed monitor would have emitted —
//! re-query label flips included.
//!
//! Because everything inside the service is a pure function of
//! `(seed, stream position)`, an arena run is replayable: the oracle's
//! verdicts are bit-identical at any thread count, and a mid-arena
//! checkpoint restores to the same continuation (the `arena_bench` gates
//! assert both).
//!
//! The oracle also meters the attacker: [`ArenaOracle::queries`] counts
//! every query the adversary spent, which is the defender's practical
//! deterrent (each query is an execution of the sample on the victim
//! machine).

use crate::detector::{Detector, Label};
use crate::serve::{MonitoringService, QueryDisposition, Verdict};
use shmd_workload::trace::Trace;

/// A live monitoring service exposed as a black-box [`Detector`] oracle,
/// with a query-cost meter.
pub struct ArenaOracle {
    name: String,
    service: MonitoringService,
    queries: u64,
}

impl ArenaOracle {
    /// Puts a deployed service into the arena.
    pub fn new(service: MonitoringService) -> ArenaOracle {
        ArenaOracle::from_parts(service, 0)
    }

    /// Rebuilds an oracle around a restored service, carrying a prior
    /// query-cost count (for checkpoint/restore of a running arena).
    pub fn from_parts(service: MonitoringService, queries: u64) -> ArenaOracle {
        ArenaOracle {
            name: format!("arena({} shards)", service.shard_count()),
            service,
            queries,
        }
    }

    /// Victim queries the adversary has spent so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The live service, for telemetry/checkpoint access.
    pub fn service(&self) -> &MonitoringService {
        &self.service
    }

    /// Mutable access to the live service (to checkpoint mid-arena or
    /// adjust the re-query policy between rounds).
    pub fn service_mut(&mut self) -> &mut MonitoringService {
        &mut self.service
    }

    /// Releases the service.
    pub fn into_service(self) -> MonitoringService {
        self.service
    }

    /// Issues one query through the live serving path and returns the
    /// full verdict (disposition and confidence included).
    pub fn query(&mut self, trace: &Trace) -> Verdict {
        self.queries += 1;
        let mut verdicts = self.service.process_batch(&[trace]);
        // process_batch returns exactly one verdict per query.
        verdicts.pop().unwrap_or(Verdict {
            query: self.service.served().saturating_sub(1),
            shard: 0,
            score: 0.0,
            label: Label::Benign,
            disposition: QueryDisposition::Served,
            confidence: crate::serve::VerdictConfidence::Confident,
        })
    }
}

impl Detector for ArenaOracle {
    fn name(&self) -> &str {
        &self.name
    }

    /// The primary order statistic of the live verdict. Note that under
    /// an active re-query policy the authoritative label can differ from
    /// `score >= threshold` (the ensemble may flip it); black-box attacks
    /// should use [`Detector::classify`], which this oracle overrides to
    /// return the live label.
    fn score(&mut self, trace: &Trace) -> f64 {
        self.query(trace).score
    }

    /// One live detection: the label the deployed monitor actually
    /// emitted for this stream position, re-query flips included.
    fn classify(&mut self, trace: &Trace) -> Label {
        self.query(trace).label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{RequeryConfig, ServeConfig};
    use crate::supervisor::SupervisorConfig;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_volt::calibration::DeviceProfile;
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;

    fn arena() -> (Dataset, ArenaOracle) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 77);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let service = MonitoringService::supervised(
            &baseline,
            SupervisorConfig::new(DeviceProfile::reference()),
            ServeConfig::new(2).with_seed(9),
        )
        .expect("deploy");
        (dataset, ArenaOracle::new(service))
    }

    #[test]
    fn oracle_queries_advance_the_live_stream_and_are_metered() {
        let (dataset, mut oracle) = arena();
        assert_eq!(oracle.queries(), 0);
        for i in 0..10 {
            let _ = oracle.classify(dataset.trace(i));
        }
        assert_eq!(oracle.queries(), 10);
        assert_eq!(oracle.service().served(), 10);
        assert!(oracle.service().verdict_checksum() != 0);
    }

    #[test]
    fn oracle_replays_bit_identically_per_seed() {
        let (dataset, mut a) = arena();
        let (_, mut b) = arena();
        for i in 0..20 {
            let va = a.query(dataset.trace(i % 10));
            let vb = b.query(dataset.trace(i % 10));
            assert_eq!(va.score.to_bits(), vb.score.to_bits(), "query {i}");
            assert_eq!(va.label, vb.label, "query {i}");
            assert_eq!(va.confidence, vb.confidence, "query {i}");
        }
        assert_eq!(
            a.service().verdict_checksum(),
            b.service().verdict_checksum()
        );
    }

    #[test]
    fn classify_returns_the_live_label_under_requery() {
        let (dataset, mut oracle) = arena();
        oracle
            .service_mut()
            .set_requery(Some(RequeryConfig::new(0.5, 5)));
        // With a half-width-0.5 band every stochastic score is a band
        // hit; the labels must come from the ensemble vote.
        for i in 0..16 {
            let v = oracle.query(dataset.trace(i % 10));
            assert!(v.confidence.is_requeried(), "query {i}: {v:?}");
        }
        let snapshot = oracle.service().snapshot();
        assert_eq!(snapshot.band_hits, 16);
        assert!(snapshot.requeries >= 16 * 5);
    }

    #[test]
    fn checkpoint_restore_resumes_the_same_arena() {
        let (dataset, mut oracle) = arena();
        for i in 0..8 {
            let _ = oracle.query(dataset.trace(i % 10));
        }
        let checkpoint = oracle.service().checkpoint();
        let queries = oracle.queries();

        // Continue the original.
        let mut original_tail = Vec::new();
        for i in 8..16 {
            original_tail.push(oracle.query(dataset.trace(i % 10)).score.to_bits());
        }

        // Restore a second oracle from the snapshot and replay.
        let dataset2 = Dataset::generate(&DatasetConfig::small(100), 77);
        let split = dataset2.three_fold_split(0);
        let baseline = train_baseline(
            &dataset2,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let restored = MonitoringService::restore(
            &baseline,
            Some(SupervisorConfig::new(DeviceProfile::reference())),
            &checkpoint,
            crate::exec::ExecConfig::serial(),
        )
        .expect("restore");
        let mut resumed = ArenaOracle::from_parts(restored, queries);
        assert_eq!(resumed.queries(), 8);
        let mut resumed_tail = Vec::new();
        for i in 8..16 {
            resumed_tail.push(resumed.query(dataset2.trace(i % 10)).score.to_bits());
        }
        assert_eq!(original_tail, resumed_tail);
        assert_eq!(
            oracle.service().verdict_checksum(),
            resumed.service().verdict_checksum()
        );
    }
}

//! Crash-consistent checkpoint/restore with a write-ahead state journal.
//!
//! A continuous monitor runs for months; the host it runs on does not. This
//! module makes a [`crate::serve::MonitoringService`] *durable*: the full
//! mutable state of the service — per-shard RNG streams and calibration
//! generations, the fault injector's in-flight geometric gap and folded
//! statistics, supervision records and retry schedules, the voltage
//! controller's calibration point, telemetry counters, and the global
//! stream position — folds into a versioned, self-validating binary
//! [`ServiceCheckpoint`]. Restoring it rebuilds a service that continues
//! the verdict stream **bit-identically**, at any thread count, as if the
//! process had never died.
//!
//! Two properties make that possible:
//!
//! - everything derived (fault-model CDF tables, calibration curves,
//!   thermal traces) is a pure function of a handful of free parameters, so
//!   the checkpoint stores only those parameters and rebuilds the tables on
//!   restore — snapshots stay small and version drift in table layout
//!   cannot corrupt a resume;
//! - everything stochastic runs on counter-derived seeds and snapshottable
//!   xoshiro256++ state, so the resumed RNG streams pick up mid-gap on the
//!   exact next draw.
//!
//! The only state deliberately *not* captured is the wall-clock batch
//! latency window — timing is not replayable by definition, and all
//! bit-identity comparisons go through
//! [`crate::telemetry::TelemetrySnapshot::without_timing`].
//!
//! # The write-ahead journal
//!
//! A checkpoint alone cannot tell you *where in the input stream* the crash
//! happened. [`StateJournal`] is an append-only log of length-prefixed,
//! checksummed records: full [`ServiceCheckpoint`]s at a configurable
//! cadence, and a tiny [`BatchCommit`] (stream position + verdict
//! checksum) appended **before a batch's verdicts are exposed** to the
//! caller. After a kill -9 — including one that tears a record mid-append —
//! [`StateJournal::recover`] scans the valid prefix, discards the torn
//! tail (never panicking), and returns the newest checkpoint plus the
//! commits after it. Because the commit is written before the results are
//! visible, replaying the input stream from the checkpoint's position
//! re-executes *at most one* batch whose verdicts a caller could not have
//! observed, and determinism makes that replay produce the exact bytes the
//! dead process would have produced.
//!
//! See `DESIGN.md` §11 for the recovery protocol and the
//! `crash_restore` example / `crash_restore_bench` binary for the
//! kill-and-resume harness.

// Checkpoints and journals are decoded from disk after a crash — bytes
// that may be torn, rotted, or foreign. Every failure on this path must be
// a typed error the recovery protocol can act on, never a panic.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use crate::codec::{fnv1a, fnv1a_tagged, CodecError, Reader, Writer};
use crate::deploy::DetectionPolicy;
use crate::supervisor::ShardHealth;
use crate::telemetry::{FaultCounters, HISTOGRAM_BINS};
use shmd_volt::fault::{FaultModelState, FaultStats, InjectorState};
use shmd_volt::voltage::Millivolts;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First bytes of every encoded [`ServiceCheckpoint`].
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SHCK";

/// Format version written by [`ServiceCheckpoint::encode`]. Decoding any
/// other version fails with [`CheckpointError::UnsupportedVersion`] instead
/// of misinterpreting bytes. Version 2 added the energy/power-scheduling
/// fields (per-shard accrued energy, last busy power, scheduler target and
/// load-window base; service-wide projected power). Version 3 added the
/// uncertainty-aware re-query fields (per-shard band hits and re-query
/// draws; service-wide re-query band and replica count).
pub const CHECKPOINT_VERSION: u16 = 3;

/// Journal record kind: a full service checkpoint.
const RECORD_CHECKPOINT: u8 = 1;
/// Journal record kind: a batch commit marker.
const RECORD_BATCH_COMMIT: u8 = 2;

/// Bytes of journal framing around a payload: `u32` length + `u8` kind
/// before it, `u64` checksum after it.
const RECORD_OVERHEAD: usize = 4 + 1 + 8;

/// Encoded size of a [`BatchCommit`] payload.
const BATCH_COMMIT_LEN: usize = 24;

/// Error decoding a [`ServiceCheckpoint`] from bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes do not start with [`CHECKPOINT_MAGIC`] — not a checkpoint.
    BadMagic,
    /// The checkpoint was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The input ended before the structure did.
    Truncated,
    /// The structure is self-inconsistent (checksum mismatch, invalid enum
    /// tag, impossible length, trailing bytes).
    Corrupted(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::Corrupted(what) => write!(f, "checkpoint is corrupted: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> CheckpointError {
        match e {
            CodecError::Truncated => CheckpointError::Truncated,
            CodecError::Corrupted(what) => CheckpointError::Corrupted(what),
        }
    }
}

/// Error restoring a [`crate::serve::MonitoringService`] from a decoded
/// [`ServiceCheckpoint`] (see `MonitoringService::restore`).
#[derive(Clone, Debug, PartialEq)]
pub enum RestoreError {
    /// The baseline model's input width differs from the checkpointed
    /// service's — this checkpoint belongs to a different deployment.
    InputDimMismatch {
        /// Input width of the baseline offered at restore.
        got: usize,
        /// Input width recorded in the checkpoint.
        expected: usize,
    },
    /// The checkpoint captured a supervised service but no
    /// [`crate::supervisor::SupervisorConfig`] was provided.
    SupervisorRequired,
    /// A supervisor config was provided but the checkpoint captured an
    /// unsupervised service.
    SupervisorUnexpected,
    /// Rebuilding the supervisor's voltage controller at the checkpointed
    /// calibration point failed (the provided config describes a device
    /// the saved operating point cannot exist on).
    Calibration(shmd_volt::calibration::CalibrationError),
    /// The checkpoint decodes but describes a state no live service can
    /// hold (invalid injector snapshot, controller offset that disagrees
    /// with the recalibrated curve, out-of-range target).
    InvalidState(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::InputDimMismatch { got, expected } => write!(
                f,
                "baseline input width {got} does not match checkpointed width {expected}"
            ),
            RestoreError::SupervisorRequired => {
                write!(
                    f,
                    "checkpoint is supervised: a supervisor config is required"
                )
            }
            RestoreError::SupervisorUnexpected => write!(
                f,
                "checkpoint is unsupervised: no supervisor config must be provided"
            ),
            RestoreError::Calibration(e) => {
                write!(f, "restoring the voltage controller failed: {e}")
            }
            RestoreError::InvalidState(what) => write!(f, "invalid checkpoint state: {what}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<shmd_volt::calibration::CalibrationError> for RestoreError {
    fn from(e: shmd_volt::calibration::CalibrationError) -> RestoreError {
        RestoreError::Calibration(e)
    }
}

/// A shard backend at checkpoint time.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendCheckpoint {
    /// The protected replica, with its complete detector snapshot.
    Stochastic(crate::stochastic::StochasticHmdState),
    /// Degraded: serving the baseline at nominal voltage. The baseline
    /// model itself is deterministic and supplied again at restore, so
    /// only the marker is stored.
    Baseline,
    /// Crashed and quarantined: no backend until the supervisor restarts
    /// it.
    Down,
}

/// One shard's complete mutable state.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCheckpoint {
    /// Shard index.
    pub id: u64,
    /// Current generation seed.
    pub seed: u64,
    /// Calibration generation.
    pub generation: u64,
    /// The detector backend.
    pub backend: BackendCheckpoint,
    /// Supervision health state.
    pub health: ShardHealth,
    /// Lifetime health transitions.
    pub transitions: u64,
    /// Lifetime crashes.
    pub crashes: u64,
    /// Lifetime watchdog drift events.
    pub drift_events: u64,
    /// Lifetime recovery retries.
    pub retries: u64,
    /// Consecutive failed retries of the current quarantine.
    pub attempt: u32,
    /// Batch index of the next scheduled retry, when quarantined.
    pub next_retry_batch: Option<u64>,
    /// The watchdog's reference delivered-error-rate, once observed.
    pub reference_rate: Option<f64>,
    /// Fault counters at the start of the watchdog's current window.
    pub window_mark: FaultCounters,
    /// Why the shard is degraded/quarantined, when it is.
    pub degraded_reason: Option<String>,
    /// Lifetime degradation events.
    pub degradation_events: u64,
    /// Queries answered.
    pub queries: u64,
    /// Malware verdicts raised.
    pub flags: u64,
    /// Fault counters folded from retired injector generations.
    pub retired_faults: FaultCounters,
    /// Score histogram bin counts.
    pub histogram: [u64; HISTOGRAM_BINS],
    /// Cumulative detection energy, microjoules.
    pub energy_uj: f64,
    /// Busy core power (watts) at the last energy accrual.
    pub last_power_w: Option<f64>,
    /// The power scheduler's current error-rate target for the shard.
    pub power_target_er: Option<f64>,
    /// Shard query count at the last power-scheduling tick.
    pub power_window_queries: u64,
    /// Queries whose score landed inside the re-query confidence band.
    pub band_hits: u64,
    /// Extra ensemble draws spent answering band hits.
    pub requeries: u64,
}

/// The supervisor's mutable state: the voltage controller's calibration
/// point. The thermal environment and chaos plan are *stateless* —
/// temperature and scripted kills are pure functions of the batch index,
/// whose cursor is the service's `batches` counter — and their
/// configuration is supplied again at restore.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SupervisorCheckpoint {
    /// Temperature (°C) the controller last calibrated at.
    pub calibrated_at_c: f64,
    /// Undervolt offset the controller held, in mV — carried so restore
    /// can verify the recalibrated curve reproduces it exactly.
    pub offset_mv: i32,
}

/// A complete, versioned snapshot of a [`crate::serve::MonitoringService`].
///
/// Produced by `MonitoringService::checkpoint`, consumed by
/// `MonitoringService::restore`. [`ServiceCheckpoint::encode`] /
/// [`ServiceCheckpoint::decode`] round-trip it through a self-validating
/// binary format (magic, version, trailing checksum); decoding rejects
/// foreign, truncated, or corrupted bytes with a typed
/// [`CheckpointError`] and never panics.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceCheckpoint {
    /// Verdict aggregation policy.
    pub policy: DetectionPolicy,
    /// Calibration target error rate.
    pub target_error_rate: f64,
    /// Master seed.
    pub seed: u64,
    /// Streaming batch size.
    pub batch_size: u64,
    /// Input-layer width of the deployed model.
    pub input_dim: u64,
    /// Global stream position: queries consumed (served + rejected).
    pub served: u64,
    /// Batches processed — also the thermal-environment step and the
    /// chaos-plan cursor of the next supervision step.
    pub batches: u64,
    /// Queries rejected at ingestion.
    pub rejected_queries: u64,
    /// Running verdict checksum.
    pub verdict_checksum: u64,
    /// Projected busy-power total over serving shards at the last
    /// power-scheduling tick, when a budget policy ran.
    pub service_power_w: Option<f64>,
    /// Half-width of the uncertainty re-query band around the threshold,
    /// when re-query was enabled.
    pub requery_band: Option<f64>,
    /// Ensemble replicas drawn per band hit (0 when re-query is off).
    pub requery_replicas: u64,
    /// Supervisor state, for services deployed via
    /// `MonitoringService::supervised`.
    pub supervisor: Option<SupervisorCheckpoint>,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardCheckpoint>,
}

impl ServiceCheckpoint {
    /// Serialises the checkpoint: [`CHECKPOINT_MAGIC`], a `u16` version,
    /// the body, and a trailing FNV-1a checksum over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        w.u16(CHECKPOINT_VERSION);
        w.u8(policy_tag(self.policy));
        w.u64(policy_k(self.policy));
        w.f64(self.target_error_rate);
        w.u64(self.seed);
        w.u64(self.batch_size);
        w.u64(self.input_dim);
        w.u64(self.served);
        w.u64(self.batches);
        w.u64(self.rejected_queries);
        w.u64(self.verdict_checksum);
        w.opt_f64(self.service_power_w);
        w.opt_f64(self.requery_band);
        w.u64(self.requery_replicas);
        match &self.supervisor {
            None => w.u8(0),
            Some(sup) => {
                w.u8(1);
                w.f64(sup.calibrated_at_c);
                w.i32(sup.offset_mv);
            }
        }
        w.u32(self.shards.len() as u32);
        for shard in &self.shards {
            encode_shard(&mut w, shard);
        }
        let checksum = fnv1a(&w.bytes);
        w.u64(checksum);
        w.bytes
    }

    /// Decodes bytes produced by [`ServiceCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`] for foreign bytes,
    /// [`CheckpointError::UnsupportedVersion`] for a future format,
    /// [`CheckpointError::Truncated`] when the input ends early, and
    /// [`CheckpointError::Corrupted`] for checksum mismatches, invalid
    /// tags, impossible lengths, or trailing bytes. Never panics, for any
    /// input.
    pub fn decode(bytes: &[u8]) -> Result<ServiceCheckpoint, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 2 + 8 {
            if !bytes.starts_with(CHECKPOINT_MAGIC.get(..bytes.len()).unwrap_or(&[])) {
                return Err(CheckpointError::BadMagic);
            }
            return Err(CheckpointError::Truncated);
        }
        let Some((body, tail)) = bytes.split_last_chunk::<8>() else {
            return Err(CheckpointError::Truncated);
        };
        if body.get(..4) != Some(&CHECKPOINT_MAGIC[..]) {
            return Err(CheckpointError::BadMagic);
        }
        if fnv1a(body) != u64::from_le_bytes(*tail) {
            return Err(CheckpointError::Corrupted("checksum mismatch".to_string()));
        }
        let mut r = Reader::new(body.get(4..).unwrap_or(&[]));
        let version = r.u16()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let policy = decode_policy(r.u8()?, r.u64()?)?;
        let checkpoint = ServiceCheckpoint {
            policy,
            target_error_rate: r.f64()?,
            seed: r.u64()?,
            batch_size: r.u64()?,
            input_dim: r.u64()?,
            served: r.u64()?,
            batches: r.u64()?,
            rejected_queries: r.u64()?,
            verdict_checksum: r.u64()?,
            service_power_w: r.opt_f64()?,
            requery_band: r.opt_f64()?,
            requery_replicas: r.u64()?,
            supervisor: match r.u8()? {
                0 => None,
                1 => Some(SupervisorCheckpoint {
                    calibrated_at_c: r.f64()?,
                    offset_mv: r.i32()?,
                }),
                tag => {
                    return Err(CheckpointError::Corrupted(format!(
                        "invalid supervisor tag {tag}"
                    )))
                }
            },
            shards: {
                let count = r.u32()? as usize;
                // Each shard costs at least ~140 body bytes; a count that
                // cannot fit in the remaining input is corruption, not an
                // allocation request.
                if count > r.remaining() {
                    return Err(CheckpointError::Truncated);
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(decode_shard(&mut r)?);
                }
                shards
            },
        };
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupted(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(checkpoint)
    }
}

fn policy_tag(policy: DetectionPolicy) -> u8 {
    match policy {
        DetectionPolicy::Single => 0,
        DetectionPolicy::AnyOf(_) => 1,
        DetectionPolicy::MajorityOf(_) => 2,
    }
}

fn policy_k(policy: DetectionPolicy) -> u64 {
    match policy {
        DetectionPolicy::Single => 1,
        DetectionPolicy::AnyOf(k) | DetectionPolicy::MajorityOf(k) => k as u64,
    }
}

fn decode_policy(tag: u8, k: u64) -> Result<DetectionPolicy, CheckpointError> {
    let k = usize::try_from(k)
        .map_err(|_| CheckpointError::Corrupted(format!("policy k {k} overflows")))?;
    match tag {
        0 => Ok(DetectionPolicy::Single),
        1 => Ok(DetectionPolicy::AnyOf(k)),
        2 => Ok(DetectionPolicy::MajorityOf(k)),
        _ => Err(CheckpointError::Corrupted(format!(
            "invalid policy tag {tag}"
        ))),
    }
}

fn health_tag(health: ShardHealth) -> u8 {
    match health {
        ShardHealth::Healthy => 0,
        ShardHealth::Drifting => 1,
        ShardHealth::Crashed => 2,
        ShardHealth::Quarantined => 3,
        ShardHealth::Recovering => 4,
        ShardHealth::Degraded => 5,
    }
}

fn decode_health(tag: u8) -> Result<ShardHealth, CheckpointError> {
    Ok(match tag {
        0 => ShardHealth::Healthy,
        1 => ShardHealth::Drifting,
        2 => ShardHealth::Crashed,
        3 => ShardHealth::Quarantined,
        4 => ShardHealth::Recovering,
        5 => ShardHealth::Degraded,
        _ => {
            return Err(CheckpointError::Corrupted(format!(
                "invalid health tag {tag}"
            )))
        }
    })
}

fn encode_counters(w: &mut Writer, counters: &FaultCounters) {
    w.u64(counters.multiplies);
    w.u64(counters.faulty);
    w.u64(counters.bit_flips);
}

fn decode_counters(r: &mut Reader<'_>) -> Result<FaultCounters, CheckpointError> {
    Ok(FaultCounters {
        multiplies: r.u64()?,
        faulty: r.u64()?,
        bit_flips: r.u64()?,
    })
}

fn encode_shard(w: &mut Writer, shard: &ShardCheckpoint) {
    w.u64(shard.id);
    w.u64(shard.seed);
    w.u64(shard.generation);
    match &shard.backend {
        BackendCheckpoint::Stochastic(state) => {
            w.u8(0);
            w.string(&state.name);
            w.f64(state.error_rate);
            match state.offset {
                None => w.u8(0),
                Some(mv) => {
                    w.u8(1);
                    w.i32(mv.get());
                }
            }
            w.f64(state.threshold);
            encode_injector(w, &state.injector);
        }
        BackendCheckpoint::Baseline => w.u8(1),
        BackendCheckpoint::Down => w.u8(2),
    }
    w.u8(health_tag(shard.health));
    w.u64(shard.transitions);
    w.u64(shard.crashes);
    w.u64(shard.drift_events);
    w.u64(shard.retries);
    w.u32(shard.attempt);
    w.opt_u64(shard.next_retry_batch);
    w.opt_f64(shard.reference_rate);
    encode_counters(w, &shard.window_mark);
    match &shard.degraded_reason {
        None => w.u8(0),
        Some(reason) => {
            w.u8(1);
            w.string(reason);
        }
    }
    w.u64(shard.degradation_events);
    w.u64(shard.queries);
    w.u64(shard.flags);
    encode_counters(w, &shard.retired_faults);
    for bin in shard.histogram {
        w.u64(bin);
    }
    w.f64(shard.energy_uj);
    w.opt_f64(shard.last_power_w);
    w.opt_f64(shard.power_target_er);
    w.u64(shard.power_window_queries);
    w.u64(shard.band_hits);
    w.u64(shard.requeries);
}

fn decode_shard(r: &mut Reader<'_>) -> Result<ShardCheckpoint, CheckpointError> {
    Ok(ShardCheckpoint {
        id: r.u64()?,
        seed: r.u64()?,
        generation: r.u64()?,
        backend: match r.u8()? {
            0 => BackendCheckpoint::Stochastic(crate::stochastic::StochasticHmdState {
                name: r.string()?,
                error_rate: r.f64()?,
                offset: match r.u8()? {
                    0 => None,
                    1 => Some(Millivolts::new(r.i32()?)),
                    tag => {
                        return Err(CheckpointError::Corrupted(format!(
                            "invalid offset tag {tag}"
                        )))
                    }
                },
                threshold: r.f64()?,
                injector: decode_injector(r)?,
            }),
            1 => BackendCheckpoint::Baseline,
            2 => BackendCheckpoint::Down,
            tag => {
                return Err(CheckpointError::Corrupted(format!(
                    "invalid backend tag {tag}"
                )))
            }
        },
        health: decode_health(r.u8()?)?,
        transitions: r.u64()?,
        crashes: r.u64()?,
        drift_events: r.u64()?,
        retries: r.u64()?,
        attempt: r.u32()?,
        next_retry_batch: r.opt_u64()?,
        reference_rate: r.opt_f64()?,
        window_mark: decode_counters(r)?,
        degraded_reason: match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            tag => {
                return Err(CheckpointError::Corrupted(format!(
                    "invalid reason tag {tag}"
                )))
            }
        },
        degradation_events: r.u64()?,
        queries: r.u64()?,
        flags: r.u64()?,
        retired_faults: decode_counters(r)?,
        histogram: {
            let mut bins = [0u64; HISTOGRAM_BINS];
            for bin in &mut bins {
                *bin = r.u64()?;
            }
            bins
        },
        energy_uj: r.f64()?,
        last_power_w: r.opt_f64()?,
        power_target_er: r.opt_f64()?,
        power_window_queries: r.u64()?,
        band_hits: r.u64()?,
        requeries: r.u64()?,
    })
}

fn encode_injector(w: &mut Writer, injector: &InjectorState) {
    encode_fault_model(w, &injector.model);
    for word in injector.rng {
        w.u64(word);
    }
    encode_fault_stats(w, &injector.stats);
    w.u64(injector.skip);
}

fn decode_injector(r: &mut Reader<'_>) -> Result<InjectorState, CheckpointError> {
    Ok(InjectorState {
        model: decode_fault_model(r)?,
        rng: [r.u64()?, r.u64()?, r.u64()?, r.u64()?],
        stats: decode_fault_stats(r)?,
        skip: r.u64()?,
    })
}

fn encode_fault_model(w: &mut Writer, model: &FaultModelState) {
    w.f64(model.error_rate);
    w.u32(model.flips.len() as u32);
    for &(bit, p) in &model.flips {
        w.u8(bit);
        w.f64(p);
    }
    w.f64(model.ripple_fraction);
    w.u32(model.ripple_span);
    w.u32(model.near_zero_width);
}

fn decode_fault_model(r: &mut Reader<'_>) -> Result<FaultModelState, CheckpointError> {
    Ok(FaultModelState {
        error_rate: r.f64()?,
        flips: {
            let count = r.u32()? as usize;
            if count.saturating_mul(9) > r.remaining() {
                return Err(CheckpointError::Truncated);
            }
            let mut flips = Vec::with_capacity(count);
            for _ in 0..count {
                flips.push((r.u8()?, r.f64()?));
            }
            flips
        },
        ripple_fraction: r.f64()?,
        ripple_span: r.u32()?,
        near_zero_width: r.u32()?,
    })
}

fn encode_fault_stats(w: &mut Writer, stats: &FaultStats) {
    w.u64(stats.multiplies);
    w.u64(stats.faulty);
    w.u32(stats.bit_flips.len() as u32);
    for &count in &stats.bit_flips {
        w.u64(count);
    }
}

fn decode_fault_stats(r: &mut Reader<'_>) -> Result<FaultStats, CheckpointError> {
    Ok(FaultStats {
        multiplies: r.u64()?,
        faulty: r.u64()?,
        bit_flips: {
            let count = r.u32()? as usize;
            if count.saturating_mul(8) > r.remaining() {
                return Err(CheckpointError::Truncated);
            }
            let mut flips = Vec::with_capacity(count);
            for _ in 0..count {
                flips.push(r.u64()?);
            }
            flips
        },
    })
}

/// The commit marker appended to the journal after a batch's state
/// mutations and *before* its verdicts are exposed to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchCommit {
    /// Index of the committed batch (0-based; the service's `batches`
    /// counter was `batch + 1` after it).
    pub batch: u64,
    /// Stream position after the batch: queries consumed so far.
    pub stream_pos: u64,
    /// Verdict checksum after the batch.
    pub checksum: u64,
}

/// What [`StateJournal::recover`] salvaged from a journal file.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecovery {
    /// The newest intact checkpoint, if any record of that kind survived.
    pub checkpoint: Option<ServiceCheckpoint>,
    /// Batch commits appended after that checkpoint, oldest first.
    pub commits: Vec<BatchCommit>,
    /// Bytes of torn/corrupt tail discarded from the end of the file.
    pub torn_bytes: u64,
}

impl JournalRecovery {
    /// The last committed batch index, when any commit survived.
    pub fn last_committed_batch(&self) -> Option<u64> {
        self.commits.last().map(|c| c.batch)
    }
}

/// An append-only write-ahead log of [`ServiceCheckpoint`]s and
/// [`BatchCommit`]s.
///
/// Every record is framed as `[u32 payload-len][u8 kind][payload]
/// [u64 fnv-1a(kind ‖ payload)]`, so [`StateJournal::recover`] can walk
/// the file from the front and stop at the first frame whose length,
/// kind, checksum, or payload does not validate — a kill -9 mid-append
/// tears at most the final record, and the torn tail is discarded, never
/// misread and never a panic.
pub struct StateJournal {
    file: File,
    path: PathBuf,
}

impl StateJournal {
    /// Creates (or truncates) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<StateJournal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(StateJournal { file, path })
    }

    /// Opens an existing journal for appending (after a recovery, to
    /// continue the same log).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from opening the file.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<StateJournal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(StateJournal { file, path })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a full checkpoint record and syncs it to disk.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the write or sync.
    pub fn append_checkpoint(&mut self, checkpoint: &ServiceCheckpoint) -> io::Result<()> {
        self.append_record(RECORD_CHECKPOINT, &checkpoint.encode())
    }

    /// Appends a batch-commit record and syncs it to disk. Called after
    /// the batch's state mutations and before its verdicts are exposed.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the write or sync.
    pub fn append_commit(&mut self, commit: BatchCommit) -> io::Result<()> {
        let mut payload = Vec::with_capacity(BATCH_COMMIT_LEN);
        payload.extend_from_slice(&commit.batch.to_le_bytes());
        payload.extend_from_slice(&commit.stream_pos.to_le_bytes());
        payload.extend_from_slice(&commit.checksum.to_le_bytes());
        self.append_record(RECORD_BATCH_COMMIT, &payload)
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.push(kind);
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&fnv1a_tagged(kind, payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()
    }

    /// Scans a journal file and salvages its valid prefix.
    ///
    /// Walks records from the front; the first frame that fails to
    /// validate (short frame, impossible length, unknown kind, checksum
    /// mismatch, undecodable checkpoint payload) ends the scan and the
    /// rest of the file is reported as [`JournalRecovery::torn_bytes`].
    /// Returns the newest intact checkpoint and the commits appended
    /// after it. A missing file recovers to an empty journal.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from reading the file (other than it not
    /// existing).
    pub fn recover(path: impl AsRef<Path>) -> io::Result<JournalRecovery> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut pos = 0usize;
        let mut checkpoint: Option<ServiceCheckpoint> = None;
        let mut commits: Vec<BatchCommit> = Vec::new();
        while pos < bytes.len() {
            let Some(rest) = bytes.get(pos..) else {
                break;
            };
            if rest.len() < RECORD_OVERHEAD {
                break; // torn frame header/trailer
            }
            let Some(len_bytes) = rest.first_chunk::<4>() else {
                break;
            };
            let len = u32::from_le_bytes(*len_bytes) as usize;
            if len > rest.len() - RECORD_OVERHEAD {
                break; // frame claims more payload than the file holds
            }
            let Some(&kind) = rest.get(4) else {
                break;
            };
            let Some(payload) = rest.get(5..5 + len) else {
                break;
            };
            let Some(stored_bytes) = rest
                .get(5 + len..RECORD_OVERHEAD + len)
                .and_then(|tail| tail.first_chunk::<8>())
            else {
                break;
            };
            if fnv1a_tagged(kind, payload) != u64::from_le_bytes(*stored_bytes) {
                break; // torn or bit-rotted record
            }
            match kind {
                RECORD_CHECKPOINT => match ServiceCheckpoint::decode(payload) {
                    Ok(cp) => {
                        checkpoint = Some(cp);
                        commits.clear();
                    }
                    Err(_) => break,
                },
                RECORD_BATCH_COMMIT => {
                    if len != BATCH_COMMIT_LEN {
                        break;
                    }
                    let mut r = Reader::new(payload);
                    let (Ok(batch), Ok(stream_pos), Ok(checksum)) = (r.u64(), r.u64(), r.u64())
                    else {
                        break; // impossible at BATCH_COMMIT_LEN, but typed
                    };
                    commits.push(BatchCommit {
                        batch,
                        stream_pos,
                        checksum,
                    });
                }
                _ => break, // unknown kind: treat as corruption
            }
            pos += RECORD_OVERHEAD + len;
        }
        Ok(JournalRecovery {
            checkpoint,
            commits,
            torn_bytes: (bytes.len() - pos) as u64,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> ServiceCheckpoint {
        ServiceCheckpoint {
            policy: DetectionPolicy::MajorityOf(3),
            target_error_rate: 0.2,
            seed: 42,
            batch_size: 16,
            input_dim: 24,
            served: 640,
            batches: 40,
            rejected_queries: 3,
            verdict_checksum: 0xdead_beef_cafe_f00d,
            service_power_w: Some(12.75),
            requery_band: Some(0.08),
            requery_replicas: 4,
            supervisor: Some(SupervisorCheckpoint {
                calibrated_at_c: 52.25,
                offset_mv: -231,
            }),
            shards: vec![
                ShardCheckpoint {
                    id: 0,
                    seed: 7,
                    generation: 2,
                    backend: BackendCheckpoint::Stochastic(crate::stochastic::StochasticHmdState {
                        name: "stochastic(er=0.2)".to_string(),
                        error_rate: 0.2,
                        offset: Some(Millivolts::new(-231)),
                        threshold: 0.5,
                        injector: InjectorState {
                            model: FaultModelState {
                                error_rate: 0.2,
                                flips: vec![(3, 0.125), (17, 0.5)],
                                ripple_fraction: 0.05,
                                ripple_span: 8,
                                near_zero_width: 20,
                            },
                            rng: [1, 2, 3, 4],
                            stats: FaultStats {
                                multiplies: 1000,
                                faulty: 180,
                                bit_flips: vec![5; 64],
                            },
                            skip: 11,
                        },
                    }),
                    health: ShardHealth::Healthy,
                    transitions: 4,
                    crashes: 1,
                    drift_events: 0,
                    retries: 2,
                    attempt: 0,
                    next_retry_batch: None,
                    reference_rate: Some(0.19),
                    window_mark: FaultCounters {
                        multiplies: 900,
                        faulty: 160,
                        bit_flips: 300,
                    },
                    degraded_reason: None,
                    degradation_events: 0,
                    queries: 320,
                    flags: 100,
                    retired_faults: FaultCounters::default(),
                    histogram: [2; HISTOGRAM_BINS],
                    energy_uj: 987.5,
                    last_power_w: Some(6.5),
                    power_target_er: Some(0.15),
                    power_window_queries: 300,
                    band_hits: 12,
                    requeries: 48,
                },
                ShardCheckpoint {
                    id: 1,
                    seed: 9,
                    generation: 0,
                    backend: BackendCheckpoint::Down,
                    health: ShardHealth::Quarantined,
                    transitions: 2,
                    crashes: 1,
                    drift_events: 0,
                    retries: 1,
                    attempt: 1,
                    next_retry_batch: Some(44),
                    reference_rate: None,
                    window_mark: FaultCounters::default(),
                    degraded_reason: Some("chaos kill".to_string()),
                    degradation_events: 0,
                    queries: 310,
                    flags: 90,
                    retired_faults: FaultCounters {
                        multiplies: 800,
                        faulty: 140,
                        bit_flips: 250,
                    },
                    histogram: [1; HISTOGRAM_BINS],
                    energy_uj: 0.0,
                    last_power_w: None,
                    power_target_er: None,
                    power_window_queries: 0,
                    band_hits: 0,
                    requeries: 0,
                },
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_identically() {
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.encode();
        let back = ServiceCheckpoint::decode(&bytes).expect("round trip");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn foreign_and_versioned_bytes_are_rejected_with_typed_errors() {
        let bytes = sample_checkpoint().encode();
        assert_eq!(
            ServiceCheckpoint::decode(b"JSON{not a checkpoint}"),
            Err(CheckpointError::BadMagic)
        );
        // An empty input is indistinguishable from a torn-off prefix of a
        // real checkpoint, so it reports truncation rather than bad magic.
        assert_eq!(
            ServiceCheckpoint::decode(b""),
            Err(CheckpointError::Truncated)
        );
        // Bump the version field (and nothing else): the checksum guard is
        // recomputed so the version check itself is exercised.
        let mut versioned = bytes.clone();
        versioned[4] = 0x2a;
        let body_len = versioned.len() - 8;
        let sum = fnv1a(&versioned[..body_len]);
        versioned[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            ServiceCheckpoint::decode(&versioned),
            Err(CheckpointError::UnsupportedVersion(0x2a))
        );
    }

    #[test]
    fn truncation_and_corruption_never_panic() {
        let bytes = sample_checkpoint().encode();
        // Every prefix fails typed, never panics.
        for cut in 0..bytes.len() {
            assert!(
                ServiceCheckpoint::decode(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        // Any single flipped byte is caught by the trailing checksum (or a
        // structural check).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(
                ServiceCheckpoint::decode(&bad).is_err(),
                "flip at {i} decoded"
            );
        }
    }

    #[test]
    fn journal_recovers_checkpoint_and_commits_and_discards_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "shmd-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let checkpoint = sample_checkpoint();
        {
            let mut journal = StateJournal::create(&path).expect("create");
            journal.append_checkpoint(&checkpoint).expect("checkpoint");
            for batch in 40..43u64 {
                journal
                    .append_commit(BatchCommit {
                        batch,
                        stream_pos: (batch + 1) * 16,
                        checksum: batch * 31,
                    })
                    .expect("commit");
            }
        }
        let clean = StateJournal::recover(&path).expect("recover");
        assert_eq!(clean.checkpoint.as_ref(), Some(&checkpoint));
        assert_eq!(clean.commits.len(), 3);
        assert_eq!(clean.last_committed_batch(), Some(42));
        assert_eq!(clean.torn_bytes, 0);

        // Tear the final record mid-append: every truncation point of the
        // last frame must recover to the first two commits.
        let full = std::fs::read(&path).expect("read");
        let last_frame = RECORD_OVERHEAD + BATCH_COMMIT_LEN;
        for torn in 1..=last_frame {
            std::fs::write(&path, &full[..full.len() - torn]).expect("truncate");
            let salvaged = StateJournal::recover(&path).expect("recover torn");
            assert_eq!(
                salvaged.checkpoint.as_ref(),
                Some(&checkpoint),
                "torn {torn}"
            );
            assert_eq!(salvaged.commits.len(), 2, "torn {torn}");
            assert_eq!(
                salvaged.torn_bytes as usize,
                last_frame - torn,
                "torn {torn}"
            );
        }

        // A flipped byte inside the tail record likewise ends the scan.
        let mut rotted = full.clone();
        let tail_start = rotted.len() - last_frame;
        rotted[tail_start + 7] ^= 0x10;
        std::fs::write(&path, &rotted).expect("rot");
        let salvaged = StateJournal::recover(&path).expect("recover rotted");
        assert_eq!(salvaged.commits.len(), 2);
        assert_eq!(salvaged.torn_bytes as usize, last_frame);

        // A later checkpoint supersedes earlier commits.
        std::fs::write(&path, &full).expect("restore file");
        {
            let mut journal = StateJournal::open_append(&path).expect("append");
            journal
                .append_checkpoint(&checkpoint)
                .expect("checkpoint 2");
            journal
                .append_commit(BatchCommit {
                    batch: 43,
                    stream_pos: 704,
                    checksum: 9,
                })
                .expect("commit 4");
        }
        let resumed = StateJournal::recover(&path).expect("recover resumed");
        assert_eq!(resumed.commits.len(), 1);
        assert_eq!(resumed.last_committed_batch(), Some(43));

        // A missing file is an empty journal, not an error.
        std::fs::remove_file(&path).expect("cleanup");
        let empty = StateJournal::recover(&path).expect("recover missing");
        assert_eq!(empty.checkpoint, None);
        assert!(empty.commits.is_empty());
        assert_eq!(empty.torn_bytes, 0);
    }
}

//! §VI space exploration: how the error rate shapes accuracy and
//! decision-boundary stochasticity.
//!
//! [`accuracy_sweep`] regenerates the data behind Figure 2(a): detection
//! accuracy, FPR, and FNR (mean ± standard deviation over repetitions ×
//! folds) as the error rate sweeps `[0, 1]`. [`confidence_distribution`]
//! regenerates Figure 2(b): the distribution of output scores per class at
//! a given error rate.

use crate::stochastic::StochasticHmd;
use crate::train::{train_baseline, HmdTrainConfig, TrainHmdError};
use serde::{Deserialize, Serialize};
use shmd_ml::metrics::{mean_std, ConfusionMatrix};
use shmd_volt::fault::FaultModelError;
use shmd_workload::dataset::Dataset;
use shmd_workload::features::FeatureSpec;
use std::fmt;

/// Error running a space-exploration sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreError {
    /// Training a fold's baseline failed.
    Train(TrainHmdError),
    /// An error rate in the grid is invalid.
    Fault(FaultModelError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Train(e) => write!(f, "training failed: {e}"),
            ExploreError::Fault(e) => write!(f, "invalid error rate: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<TrainHmdError> for ExploreError {
    fn from(e: TrainHmdError) -> ExploreError {
        ExploreError::Train(e)
    }
}

impl From<FaultModelError> for ExploreError {
    fn from(e: FaultModelError) -> ExploreError {
        ExploreError::Fault(e)
    }
}

/// One row of Figure 2(a): statistics at a single error rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The multiplication error rate.
    pub error_rate: f64,
    /// Mean detection accuracy across repetitions × folds.
    pub accuracy_mean: f64,
    /// Standard deviation of the accuracy — the visible stochasticity of
    /// the decision boundary.
    pub accuracy_std: f64,
    /// Mean false-positive rate.
    pub fpr_mean: f64,
    /// Standard deviation of the FPR.
    pub fpr_std: f64,
    /// Mean false-negative rate.
    pub fnr_mean: f64,
    /// Standard deviation of the FNR.
    pub fnr_std: f64,
}

/// Runs the Figure 2(a) sweep.
///
/// For each of the three cross-validation rotations, a baseline is trained
/// once; each grid error rate is then evaluated `reps` times over the
/// held-out fold with fresh fault-injector seeds.
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or a grid rate is invalid.
pub fn accuracy_sweep(
    dataset: &Dataset,
    er_grid: &[f64],
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
) -> Result<Vec<SweepPoint>, ExploreError> {
    let spec = FeatureSpec::frequency();
    // Train one baseline per rotation.
    let mut folds = Vec::new();
    for rotation in 0..3 {
        let split = dataset.three_fold_split(rotation);
        let baseline = train_baseline(dataset, split.victim_training(), spec, config)?;
        folds.push((baseline, split));
    }

    let mut points = Vec::with_capacity(er_grid.len());
    for (gi, &er) in er_grid.iter().enumerate() {
        let mut accs = Vec::new();
        let mut fprs = Vec::new();
        let mut fnrs = Vec::new();
        for (fi, (baseline, split)) in folds.iter().enumerate() {
            for rep in 0..reps {
                let inj_seed = seed
                    .wrapping_add(0x1000 * gi as u64)
                    .wrapping_add(0x100 * fi as u64)
                    .wrapping_add(rep as u64);
                let mut hmd = StochasticHmd::from_baseline(baseline, er, inj_seed)?;
                let mut m = ConfusionMatrix::new();
                for &i in split.testing() {
                    let f = spec.extract(dataset.trace(i));
                    m.record(
                        hmd.score_features(&f) >= 0.5,
                        dataset.program(i).is_malware(),
                    );
                }
                accs.push(m.accuracy());
                fprs.push(m.false_positive_rate());
                fnrs.push(m.false_negative_rate());
            }
        }
        let (accuracy_mean, accuracy_std) = mean_std(&accs);
        let (fpr_mean, fpr_std) = mean_std(&fprs);
        let (fnr_mean, fnr_std) = mean_std(&fnrs);
        points.push(SweepPoint {
            error_rate: er,
            accuracy_mean,
            accuracy_std,
            fpr_mean,
            fpr_std,
            fnr_mean,
            fnr_std,
        });
    }
    Ok(points)
}

/// The Figure 2(b) data: output-score samples per true class at one error
/// rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceDistribution {
    /// The multiplication error rate.
    pub error_rate: f64,
    /// Scores assigned to benign test samples.
    pub benign_scores: Vec<f64>,
    /// Scores assigned to malware test samples.
    pub malware_scores: Vec<f64>,
}

impl ConfidenceDistribution {
    /// `(mean, std)` of the benign-sample scores.
    pub fn benign_summary(&self) -> (f64, f64) {
        mean_std(&self.benign_scores)
    }

    /// `(mean, std)` of the malware-sample scores.
    pub fn malware_summary(&self) -> (f64, f64) {
        mean_std(&self.malware_scores)
    }
}

/// Collects the Figure 2(b) confidence distribution at one error rate
/// (rotation 0, `reps` stochastic detections per test sample).
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or the rate is invalid.
pub fn confidence_distribution(
    dataset: &Dataset,
    er: f64,
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
) -> Result<ConfidenceDistribution, ExploreError> {
    let spec = FeatureSpec::frequency();
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(dataset, split.victim_training(), spec, config)?;
    let mut hmd = StochasticHmd::from_baseline(&baseline, er, seed)?;
    let mut benign_scores = Vec::new();
    let mut malware_scores = Vec::new();
    for &i in split.testing() {
        let f = spec.extract(dataset.trace(i));
        for _ in 0..reps {
            let s = hmd.score_features(&f);
            if dataset.program(i).is_malware() {
                malware_scores.push(s);
            } else {
                benign_scores.push(s);
            }
        }
    }
    Ok(ConfidenceDistribution {
        error_rate: er,
        benign_scores,
        malware_scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(60), 51)
    }

    #[test]
    fn sweep_shapes_match_fig2a() {
        let d = dataset();
        let grid = [0.0, 0.1, 0.9];
        let points =
            accuracy_sweep(&d, &grid, 3, &HmdTrainConfig::fast(), 7).expect("sweep");
        assert_eq!(points.len(), 3);
        // Accuracy at er = 0 is the (good) baseline.
        assert!(points[0].accuracy_mean > 0.88, "{:?}", points[0]);
        // er = 0 is deterministic per fold: only inter-fold spread remains.
        assert!(points[0].accuracy_std < 0.05, "{:?}", points[0]);
        // er = 0.1 costs little accuracy (paper: ≈2%).
        assert!(
            points[0].accuracy_mean - points[1].accuracy_mean < 0.08,
            "{:?} vs {:?}",
            points[0],
            points[1]
        );
        // er = 0.9 degrades markedly more.
        assert!(points[1].accuracy_mean > points[2].accuracy_mean);
        // Stochasticity appears at non-zero error rates.
        assert!(points[1].accuracy_std > 0.0);
    }

    #[test]
    fn confidence_spread_grows_with_error_rate(){
        let d = dataset();
        let cfg = HmdTrainConfig::fast();
        let low = confidence_distribution(&d, 0.1, 3, &cfg, 1).expect("low");
        let high = confidence_distribution(&d, 0.9, 3, &cfg, 1).expect("high");
        let (_, low_std) = low.malware_summary();
        let (_, high_std) = high.malware_summary();
        assert!(
            high_std > low_std,
            "uncertainty must grow with er: {low_std} vs {high_std}"
        );
    }

    #[test]
    fn zero_rate_distribution_is_degenerate_per_sample() {
        let d = dataset();
        let dist =
            confidence_distribution(&d, 0.0, 2, &HmdTrainConfig::fast(), 1).expect("dist");
        // With two deterministic reps per sample, consecutive scores pair up.
        for pair in dist.malware_scores.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn invalid_rate_is_an_error() {
        let d = dataset();
        let err = accuracy_sweep(&d, &[2.0], 1, &HmdTrainConfig::fast(), 1)
            .expect_err("invalid");
        assert!(matches!(err, ExploreError::Fault(_)));
    }
}

//! §VI space exploration: how the error rate shapes accuracy and
//! decision-boundary stochasticity.
//!
//! [`accuracy_sweep`] regenerates the data behind Figure 2(a): detection
//! accuracy, FPR, and FNR (mean ± standard deviation over repetitions ×
//! folds) as the error rate sweeps `[0, 1]`. [`confidence_distribution`]
//! regenerates Figure 2(b): the distribution of output scores per class at
//! a given error rate.

use crate::detector::Detector;
use crate::exec::{derive_seed, parallel_map_n, ExecConfig};
use crate::stochastic::StochasticHmd;
use crate::train::{train_baseline, HmdTrainConfig, TrainHmdError};
use serde::{Deserialize, Serialize};
use shmd_ml::metrics::{mean_std, ConfusionMatrix};
use shmd_volt::fault::{FaultModel, FaultModelError};
use shmd_workload::dataset::Dataset;
use shmd_workload::features::FeatureSpec;
use std::fmt;

/// Seed-derivation tags separating this module's experiments under one
/// master seed.
const TAG_SWEEP: u64 = 0x2a;
const TAG_CONFIDENCE: u64 = 0x2b;

/// Error running a space-exploration sweep.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreError {
    /// Training a fold's baseline failed.
    Train(TrainHmdError),
    /// An error rate in the grid is invalid.
    Fault(FaultModelError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Train(e) => write!(f, "training failed: {e}"),
            ExploreError::Fault(e) => write!(f, "invalid error rate: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<TrainHmdError> for ExploreError {
    fn from(e: TrainHmdError) -> ExploreError {
        ExploreError::Train(e)
    }
}

impl From<FaultModelError> for ExploreError {
    fn from(e: FaultModelError) -> ExploreError {
        ExploreError::Fault(e)
    }
}

/// One row of Figure 2(a): statistics at a single error rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The multiplication error rate.
    pub error_rate: f64,
    /// Mean detection accuracy across repetitions × folds.
    pub accuracy_mean: f64,
    /// Standard deviation of the accuracy — the visible stochasticity of
    /// the decision boundary.
    pub accuracy_std: f64,
    /// Mean false-positive rate.
    pub fpr_mean: f64,
    /// Standard deviation of the FPR.
    pub fpr_std: f64,
    /// Mean false-negative rate.
    pub fnr_mean: f64,
    /// Standard deviation of the FNR.
    pub fnr_std: f64,
}

/// Runs the Figure 2(a) sweep on an automatically sized thread pool.
///
/// Equivalent to [`accuracy_sweep_with`] under [`ExecConfig::auto`]; the
/// result is bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or a grid rate is invalid.
pub fn accuracy_sweep(
    dataset: &Dataset,
    er_grid: &[f64],
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
) -> Result<Vec<SweepPoint>, ExploreError> {
    accuracy_sweep_with(dataset, er_grid, reps, config, seed, &ExecConfig::auto())
}

/// Runs the Figure 2(a) sweep.
///
/// For each of the three cross-validation rotations, a baseline is trained
/// once and its held-out fold's feature vectors are extracted once; each
/// `(error rate, fold, repetition)` cell then becomes an independent task
/// whose fault-injector seed is [derived](derive_seed) from the master
/// seed and the cell's grid coordinates. Classification uses each
/// detector's own threshold, so sweep and deployment numbers agree.
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or a grid rate is invalid.
pub fn accuracy_sweep_with(
    dataset: &Dataset,
    er_grid: &[f64],
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
    exec: &ExecConfig,
) -> Result<Vec<SweepPoint>, ExploreError> {
    // Validate the whole grid up front so the fan-out below is infallible.
    for &er in er_grid {
        FaultModel::from_error_rate(er)?;
    }
    let spec = FeatureSpec::frequency();
    // Train one baseline per rotation (concurrently — training is itself
    // seed-deterministic) and extract its test fold's features once,
    // instead of |grid| × reps times per sample.
    let folds = parallel_map_n(exec, 3, |rotation| -> Result<Fold, TrainHmdError> {
        let split = dataset.three_fold_split(rotation);
        let baseline = train_baseline(dataset, split.victim_training(), spec, config)?;
        let testing = split
            .testing()
            .iter()
            .map(|&i| {
                (
                    spec.extract(dataset.trace(i)),
                    dataset.program(i).is_malware(),
                )
            })
            .collect();
        Ok(Fold { baseline, testing })
    })
    .into_iter()
    .collect::<Result<Vec<Fold>, TrainHmdError>>()?;

    let reps = reps.max(1);
    let cells = er_grid.len() * folds.len() * reps;
    let evaluations = parallel_map_n(exec, cells, |cell| {
        let gi = cell / (folds.len() * reps);
        let fi = (cell / reps) % folds.len();
        let rep = cell % reps;
        let fold = &folds[fi];
        let inj_seed = derive_seed(seed, &[TAG_SWEEP, gi as u64, fi as u64, rep as u64]);
        let mut hmd = StochasticHmd::from_baseline(&fold.baseline, er_grid[gi], inj_seed)
            .expect("grid was validated above");
        let threshold = Detector::threshold(&hmd);
        let mut m = ConfusionMatrix::new();
        // One detector scores the whole test fold: its inference scratch and
        // geometric fault-gap state amortise across every sample, so the
        // inner loop neither allocates nor draws per-MAC randomness.
        for (features, is_malware) in &fold.testing {
            m.record(hmd.score_features(features) >= threshold, *is_malware);
        }
        (
            m.accuracy(),
            m.false_positive_rate(),
            m.false_negative_rate(),
        )
    });

    let points = er_grid
        .iter()
        .enumerate()
        .map(|(gi, &er)| {
            let cells = &evaluations[gi * folds.len() * reps..(gi + 1) * folds.len() * reps];
            let accs: Vec<f64> = cells.iter().map(|c| c.0).collect();
            let fprs: Vec<f64> = cells.iter().map(|c| c.1).collect();
            let fnrs: Vec<f64> = cells.iter().map(|c| c.2).collect();
            let (accuracy_mean, accuracy_std) = mean_std(&accs);
            let (fpr_mean, fpr_std) = mean_std(&fprs);
            let (fnr_mean, fnr_std) = mean_std(&fnrs);
            SweepPoint {
                error_rate: er,
                accuracy_mean,
                accuracy_std,
                fpr_mean,
                fpr_std,
                fnr_mean,
                fnr_std,
            }
        })
        .collect();
    Ok(points)
}

/// One trained rotation with its pre-extracted test fold.
struct Fold {
    baseline: crate::baseline::BaselineHmd,
    testing: Vec<(Vec<f32>, bool)>,
}

/// The Figure 2(b) data: output-score samples per true class at one error
/// rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceDistribution {
    /// The multiplication error rate.
    pub error_rate: f64,
    /// Scores assigned to benign test samples.
    pub benign_scores: Vec<f64>,
    /// Scores assigned to malware test samples.
    pub malware_scores: Vec<f64>,
}

impl ConfidenceDistribution {
    /// `(mean, std)` of the benign-sample scores.
    pub fn benign_summary(&self) -> (f64, f64) {
        mean_std(&self.benign_scores)
    }

    /// `(mean, std)` of the malware-sample scores.
    pub fn malware_summary(&self) -> (f64, f64) {
        mean_std(&self.malware_scores)
    }
}

/// Collects the Figure 2(b) confidence distribution at one error rate
/// (rotation 0, `reps` stochastic detections per test sample) on an
/// automatically sized thread pool.
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or the rate is invalid.
pub fn confidence_distribution(
    dataset: &Dataset,
    er: f64,
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
) -> Result<ConfidenceDistribution, ExploreError> {
    confidence_distribution_with(dataset, er, reps, config, seed, &ExecConfig::auto())
}

/// Collects the Figure 2(b) confidence distribution at one error rate.
///
/// Each test sample is an independent task scoring `reps` stochastic
/// detections with a seed [derived](derive_seed) from the master seed and
/// the sample's index, so the distribution is bit-identical at any thread
/// count.
///
/// # Errors
///
/// Returns [`ExploreError`] if training fails or the rate is invalid.
pub fn confidence_distribution_with(
    dataset: &Dataset,
    er: f64,
    reps: usize,
    config: &HmdTrainConfig,
    seed: u64,
    exec: &ExecConfig,
) -> Result<ConfidenceDistribution, ExploreError> {
    FaultModel::from_error_rate(er)?;
    let spec = FeatureSpec::frequency();
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(dataset, split.victim_training(), spec, config)?;
    let testing = split.testing();
    let per_sample = parallel_map_n(exec, testing.len(), |si| {
        let i = testing[si];
        let f = spec.extract(dataset.trace(i));
        let mut hmd = StochasticHmd::from_baseline(
            &baseline,
            er,
            derive_seed(seed, &[TAG_CONFIDENCE, si as u64]),
        )
        .expect("rate was validated above");
        // All reps reuse one detector (and thus one inference scratch).
        let scores: Vec<f64> = (0..reps).map(|_| hmd.score_features(&f)).collect();
        (scores, dataset.program(i).is_malware())
    });
    let mut benign_scores = Vec::new();
    let mut malware_scores = Vec::new();
    for (scores, is_malware) in per_sample {
        if is_malware {
            malware_scores.extend(scores);
        } else {
            benign_scores.extend(scores);
        }
    }
    Ok(ConfidenceDistribution {
        error_rate: er,
        benign_scores,
        malware_scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(60), 51)
    }

    #[test]
    fn sweep_shapes_match_fig2a() {
        let d = dataset();
        let grid = [0.0, 0.1, 0.9];
        let points = accuracy_sweep(&d, &grid, 3, &HmdTrainConfig::fast(), 7).expect("sweep");
        assert_eq!(points.len(), 3);
        // Accuracy at er = 0 is the (good) baseline.
        assert!(points[0].accuracy_mean > 0.88, "{:?}", points[0]);
        // er = 0 is deterministic per fold: only inter-fold spread remains.
        assert!(points[0].accuracy_std < 0.05, "{:?}", points[0]);
        // er = 0.1 costs little accuracy (paper: ≈2%).
        assert!(
            points[0].accuracy_mean - points[1].accuracy_mean < 0.08,
            "{:?} vs {:?}",
            points[0],
            points[1]
        );
        // er = 0.9 degrades markedly more.
        assert!(points[1].accuracy_mean > points[2].accuracy_mean);
        // Stochasticity appears at non-zero error rates.
        assert!(points[1].accuracy_std > 0.0);
    }

    #[test]
    fn confidence_spread_grows_with_error_rate() {
        let d = dataset();
        let cfg = HmdTrainConfig::fast();
        let low = confidence_distribution(&d, 0.1, 3, &cfg, 1).expect("low");
        let high = confidence_distribution(&d, 0.9, 3, &cfg, 1).expect("high");
        let (_, low_std) = low.malware_summary();
        let (_, high_std) = high.malware_summary();
        assert!(
            high_std > low_std,
            "uncertainty must grow with er: {low_std} vs {high_std}"
        );
    }

    #[test]
    fn zero_rate_distribution_is_degenerate_per_sample() {
        let d = dataset();
        let dist = confidence_distribution(&d, 0.0, 2, &HmdTrainConfig::fast(), 1).expect("dist");
        // With two deterministic reps per sample, consecutive scores pair up.
        for pair in dist.malware_scores.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn invalid_rate_is_an_error() {
        let d = dataset();
        let err = accuracy_sweep(&d, &[2.0], 1, &HmdTrainConfig::fast(), 1).expect_err("invalid");
        assert!(matches!(err, ExploreError::Fault(_)));
    }
}

//! The daemon's length-prefixed binary wire protocol.
//!
//! A deployed monitor (see [`crate::daemon`]) takes queries over a byte
//! stream, and a byte stream is the attack surface PAPERS.md's RHMD line
//! warns about: the *deployed detector*, not just the model, is what an
//! adversary probes. This module therefore reuses the checkpoint codec's
//! discipline end to end — magic + `u16` version + little-endian
//! length-prefixed payload + trailing FNV-1a, remaining-bytes bounds
//! checks before every allocation — so hostile bytes (truncations, bit
//! flips, length-field lies, foreign formats) decode to a typed
//! [`WireError`], never a panic, and never an allocation beyond the
//! declared frame cap.
//!
//! # Frame layout
//!
//! ```text
//! [magic "SHWP" 4B][version u16][kind u8][payload-len u32][payload]
//! [fnv1a u64 over everything before it]
//! ```
//!
//! [`decode_frame`] validates in paranoia order: magic, version, the
//! declared length against the caller's frame cap (**before** any
//! allocation or payload read — a length-field lie costs nothing), then
//! the availability of the full frame, then the trailing checksum, and
//! only then the payload structure. Requests and responses share one
//! [`Frame`] enum so a relay or a fuzzer can speak both directions.

// Every byte on this path arrives from outside the process. The whole
// module is audited to "hostile bytes never panic": no unwrap, no expect,
// no unchecked indexing.
#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use crate::codec::{fnv1a, CodecError, Reader, Writer};
use crate::serve::{QueryDisposition, RejectReason, Verdict, VerdictConfidence};
use std::fmt;

/// First bytes of every wire frame ("Stochastic-HMD Wire Protocol").
pub const WIRE_MAGIC: [u8; 4] = *b"SHWP";

/// Protocol version written by [`encode_frame`]. Decoding any other
/// version fails with [`WireError::UnsupportedVersion`] instead of
/// misinterpreting bytes. Version 2 added the verdict confidence tag
/// (uncertainty-aware re-query disposition).
pub const WIRE_VERSION: u16 = 2;

/// Bytes of framing around a payload: magic + version + kind + length
/// before it, checksum after it.
pub const FRAME_OVERHEAD: usize = 4 + 2 + 1 + 4 + 8;

/// Default cap on a whole frame (header + payload + checksum). A frame
/// declaring more payload than fits is rejected with
/// [`WireError::Oversized`] before any allocation.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 20;

/// Error decoding a wire frame from bytes, or admitting one in-process.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The bytes do not start with [`WIRE_MAGIC`] — not a wire frame.
    BadMagic,
    /// The frame was written by an unknown protocol version.
    UnsupportedVersion(u16),
    /// The input ended before the frame did.
    Truncated,
    /// The frame is self-inconsistent (checksum mismatch, invalid tag,
    /// impossible length, trailing payload bytes, non-UTF-8 string).
    Corrupted(String),
    /// The declared frame length exceeds the receiver's cap. Raised
    /// before any allocation: a length-field lie costs the receiver
    /// nothing.
    Oversized {
        /// Whole-frame length the header declares.
        declared: u64,
        /// The receiver's frame cap.
        cap: u64,
    },
    /// The receiver's admission queue cannot take the submission — the
    /// bounded in-flight queue (or the submitter's tenant quota) is full.
    Backpressure {
        /// Queries already queued against the violated bound.
        queued: u64,
        /// The violated bound.
        cap: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a wire frame: bad magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "wire frame is truncated"),
            WireError::Corrupted(what) => write!(f, "wire frame is corrupted: {what}"),
            WireError::Oversized { declared, cap } => {
                write!(
                    f,
                    "frame declares {declared} bytes, over the {cap}-byte cap"
                )
            }
            WireError::Backpressure { queued, cap } => {
                write!(f, "admission queue full: {queued} of {cap} queries queued")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        match e {
            // Inside a checksummed frame the payload cannot honestly run
            // short — a short structure is a length lie, i.e. corruption.
            CodecError::Truncated => WireError::Corrupted("payload is truncated".to_string()),
            CodecError::Corrupted(what) => WireError::Corrupted(what),
        }
    }
}

/// Why the daemon refused a frame, carried in [`Frame::Reject`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The bounded in-flight queue is full.
    Backpressure,
    /// The frame declared more bytes than the admission cap.
    Oversized,
    /// The submitting tenant's quota is exhausted.
    TenantQuota,
    /// The daemon is draining for a rolling upgrade.
    Draining,
    /// The daemon has shut down.
    ShuttingDown,
}

impl RejectCode {
    fn tag(self) -> u8 {
        match self {
            RejectCode::Backpressure => 0,
            RejectCode::Oversized => 1,
            RejectCode::TenantQuota => 2,
            RejectCode::Draining => 3,
            RejectCode::ShuttingDown => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<RejectCode, WireError> {
        Ok(match tag {
            0 => RejectCode::Backpressure,
            1 => RejectCode::Oversized,
            2 => RejectCode::TenantQuota,
            3 => RejectCode::Draining,
            4 => RejectCode::ShuttingDown,
            _ => return Err(WireError::Corrupted(format!("invalid reject code {tag}"))),
        })
    }
}

impl fmt::Display for RejectCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectCode::Backpressure => "backpressure",
            RejectCode::Oversized => "oversized",
            RejectCode::TenantQuota => "tenant-quota",
            RejectCode::Draining => "draining",
            RejectCode::ShuttingDown => "shutting-down",
        })
    }
}

/// One protocol message — request or response; a relay (or fuzzer)
/// speaks both directions with one codec.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Request: score a batch of raw feature vectors. Queries are
    /// length-prefixed individually, so a wrong-width query travels fine
    /// and is rejected *per-query* by ingestion validation, not at the
    /// frame level.
    SubmitBatch {
        /// Submitting tenant, for per-tenant admission quotas.
        tenant: u32,
        /// The feature vectors.
        queries: Vec<Vec<f32>>,
    },
    /// Request: the service's telemetry snapshot.
    Snapshot,
    /// Request: change the calibration target error rate.
    Retarget {
        /// The new target.
        target_error_rate: f64,
    },
    /// Request: checkpoint now (journaled) and return the encoded bytes.
    Checkpoint,
    /// Request: advance the rolling-upgrade state machine — start (or
    /// finish) draining and, once drained, emit [`Frame::HandoffState`].
    Handoff,
    /// Request: stop admitting work permanently.
    Shutdown,
    /// Response: the request succeeded and has no payload to return.
    Ack,
    /// Response to an admitted [`Frame::SubmitBatch`], produced when the
    /// daemon pumps its queue.
    Verdicts {
        /// Tenant the batch belonged to.
        tenant: u32,
        /// Verdicts in query order.
        verdicts: Vec<Verdict>,
    },
    /// Response: the telemetry snapshot as its canonical JSON document.
    SnapshotText {
        /// [`crate::telemetry::TelemetrySnapshot::to_json`] output.
        json: String,
    },
    /// Response: the frame was refused by admission control.
    Reject {
        /// Why.
        code: RejectCode,
        /// Occupancy of the violated bound at refusal.
        queued: u64,
        /// The violated bound.
        cap: u64,
    },
    /// Response: an encoded [`crate::checkpoint::ServiceCheckpoint`].
    CheckpointBytes {
        /// [`crate::checkpoint::ServiceCheckpoint::encode`] output.
        bytes: Vec<u8>,
    },
    /// Response: the rolling-upgrade hand-off — the drained service's
    /// final checkpoint plus the identity the successor must reproduce
    /// before taking traffic.
    HandoffState {
        /// Encoded final checkpoint.
        checkpoint: Vec<u8>,
        /// Verdict checksum at hand-off; the restored successor must
        /// match it bit-for-bit.
        verdict_checksum: u64,
        /// Stream position at hand-off.
        served: u64,
        /// Batches processed at hand-off.
        batches: u64,
    },
    /// Response: the request decoded but could not be served.
    ErrorReply {
        /// Human-readable cause.
        message: String,
    },
}

/// Frame kind tags. Requests are low, responses start at 16.
const KIND_SUBMIT_BATCH: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_RETARGET: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_HANDOFF: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;
const KIND_ACK: u8 = 16;
const KIND_VERDICTS: u8 = 17;
const KIND_SNAPSHOT_TEXT: u8 = 18;
const KIND_REJECT: u8 = 19;
const KIND_CHECKPOINT_BYTES: u8 = 20;
const KIND_HANDOFF_STATE: u8 = 21;
const KIND_ERROR_REPLY: u8 = 22;

impl Frame {
    /// The frame's kind tag.
    fn kind(&self) -> u8 {
        match self {
            Frame::SubmitBatch { .. } => KIND_SUBMIT_BATCH,
            Frame::Snapshot => KIND_SNAPSHOT,
            Frame::Retarget { .. } => KIND_RETARGET,
            Frame::Checkpoint => KIND_CHECKPOINT,
            Frame::Handoff => KIND_HANDOFF,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Ack => KIND_ACK,
            Frame::Verdicts { .. } => KIND_VERDICTS,
            Frame::SnapshotText { .. } => KIND_SNAPSHOT_TEXT,
            Frame::Reject { .. } => KIND_REJECT,
            Frame::CheckpointBytes { .. } => KIND_CHECKPOINT_BYTES,
            Frame::HandoffState { .. } => KIND_HANDOFF_STATE,
            Frame::ErrorReply { .. } => KIND_ERROR_REPLY,
        }
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            Frame::SubmitBatch { tenant, queries } => {
                w.u32(*tenant);
                w.u32(queries.len() as u32);
                for query in queries {
                    w.u32(query.len() as u32);
                    for &f in query {
                        w.f32(f);
                    }
                }
            }
            Frame::Snapshot | Frame::Checkpoint | Frame::Handoff | Frame::Shutdown | Frame::Ack => {
            }
            Frame::Retarget { target_error_rate } => w.f64(*target_error_rate),
            Frame::Verdicts { tenant, verdicts } => {
                w.u32(*tenant);
                w.u32(verdicts.len() as u32);
                for v in verdicts {
                    encode_verdict(w, v);
                }
            }
            Frame::SnapshotText { json } => w.string(json),
            Frame::Reject { code, queued, cap } => {
                w.u8(code.tag());
                w.u64(*queued);
                w.u64(*cap);
            }
            Frame::CheckpointBytes { bytes } => {
                w.u32(bytes.len() as u32);
                w.bytes.extend_from_slice(bytes);
            }
            Frame::HandoffState {
                checkpoint,
                verdict_checksum,
                served,
                batches,
            } => {
                w.u32(checkpoint.len() as u32);
                w.bytes.extend_from_slice(checkpoint);
                w.u64(*verdict_checksum);
                w.u64(*served);
                w.u64(*batches);
            }
            Frame::ErrorReply { message } => w.string(message),
        }
    }

    fn decode_payload(kind: u8, r: &mut Reader<'_>) -> Result<Frame, WireError> {
        Ok(match kind {
            KIND_SUBMIT_BATCH => {
                let tenant = r.u32()?;
                let count = r.u32()? as usize;
                // Each query costs at least its own 4-byte length prefix;
                // a count the remaining payload cannot hold is a lie, not
                // an allocation request.
                if count.saturating_mul(4) > r.remaining() {
                    return Err(WireError::Corrupted(format!(
                        "query count {count} exceeds the payload"
                    )));
                }
                let mut queries = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    if len.saturating_mul(4) > r.remaining() {
                        return Err(WireError::Corrupted(format!(
                            "query length {len} exceeds the payload"
                        )));
                    }
                    let mut query = Vec::with_capacity(len);
                    for _ in 0..len {
                        query.push(r.f32()?);
                    }
                    queries.push(query);
                }
                Frame::SubmitBatch { tenant, queries }
            }
            KIND_SNAPSHOT => Frame::Snapshot,
            KIND_RETARGET => Frame::Retarget {
                target_error_rate: r.f64()?,
            },
            KIND_CHECKPOINT => Frame::Checkpoint,
            KIND_HANDOFF => Frame::Handoff,
            KIND_SHUTDOWN => Frame::Shutdown,
            KIND_ACK => Frame::Ack,
            KIND_VERDICTS => {
                let tenant = r.u32()?;
                let count = r.u32()? as usize;
                // A verdict is at least 27 body bytes
                // (8 + 8 + 8 + 1 + 1 + 1).
                if count.saturating_mul(27) > r.remaining() {
                    return Err(WireError::Corrupted(format!(
                        "verdict count {count} exceeds the payload"
                    )));
                }
                let mut verdicts = Vec::with_capacity(count);
                for _ in 0..count {
                    verdicts.push(decode_verdict(r)?);
                }
                Frame::Verdicts { tenant, verdicts }
            }
            KIND_SNAPSHOT_TEXT => Frame::SnapshotText { json: r.string()? },
            KIND_REJECT => Frame::Reject {
                code: RejectCode::from_tag(r.u8()?)?,
                queued: r.u64()?,
                cap: r.u64()?,
            },
            KIND_CHECKPOINT_BYTES => {
                let len = r.u32()? as usize;
                if len > r.remaining() {
                    return Err(WireError::Corrupted(format!(
                        "checkpoint length {len} exceeds the payload"
                    )));
                }
                Frame::CheckpointBytes {
                    bytes: r.take(len)?.to_vec(),
                }
            }
            KIND_HANDOFF_STATE => {
                let len = r.u32()? as usize;
                if len > r.remaining() {
                    return Err(WireError::Corrupted(format!(
                        "checkpoint length {len} exceeds the payload"
                    )));
                }
                Frame::HandoffState {
                    checkpoint: r.take(len)?.to_vec(),
                    verdict_checksum: r.u64()?,
                    served: r.u64()?,
                    batches: r.u64()?,
                }
            }
            KIND_ERROR_REPLY => Frame::ErrorReply {
                message: r.string()?,
            },
            _ => return Err(WireError::Corrupted(format!("invalid frame kind {kind}"))),
        })
    }
}

fn encode_verdict(w: &mut Writer, v: &Verdict) {
    w.u64(v.query);
    w.u64(v.shard as u64);
    w.f64(v.score);
    w.u8(u8::from(v.label.is_malware()));
    match v.disposition {
        QueryDisposition::Served => w.u8(0),
        QueryDisposition::Rejected(RejectReason::WidthMismatch { got, expected }) => {
            w.u8(1);
            w.u64(got as u64);
            w.u64(expected as u64);
        }
        QueryDisposition::Rejected(RejectReason::NonFiniteFeature { index }) => {
            w.u8(2);
            w.u64(index as u64);
        }
    }
    match v.confidence {
        VerdictConfidence::Confident => w.u8(0),
        VerdictConfidence::Requeried { votes, positives } => {
            w.u8(1);
            w.u8(votes);
            w.u8(positives);
        }
    }
}

fn decode_verdict(r: &mut Reader<'_>) -> Result<Verdict, WireError> {
    let query = r.u64()?;
    let shard = usize::try_from(r.u64()?)
        .map_err(|_| WireError::Corrupted("shard id overflows usize".to_string()))?;
    let score = r.f64()?;
    let label = crate::detector::Label::from_bool(match r.u8()? {
        0 => false,
        1 => true,
        tag => return Err(WireError::Corrupted(format!("invalid label tag {tag}"))),
    });
    let overflow = |_| WireError::Corrupted("verdict field overflows usize".to_string());
    let disposition = match r.u8()? {
        0 => QueryDisposition::Served,
        1 => QueryDisposition::Rejected(RejectReason::WidthMismatch {
            got: usize::try_from(r.u64()?).map_err(overflow)?,
            expected: usize::try_from(r.u64()?).map_err(overflow)?,
        }),
        2 => QueryDisposition::Rejected(RejectReason::NonFiniteFeature {
            index: usize::try_from(r.u64()?).map_err(overflow)?,
        }),
        tag => {
            return Err(WireError::Corrupted(format!(
                "invalid disposition tag {tag}"
            )))
        }
    };
    let confidence = match r.u8()? {
        0 => VerdictConfidence::Confident,
        1 => VerdictConfidence::Requeried {
            votes: r.u8()?,
            positives: r.u8()?,
        },
        tag => {
            return Err(WireError::Corrupted(format!(
                "invalid confidence tag {tag}"
            )))
        }
    };
    Ok(Verdict {
        query,
        shard,
        score,
        label,
        disposition,
        confidence,
    })
}

/// Serialises one frame: [`WIRE_MAGIC`], [`WIRE_VERSION`], the kind tag,
/// a `u32` payload length, the payload, and a trailing FNV-1a checksum
/// over everything before it.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes.extend_from_slice(&WIRE_MAGIC);
    w.u16(WIRE_VERSION);
    w.u8(frame.kind());
    // Payload length back-patched once the payload is written.
    let len_at = w.bytes.len();
    w.u32(0);
    frame.encode_payload(&mut w);
    let payload_len = (w.bytes.len() - len_at - 4) as u32;
    if let Some(slot) = w.bytes.get_mut(len_at..len_at + 4) {
        slot.copy_from_slice(&payload_len.to_le_bytes());
    }
    let checksum = fnv1a(&w.bytes);
    w.u64(checksum);
    w.bytes
}

/// Decodes one frame from the front of `bytes`, returning it and the
/// number of bytes consumed (so a stream of concatenated frames decodes
/// frame by frame).
///
/// `max_frame_bytes` caps the *whole* frame. The declared length is
/// checked against it before the payload is read or any allocation made,
/// and every container inside the payload is bounds-checked against the
/// bytes actually present — a hostile length field can never cost more
/// than the cap.
///
/// # Errors
///
/// [`WireError::BadMagic`] for foreign bytes,
/// [`WireError::UnsupportedVersion`] for an unknown protocol version,
/// [`WireError::Oversized`] for a frame over the cap,
/// [`WireError::Truncated`] when the input ends early, and
/// [`WireError::Corrupted`] for checksum mismatches, invalid tags,
/// impossible lengths, or trailing payload bytes. Never panics, for any
/// input.
pub fn decode_frame(bytes: &[u8], max_frame_bytes: u32) -> Result<(Frame, usize), WireError> {
    if bytes.len() < FRAME_OVERHEAD {
        let n = bytes.len().min(WIRE_MAGIC.len());
        if bytes.get(..n) != WIRE_MAGIC.get(..n) {
            return Err(WireError::BadMagic);
        }
        return Err(WireError::Truncated);
    }
    if bytes.get(..4) != Some(&WIRE_MAGIC[..]) {
        return Err(WireError::BadMagic);
    }
    let mut header = Reader::new(bytes.get(4..).unwrap_or(&[]));
    let version = header.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = header.u8()?;
    let payload_len = header.u32()? as usize;
    let total = FRAME_OVERHEAD.saturating_add(payload_len);
    if total as u64 > u64::from(max_frame_bytes) {
        return Err(WireError::Oversized {
            declared: total as u64,
            cap: u64::from(max_frame_bytes),
        });
    }
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let Some(body) = bytes.get(..total - 8) else {
        return Err(WireError::Truncated);
    };
    let Some(stored) = bytes
        .get(total - 8..total)
        .and_then(|tail| tail.first_chunk::<8>())
    else {
        return Err(WireError::Truncated);
    };
    if fnv1a(body) != u64::from_le_bytes(*stored) {
        return Err(WireError::Corrupted("checksum mismatch".to_string()));
    }
    let mut r = Reader::new(body.get(FRAME_OVERHEAD - 8..).unwrap_or(&[]));
    let frame = Frame::decode_payload(kind, &mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Corrupted(format!(
            "{} trailing payload bytes",
            r.remaining()
        )));
    }
    Ok((frame, total))
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]
mod tests {
    use super::*;
    use crate::detector::Label;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::SubmitBatch {
                tenant: 3,
                queries: vec![vec![1.0, -2.5, 0.0], vec![f32::NAN], vec![]],
            },
            Frame::Snapshot,
            Frame::Retarget {
                target_error_rate: 0.15,
            },
            Frame::Checkpoint,
            Frame::Handoff,
            Frame::Shutdown,
            Frame::Ack,
            Frame::Verdicts {
                tenant: 9,
                verdicts: vec![
                    Verdict {
                        query: 41,
                        shard: 2,
                        score: 0.75,
                        label: Label::from_bool(true),
                        disposition: QueryDisposition::Served,
                        confidence: VerdictConfidence::Confident,
                    },
                    Verdict {
                        query: 42,
                        shard: 0,
                        score: 0.0,
                        label: Label::from_bool(false),
                        disposition: QueryDisposition::Rejected(RejectReason::WidthMismatch {
                            got: 7,
                            expected: 24,
                        }),
                        confidence: VerdictConfidence::Confident,
                    },
                    Verdict {
                        query: 43,
                        shard: 1,
                        score: 0.0,
                        label: Label::from_bool(false),
                        disposition: QueryDisposition::Rejected(RejectReason::NonFiniteFeature {
                            index: 5,
                        }),
                        confidence: VerdictConfidence::Confident,
                    },
                    Verdict {
                        query: 44,
                        shard: 3,
                        score: 0.51,
                        label: Label::from_bool(true),
                        disposition: QueryDisposition::Served,
                        confidence: VerdictConfidence::Requeried {
                            votes: 7,
                            positives: 5,
                        },
                    },
                ],
            },
            Frame::SnapshotText {
                json: "{\"queries\": 640}".to_string(),
            },
            Frame::Reject {
                code: RejectCode::Backpressure,
                queued: 8192,
                cap: 8192,
            },
            Frame::CheckpointBytes {
                bytes: vec![0x53, 0x48, 0x43, 0x4b, 1, 2, 3],
            },
            Frame::HandoffState {
                checkpoint: vec![9; 40],
                verdict_checksum: 0xdead_beef_cafe_f00d,
                served: 640,
                batches: 40,
            },
            Frame::ErrorReply {
                message: "no".to_string(),
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (back, consumed) = decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES).expect("decodes");
            assert_eq!(consumed, bytes.len());
            match (&frame, &back) {
                // NaN features break PartialEq; compare bit patterns.
                (Frame::SubmitBatch { queries: a, .. }, Frame::SubmitBatch { queries: b, .. }) => {
                    let bits = |qs: &Vec<Vec<f32>>| -> Vec<Vec<u32>> {
                        qs.iter()
                            .map(|q| q.iter().map(|f| f.to_bits()).collect())
                            .collect()
                    };
                    assert_eq!(bits(a), bits(b));
                }
                _ => assert_eq!(frame, back),
            }
        }
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let mut stream = encode_frame(&Frame::Snapshot);
        stream.extend_from_slice(&encode_frame(&Frame::Ack));
        let (first, used) = decode_frame(&stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(first, Frame::Snapshot);
        let (second, _) = decode_frame(&stream[used..], DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(second, Frame::Ack);
    }

    #[test]
    fn foreign_versioned_and_oversized_bytes_fail_typed() {
        assert_eq!(
            decode_frame(b"SHCK rest of a checkpoint...", DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::BadMagic)
        );
        assert_eq!(
            decode_frame(b"", DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::Truncated)
        );
        let mut versioned = encode_frame(&Frame::Ack);
        versioned[4] = 0x2a;
        assert_eq!(
            decode_frame(&versioned, DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::UnsupportedVersion(0x2a))
        );
        // A length-field lie far over the cap: rejected as oversized
        // before the (absent) payload is ever touched.
        let mut lying = encode_frame(&Frame::Ack);
        lying[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&lying, DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::Oversized {
                declared: FRAME_OVERHEAD as u64 + u64::from(u32::MAX),
                cap: u64::from(DEFAULT_MAX_FRAME_BYTES),
            })
        );
    }

    #[test]
    fn truncations_and_bit_flips_of_every_kind_never_panic() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                assert!(
                    decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_BYTES).is_err(),
                    "prefix {cut} of kind {} decoded",
                    frame.kind()
                );
            }
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[i] ^= 1 << bit;
                    // A flip may still decode (e.g. in a float payload the
                    // checksum also covers — no: the checksum covers all
                    // body bytes, so any body flip fails; a checksum-byte
                    // flip fails too). Either way it must not panic, and
                    // any error must be typed.
                    let _ = decode_frame(&bad, DEFAULT_MAX_FRAME_BYTES);
                }
            }
        }
    }

    #[test]
    fn container_count_lies_are_bounded_by_the_payload() {
        // Hand-build a SubmitBatch whose query count claims 2^31 entries
        // over an 8-byte payload; the checksum is valid, so the decoder
        // reaches the count check and must refuse before allocating.
        let mut w = Writer::new();
        w.bytes.extend_from_slice(&WIRE_MAGIC);
        w.u16(WIRE_VERSION);
        w.u8(1); // SubmitBatch
        w.u32(8); // payload: tenant + count
        w.u32(0); // tenant
        w.u32(1 << 31); // query count lie
        let checksum = fnv1a(&w.bytes);
        w.u64(checksum);
        match decode_frame(&w.bytes, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::Corrupted(what)) => assert!(what.contains("query count")),
            other => panic!("length lie decoded: {other:?}"),
        }
    }

    #[test]
    fn trailing_payload_bytes_are_corruption() {
        let mut w = Writer::new();
        w.bytes.extend_from_slice(&WIRE_MAGIC);
        w.u16(WIRE_VERSION);
        w.u8(16); // Ack, which has no payload
        w.u32(3);
        w.bytes.extend_from_slice(&[1, 2, 3]);
        let checksum = fnv1a(&w.bytes);
        w.u64(checksum);
        match decode_frame(&w.bytes, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::Corrupted(what)) => assert!(what.contains("trailing")),
            other => panic!("trailing bytes decoded: {other:?}"),
        }
    }
}

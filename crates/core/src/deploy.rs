//! Deployment-side detection policies.
//!
//! A deployed HMD does not classify a program once: it monitors
//! continuously, one detection per period. How the per-period verdicts
//! aggregate is a defender policy with real security/usability
//! consequences:
//!
//! - [`DetectionPolicy::Single`] — one detection, the evaluation setting of
//!   the paper's figures;
//! - [`DetectionPolicy::AnyOf`] — flag on *any* positive among k periods.
//!   Against a stochastic detector this multiplies the chance of catching
//!   an evasive sample (each period re-rolls the decision boundary) but
//!   also compounds false positives;
//! - [`DetectionPolicy::MajorityOf`] — flag on a majority of k periods:
//!   suppresses both stochastic false positives *and* most of the
//!   moving-target benefit.
//!
//! The `ablation_policy` bench binary quantifies the trade-off.

use crate::detector::{Detector, Label};
use serde::{Deserialize, Serialize};
use shmd_workload::trace::Trace;
use std::fmt;

/// How per-period verdicts combine into one decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionPolicy {
    /// One detection (the paper's evaluation setting).
    #[default]
    Single,
    /// Malware if any of `k` detections is positive.
    AnyOf(usize),
    /// Malware if more than half of `k` detections are positive.
    MajorityOf(usize),
}

impl DetectionPolicy {
    /// Number of detections the policy performs.
    pub fn detections(self) -> usize {
        match self {
            DetectionPolicy::Single => 1,
            DetectionPolicy::AnyOf(k) | DetectionPolicy::MajorityOf(k) => k.max(1),
        }
    }

    /// Applies the policy given an oracle for one detection.
    pub fn decide(self, mut detect_once: impl FnMut() -> Label) -> Label {
        match self {
            DetectionPolicy::Single => detect_once(),
            DetectionPolicy::AnyOf(k) => {
                for _ in 0..k.max(1) {
                    if detect_once().is_malware() {
                        return Label::Malware;
                    }
                }
                Label::Benign
            }
            DetectionPolicy::MajorityOf(k) => {
                let k = k.max(1);
                let needed = k / 2 + 1;
                let mut positives = 0;
                for done in 0..k {
                    if detect_once().is_malware() {
                        positives += 1;
                        if positives >= needed {
                            // Majority reached: later draws cannot undo it.
                            return Label::Malware;
                        }
                    } else if positives + (k - done - 1) < needed {
                        // Majority out of reach even if every remaining
                        // draw is positive.
                        return Label::Benign;
                    }
                }
                Label::Benign
            }
        }
    }
}

impl fmt::Display for DetectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionPolicy::Single => f.write_str("single"),
            DetectionPolicy::AnyOf(k) => write!(f, "any-of-{k}"),
            DetectionPolicy::MajorityOf(k) => write!(f, "majority-of-{k}"),
        }
    }
}

/// Wraps a detector with an aggregation policy.
///
/// The wrapper is itself a [`Detector`], and `score` is
/// *policy-consistent*: it returns the statistic whose comparison against
/// the threshold matches the policy verdict — the single score for
/// [`DetectionPolicy::Single`], the maximum of k draws for
/// [`DetectionPolicy::AnyOf`] (any draw over threshold ⇔ max over
/// threshold), and the (⌊k/2⌋+1)-th largest of k draws for
/// [`DetectionPolicy::MajorityOf`] (a strict majority over threshold ⇔
/// that order statistic over threshold). ROC curves and threshold tuning
/// built on `score` therefore describe the deployed `classify`.
#[derive(Clone, Debug)]
pub struct PolicyDetector<D> {
    inner: D,
    policy: DetectionPolicy,
    name: String,
}

impl<D: Detector> PolicyDetector<D> {
    /// Applies `policy` on top of `inner`.
    pub fn new(inner: D, policy: DetectionPolicy) -> PolicyDetector<D> {
        let name = format!("{}+{policy}", inner.name());
        PolicyDetector {
            inner,
            policy,
            name,
        }
    }

    /// The aggregation policy.
    pub fn policy(&self) -> DetectionPolicy {
        self.policy
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the detector.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: Detector> Detector for PolicyDetector<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&mut self, trace: &Trace) -> f64 {
        let k = self.policy.detections();
        let mut draws: Vec<f64> = (0..k).map(|_| self.inner.score(trace)).collect();
        draws.sort_by(f64::total_cmp);
        match self.policy {
            DetectionPolicy::Single => draws[0],
            // max ≥ t  ⇔  any draw ≥ t
            DetectionPolicy::AnyOf(_) => *draws.last().expect("k >= 1"),
            // (⌊k/2⌋+1)-th largest ≥ t  ⇔  more than half the draws ≥ t.
            // For even k that is draws[k/2 - 1], not the upper median
            // draws[k/2]: with exactly k/2 positives the verdict is benign,
            // and the upper median (a positive draw) would clear the
            // threshold anyway.
            DetectionPolicy::MajorityOf(_) => draws[k.div_ceil(2) - 1],
        }
    }

    fn classify(&mut self, trace: &Trace) -> Label {
        let inner = &mut self.inner;
        let threshold = inner.threshold();
        self.policy
            .decide(|| Label::from_bool(inner.score(trace) >= threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::StochasticHmd;
    use crate::train::{evaluate, train_baseline, HmdTrainConfig};
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use shmd_workload::isa::CATEGORY_COUNT;

    /// A detector that flags every n-th query.
    struct Periodic {
        n: usize,
        count: usize,
    }

    impl Detector for Periodic {
        fn name(&self) -> &str {
            "periodic"
        }
        fn score(&mut self, _trace: &Trace) -> f64 {
            self.count += 1;
            if self.count.is_multiple_of(self.n) {
                1.0
            } else {
                0.0
            }
        }
    }

    /// A detector whose first `positives` draws are positive, the rest
    /// negative.
    struct Burst {
        positives: usize,
        count: usize,
    }

    impl Detector for Burst {
        fn name(&self) -> &str {
            "burst"
        }
        fn score(&mut self, _trace: &Trace) -> f64 {
            self.count += 1;
            if self.count <= self.positives {
                1.0
            } else {
                0.0
            }
        }
    }

    fn dummy_trace() -> Trace {
        Trace::from_windows(vec![[1u32; CATEGORY_COUNT]])
    }

    #[test]
    fn single_is_one_detection() {
        let mut d = PolicyDetector::new(Periodic { n: 3, count: 0 }, DetectionPolicy::Single);
        assert_eq!(d.classify(&dummy_trace()), Label::Benign);
        assert_eq!(d.inner().count, 1);
    }

    #[test]
    fn any_of_catches_intermittent_positives() {
        let mut d = PolicyDetector::new(Periodic { n: 3, count: 0 }, DetectionPolicy::AnyOf(4));
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
    }

    #[test]
    fn any_of_short_circuits() {
        let mut d = PolicyDetector::new(Periodic { n: 1, count: 0 }, DetectionPolicy::AnyOf(8));
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
        assert_eq!(d.inner().count, 1, "stops at the first positive");
    }

    #[test]
    fn majority_suppresses_minority_positives() {
        // 1 positive in 3 → benign under majority.
        let mut d =
            PolicyDetector::new(Periodic { n: 3, count: 0 }, DetectionPolicy::MajorityOf(3));
        assert_eq!(d.classify(&dummy_trace()), Label::Benign);
    }

    #[test]
    fn policy_display() {
        assert_eq!(DetectionPolicy::AnyOf(4).to_string(), "any-of-4");
        assert_eq!(DetectionPolicy::MajorityOf(3).to_string(), "majority-of-3");
        assert_eq!(DetectionPolicy::Single.to_string(), "single");
    }

    #[test]
    fn zero_k_behaves_as_one() {
        assert_eq!(DetectionPolicy::AnyOf(0).detections(), 1);
        assert_eq!(DetectionPolicy::MajorityOf(0).detections(), 1);
    }

    #[test]
    fn even_k_majority_score_matches_classify() {
        // Regression: with exactly k/2 positives among k draws there is no
        // strict majority, so classify() says benign — and score() must
        // not clear the threshold either. The old upper-median indexing
        // (draws[k/2]) returned a positive draw here.
        let mut d =
            PolicyDetector::new(Periodic { n: 2, count: 0 }, DetectionPolicy::MajorityOf(4));
        let s = d.score(&dummy_trace());
        assert_eq!(s, 0.0, "2-of-4 is not a majority; score must stay low");
        let mut d =
            PolicyDetector::new(Periodic { n: 2, count: 0 }, DetectionPolicy::MajorityOf(4));
        assert_eq!(d.classify(&dummy_trace()), Label::Benign);

        // 3-of-4 is a majority: both views must flip together.
        let mut d = PolicyDetector::new(
            Burst {
                positives: 3,
                count: 0,
            },
            DetectionPolicy::MajorityOf(4),
        );
        let s = d.score(&dummy_trace());
        assert_eq!(s, 1.0, "3-of-4 is a majority; score must surface it");
        let mut d = PolicyDetector::new(
            Burst {
                positives: 3,
                count: 0,
            },
            DetectionPolicy::MajorityOf(4),
        );
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
    }

    #[test]
    fn majority_short_circuits_once_decided() {
        // All positive: ⌊5/2⌋+1 = 3 draws settle majority-of-5.
        let mut d = PolicyDetector::new(
            Burst {
                positives: usize::MAX,
                count: 0,
            },
            DetectionPolicy::MajorityOf(5),
        );
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
        assert_eq!(d.inner().count, 3, "stops once the majority is reached");

        // All negative: after 3 misses a majority of 5 is out of reach.
        let mut d = PolicyDetector::new(
            Periodic {
                n: usize::MAX,
                count: 0,
            },
            DetectionPolicy::MajorityOf(5),
        );
        assert_eq!(d.classify(&dummy_trace()), Label::Benign);
        assert_eq!(d.inner().count, 3, "stops once the majority is unreachable");

        // Even k: after 2 misses a 3-of-4 majority is out of reach.
        let mut d = PolicyDetector::new(
            Periodic {
                n: usize::MAX,
                count: 0,
            },
            DetectionPolicy::MajorityOf(4),
        );
        assert_eq!(d.classify(&dummy_trace()), Label::Benign);
        assert_eq!(d.inner().count, 2);
    }

    #[test]
    fn score_is_policy_consistent_for_any_of() {
        // Regression: score() must be the statistic whose thresholding
        // matches classify() — for any-of-k that is the max of k draws.
        let mut d = PolicyDetector::new(Periodic { n: 4, count: 0 }, DetectionPolicy::AnyOf(4));
        let s = d.score(&dummy_trace());
        assert_eq!(s, 1.0, "one positive among 4 draws must surface in score");
        let mut d = PolicyDetector::new(Periodic { n: 4, count: 0 }, DetectionPolicy::AnyOf(4));
        assert_eq!(d.classify(&dummy_trace()), Label::Malware);
    }

    #[test]
    fn any_of_raises_fpr_majority_contains_it() {
        // End to end on a real stochastic detector: any-of-k amplifies the
        // stochastic FPR, majority-of-k keeps it near the single-shot FPR.
        let dataset = Dataset::generate(&DatasetConfig::small(100), 31);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let make = |seed| StochasticHmd::from_baseline(&baseline, 0.3, seed).expect("valid");

        let mut single = PolicyDetector::new(make(1), DetectionPolicy::Single);
        let mut any4 = PolicyDetector::new(make(1), DetectionPolicy::AnyOf(4));
        let mut maj5 = PolicyDetector::new(make(1), DetectionPolicy::MajorityOf(5));

        let fpr_single = evaluate(&mut single, &dataset, split.testing()).false_positive_rate();
        let fpr_any = evaluate(&mut any4, &dataset, split.testing()).false_positive_rate();
        let fpr_maj = evaluate(&mut maj5, &dataset, split.testing()).false_positive_rate();
        assert!(
            fpr_any >= fpr_single,
            "any-of amplifies FPR: {fpr_any} vs {fpr_single}"
        );
        assert!(
            fpr_maj <= fpr_any,
            "majority contains FPR: {fpr_maj} vs {fpr_any}"
        );
    }
}

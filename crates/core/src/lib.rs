//! Stochastic-HMDs: adversarial-resilient hardware malware detectors via
//! undervolting (DAC 2023).
//!
//! This crate is the paper's primary contribution. It provides:
//!
//! - [`detector::Detector`] — the common interface of all HMDs: score an
//!   execution trace, classify it as malware or benign;
//! - [`baseline::BaselineHmd`] — the unprotected neural-network HMD
//!   (FANN-style MLP over instruction-category features);
//! - [`stochastic::StochasticHmd`] — the defense: the *same* trained model
//!   inferred on an undervolted datapath, so every multiplication may fault
//!   stochastically. No retraining, no model changes, no extra hardware —
//!   only a supply-voltage offset;
//! - [`rhmd::Rhmd`] — the state-of-the-art comparison defense (RHMD,
//!   MICRO 2017): random switching among diverse base detectors;
//! - [`train`] — training pipelines and the 3-fold cross-validation
//!   harness;
//! - [`explore`] — the §VI space exploration: accuracy and
//!   confidence-distribution sweeps over the error rate;
//! - [`exec`] — the deterministic parallel experiment engine: fans task
//!   grids across threads with per-task derived seeds, so results are
//!   bit-identical at any thread count;
//! - [`serve`] — the sharded continuous-monitoring service: a pool of
//!   Stochastic-HMD replicas answering a query stream with deterministic
//!   fan-out and graceful degradation to the baseline when calibration
//!   fails;
//! - [`supervisor`] — the robustness layer around [`serve`]: per-shard
//!   health states, a delivered-error-rate watchdog, seeded chaos plans,
//!   and deterministic recovery schedules;
//! - [`telemetry`] — the serving layer's export surface: per-shard
//!   counters, score histograms, fault statistics, and a JSON-round-trip
//!   snapshot;
//! - [`checkpoint`] — crash consistency: versioned binary service
//!   checkpoints plus a write-ahead state journal, so a killed monitor
//!   restores and resumes its verdict stream bit-identically;
//! - [`wire`] — the daemon's length-prefixed binary wire protocol:
//!   hostile bytes (truncations, bit flips, length-field lies) decode to
//!   typed errors, never a panic, never an over-allocation;
//! - [`daemon`] — the always-on deployment: admission control (bounded
//!   queue, tenant quotas, hang deadlines) in front of the service, plus
//!   the zero-downtime rolling-upgrade state machine
//!   (drain → checkpoint → hand-off → checksum-verified resume);
//! - [`arena`] — the adaptive-attacker arena: the live service behind
//!   the black-box [`detector::Detector`] interface with a query-cost
//!   meter, so denoising/transfer attacks drive the deployed stack
//!   rather than a bare detector.
//!
//! # Example
//!
//! ```
//! use shmd_workload::dataset::{Dataset, DatasetConfig};
//! use shmd_workload::features::FeatureSpec;
//! use stochastic_hmd::detector::Detector;
//! use stochastic_hmd::stochastic::StochasticHmd;
//! use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
//!
//! let dataset = Dataset::generate(&DatasetConfig::small(60), 1);
//! let split = dataset.three_fold_split(0);
//! let baseline = train_baseline(
//!     &dataset,
//!     split.victim_training(),
//!     FeatureSpec::frequency(),
//!     &HmdTrainConfig::fast(),
//! )?;
//! // Protect it: 10% error rate, the paper's selected operating point.
//! let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 42)?;
//! let verdict = protected.classify(dataset.trace(split.testing()[0]));
//! println!("{verdict}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod baseline;
pub mod checkpoint;
pub(crate) mod codec;
pub mod daemon;
pub mod deploy;
pub mod detector;
pub mod enclave;
pub mod exec;
pub mod explore;
pub mod monitor;
pub mod rhmd;
pub mod roc;
pub mod serve;
pub mod stochastic;
pub mod supervisor;
pub mod telemetry;
pub mod train;
pub mod wire;
pub mod xval;

pub use arena::ArenaOracle;
pub use baseline::BaselineHmd;
pub use checkpoint::{
    BatchCommit, CheckpointError, JournalRecovery, RestoreError, ServiceCheckpoint, StateJournal,
};
pub use daemon::{
    AdmissionConfig, AdmissionStats, Daemon, DaemonPhase, HandoffError, HANDOFF_FRAME_CAP,
};
pub use deploy::{DetectionPolicy, PolicyDetector};
pub use detector::{Detector, Label};
pub use enclave::{DetectionEnclave, EnclaveError};
pub use exec::{derive_seed, mix_seed, parallel_map, parallel_map_n, ExecConfig};
pub use monitor::{monitor_all, monitor_trace, MonitorOutcome, MonitorReport};
pub use rhmd::{Rhmd, RhmdConstruction};
pub use roc::{RocCurve, RocError, RocPoint};
pub use serve::{
    MonitoringService, QueryDisposition, RejectReason, RequeryConfig, ServeConfig, ServeError,
    Verdict, VerdictConfidence, MAX_REQUERY_REPLICAS,
};
pub use stochastic::StochasticHmd;
pub use supervisor::{
    ChaosEvent, ChaosPlan, ShardHealth, SupervisionRecord, Supervisor, SupervisorConfig,
};
pub use telemetry::{
    FaultCounters, ScoreHistogram, ShardReport, TelemetryParseError, TelemetrySnapshot,
};
pub use train::{train_baseline, HmdTrainConfig, TrainHmdError};
pub use wire::{
    decode_frame, encode_frame, Frame, RejectCode, WireError, DEFAULT_MAX_FRAME_BYTES,
    FRAME_OVERHEAD, WIRE_MAGIC, WIRE_VERSION,
};
pub use xval::{cross_validate, XvalSummary};

//! ROC analysis and decision-threshold tuning.
//!
//! The paper's detectors threshold at 0.5, but a deployed HMD is tuned to
//! an FPR budget ("the security product may flag at most x% of benign
//! software"). This module computes ROC curves over a detector's scores and
//! picks the threshold meeting such a budget — including for stochastic
//! detectors, whose ROC is itself an expectation over fault draws.

use crate::detector::Detector;
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use std::fmt;

/// One operating point of a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold producing this point.
    pub threshold: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
    /// True-positive rate (detection rate) at the threshold.
    pub tpr: f64,
}

/// Error computing a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RocError {
    /// The evaluation set lacks one of the classes.
    MissingClass,
}

impl fmt::Display for RocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RocError::MissingClass => f.write_str("ROC needs at least one sample of each class"),
        }
    }
}

impl std::error::Error for RocError {}

/// A ROC curve: points sorted by increasing FPR.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Computes the curve from one detection score per program index.
    ///
    /// # Errors
    ///
    /// Returns [`RocError::MissingClass`] when `indices` holds only one
    /// class.
    pub fn from_scores(scores: &[(f64, bool)]) -> Result<RocCurve, RocError> {
        let positives = scores.iter().filter(|(_, y)| *y).count();
        let negatives = scores.len() - positives;
        if positives == 0 || negatives == 0 {
            return Err(RocError::MissingClass);
        }
        // Sweep thresholds at every distinct score (descending).
        let mut sorted: Vec<(f64, bool)> = scores.to_vec();
        sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < sorted.len() {
            let threshold = sorted[i].0;
            // Consume all samples tied at this score.
            while i < sorted.len() && sorted[i].0 == threshold {
                if sorted[i].1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                fpr: fp as f64 / negatives as f64,
                tpr: tp as f64 / positives as f64,
            });
        }
        Ok(RocCurve { points })
    }

    /// Scores every index with `detector` (one stochastic detection each)
    /// and computes the curve.
    ///
    /// # Errors
    ///
    /// Returns [`RocError::MissingClass`] when `indices` holds only one
    /// class.
    pub fn from_detector(
        detector: &mut dyn Detector,
        dataset: &Dataset,
        indices: &[usize],
    ) -> Result<RocCurve, RocError> {
        let scores: Vec<(f64, bool)> = indices
            .iter()
            .map(|&i| {
                (
                    detector.score(dataset.trace(i)),
                    dataset.program(i).is_malware(),
                )
            })
            .collect();
        RocCurve::from_scores(&scores)
    }

    /// The curve's points, FPR-ascending.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve (trapezoidal).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            area += (pair[1].fpr - pair[0].fpr) * (pair[0].tpr + pair[1].tpr) / 2.0;
        }
        area
    }

    /// The highest-TPR operating point whose FPR is within `budget`.
    pub fn threshold_for_fpr(&self, budget: f64) -> RocPoint {
        self.points
            .iter()
            .rev()
            .find(|p| p.fpr <= budget)
            .copied()
            .unwrap_or(self.points[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::StochasticHmd;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let roc = RocCurve::from_scores(&scores).expect("computes");
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_have_auc_near_half() {
        let scores: Vec<(f64, bool)> = (0..200)
            .map(|i| (f64::from(i % 10) / 10.0, i % 2 == 0))
            .collect();
        let roc = RocCurve::from_scores(&scores).expect("computes");
        assert!((roc.auc() - 0.5).abs() < 0.1, "auc {}", roc.auc());
    }

    #[test]
    fn inverted_scores_have_low_auc() {
        let scores = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        let roc = RocCurve::from_scores(&scores).expect("computes");
        assert!(roc.auc() < 0.1);
    }

    #[test]
    fn missing_class_errors() {
        assert_eq!(
            RocCurve::from_scores(&[(0.5, true)]),
            Err(RocError::MissingClass)
        );
    }

    #[test]
    fn threshold_respects_fpr_budget() {
        let scores = [
            (0.95, true),
            (0.9, true),
            (0.6, false),
            (0.55, true),
            (0.2, false),
            (0.1, false),
        ];
        let roc = RocCurve::from_scores(&scores).expect("computes");
        let point = roc.threshold_for_fpr(0.0);
        assert_eq!(point.fpr, 0.0);
        assert!((point.tpr - 2.0 / 3.0).abs() < 1e-12, "{point:?}");
        let looser = roc.threshold_for_fpr(0.4);
        assert!(looser.tpr >= point.tpr);
    }

    #[test]
    fn endpoints_are_correct() {
        let scores = [(0.9, true), (0.1, false)];
        let roc = RocCurve::from_scores(&scores).expect("computes");
        let first = roc.points().first().expect("non-empty");
        let last = roc.points().last().expect("non-empty");
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn stochastic_detector_keeps_high_auc_at_operating_point() {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 13);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let mut protected = StochasticHmd::from_baseline(&baseline, 0.1, 3).expect("valid");
        let roc =
            RocCurve::from_detector(&mut protected, &dataset, split.testing()).expect("computes");
        assert!(roc.auc() > 0.9, "stochastic AUC {}", roc.auc());
    }
}

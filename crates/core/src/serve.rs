//! Sharded continuous monitoring: serving a query stream at scale.
//!
//! The paper deploys a Stochastic-HMD as a *continuous* monitor — one
//! detection per period, voltage control owned by the TEE (§IX). A single
//! detector replica caps throughput at one inference at a time, so a
//! production deployment shards the stream across a pool of
//! [`StochasticHmd`] replicas, one per core the defender dedicates to
//! monitoring. [`MonitoringService`] is that pool:
//!
//! - **per-shard seeds** come from [`crate::exec::derive_seed`] over the
//!   master seed, the shard index and the calibration generation, so
//!   replicas draw statistically independent fault streams and the whole
//!   service replays bit-for-bit from one seed;
//! - **deterministic fan-out**: queries are assigned to shards by their
//!   position in the stream (`index mod shards`), workers claim *shards*
//!   (never queries) from a [`std::thread::scope`] pool, and each batch's
//!   verdicts are merged back into stream order — so serial and N-thread
//!   execution produce bit-identical verdicts, scores, and telemetry, as
//!   in [`crate::exec`];
//! - **graceful degradation**: when calibration cannot deliver the target
//!   error rate for a shard (device freezes first, re-calibration fails
//!   mid-stream), the shard falls back to the *baseline* detector at
//!   nominal voltage and the [`crate::telemetry`] layer records the
//!   degradation — the service keeps answering instead of aborting, it
//!   just loses the moving-target defense on that shard until a later
//!   [`MonitoringService::recalibrate`] succeeds.
//!
//! The `serve_bench` binary replays a generated dataset through this
//! engine and records throughput plus the thread-invariance checksum in
//! `BENCH_3.json`; the `monitoring_service` example walks the API.

use crate::baseline::BaselineHmd;
use crate::deploy::DetectionPolicy;
use crate::detector::{Detector, Label};
use crate::exec::{derive_seed, parallel_map_n, ExecConfig};
use crate::stochastic::StochasticHmd;
use crate::telemetry::{FaultCounters, ScoreHistogram, ShardReport, TelemetrySnapshot};
use shmd_volt::calibration::CalibrationCurve;
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Experiment tag mixed into every shard-seed derivation, so a service and
/// an experiment sharing a master seed never share RNG streams.
const SERVE_TAG: u64 = 0x5e7e;

/// Number of recent per-batch latencies retained for telemetry. A
/// continuous monitor runs indefinitely, so latency history is a sliding
/// window — older batches age out instead of growing without bound.
pub const BATCH_LATENCY_WINDOW: usize = 1024;

/// Configuration of a [`MonitoringService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of detector replicas (shards). Clamped to at least 1.
    pub shards: usize,
    /// Maximum queries per batch when streaming. Clamped to at least 1.
    pub batch_size: usize,
    /// Multiplication error rate each shard's calibration targets.
    pub target_error_rate: f64,
    /// Per-query verdict aggregation policy.
    pub policy: DetectionPolicy,
    /// Master seed; every shard seed is derived from it.
    pub seed: u64,
    /// Worker pool for batch processing. Affects wall-clock only, never
    /// results.
    pub exec: ExecConfig,
}

impl ServeConfig {
    /// A service of `shards` replicas at the paper's er = 0.1 operating
    /// point: batches of 64, single-detection policy, seed 42, auto
    /// thread count.
    pub fn new(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            batch_size: 64,
            target_error_rate: 0.1,
            policy: DetectionPolicy::Single,
            seed: 42,
            exec: ExecConfig::auto(),
        }
    }

    /// Sets the calibration target error rate.
    #[must_use]
    pub fn with_target_error_rate(mut self, er: f64) -> ServeConfig {
        self.target_error_rate = er;
        self
    }

    /// Sets the verdict aggregation policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DetectionPolicy) -> ServeConfig {
        self.policy = policy;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ServeConfig {
        self.seed = seed;
        self
    }

    /// Sets the streaming batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> ServeConfig {
        self.batch_size = batch_size;
        self
    }

    /// Sets the worker pool configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> ServeConfig {
        self.exec = exec;
        self
    }
}

/// One answered query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Position of the query in the service's lifetime stream (0-based).
    pub query: u64,
    /// Shard that answered it.
    pub shard: usize,
    /// Policy-consistent score (the statistic whose thresholding matches
    /// the verdict — see [`crate::deploy::PolicyDetector`]).
    pub score: f64,
    /// The verdict.
    pub label: Label,
}

/// A shard's detector: the protected replica, or the baseline fallback
/// when calibration could not deliver the target error rate.
enum ShardBackend {
    Stochastic(Box<StochasticHmd>),
    /// Degraded: nominal voltage, no moving target — but still serving.
    Baseline(BaselineHmd),
}

impl ShardBackend {
    fn score_features(&mut self, features: &[f32]) -> f64 {
        match self {
            ShardBackend::Stochastic(hmd) => hmd.score_features(features),
            ShardBackend::Baseline(hmd) => hmd.score_features(features),
        }
    }

    fn threshold(&self) -> f64 {
        match self {
            ShardBackend::Stochastic(hmd) => Detector::threshold(hmd.as_ref()),
            ShardBackend::Baseline(hmd) => Detector::threshold(hmd),
        }
    }
}

/// One detector replica plus its telemetry counters.
struct Shard {
    id: usize,
    seed: u64,
    backend: ShardBackend,
    degraded_reason: Option<String>,
    degradation_events: u64,
    queries: u64,
    flags: u64,
    /// Fault counters folded from injector generations already replaced
    /// by recalibration (the live injector's stats are folded on demand).
    retired_faults: FaultCounters,
    histogram: ScoreHistogram,
    /// Reusable per-query draw buffer (k draws under the policy).
    draws: Vec<f64>,
}

impl Shard {
    /// Scores one query under the policy and records telemetry.
    ///
    /// All `k` detections are always performed so the score is the full
    /// order statistic; the verdict is its thresholding, which by
    /// policy-consistency equals the sequential `decide` outcome.
    fn answer(&mut self, policy: DetectionPolicy, features: &[f32]) -> (f64, Label) {
        let k = policy.detections();
        self.draws.clear();
        for _ in 0..k {
            self.draws.push(self.backend.score_features(features));
        }
        self.draws.sort_by(f64::total_cmp);
        let score = match policy {
            DetectionPolicy::Single => self.draws[0],
            DetectionPolicy::AnyOf(_) => self.draws[k - 1],
            DetectionPolicy::MajorityOf(_) => self.draws[k.div_ceil(2) - 1],
        };
        let label = Label::from_bool(score >= self.backend.threshold());
        self.queries += 1;
        if label.is_malware() {
            self.flags += 1;
        }
        self.histogram.record(score);
        (score, label)
    }

    /// Current fault counters: retired generations plus the live injector.
    fn fault_counters(&self) -> FaultCounters {
        let mut counters = self.retired_faults;
        if let ShardBackend::Stochastic(hmd) = &self.backend {
            counters.fold(&hmd.fault_stats());
        }
        counters
    }

    /// Folds the live injector's stats into the retired counters (called
    /// before the backend is replaced).
    fn retire_backend(&mut self) {
        if let ShardBackend::Stochastic(hmd) = &self.backend {
            self.retired_faults.fold(&hmd.fault_stats());
        }
    }

    fn report(&self) -> ShardReport {
        ShardReport {
            shard: self.id,
            seed: self.seed,
            degraded: matches!(self.backend, ShardBackend::Baseline(_)),
            degraded_reason: self.degraded_reason.clone(),
            queries: self.queries,
            flags: self.flags,
            faults: self.fault_counters(),
            histogram: self.histogram.clone(),
        }
    }
}

/// A sharded continuous-monitoring service over Stochastic-HMD replicas.
///
/// See the [module docs](crate::serve) for the design; the short version:
/// deterministic sharding by stream position, per-shard derived seeds,
/// parallel batch processing with bit-identical output at any thread
/// count, and per-shard degradation to the baseline detector when
/// calibration fails.
pub struct MonitoringService {
    spec: FeatureSpec,
    policy: DetectionPolicy,
    target_error_rate: f64,
    seed: u64,
    batch_size: usize,
    exec: ExecConfig,
    /// Calibration generation: bumped by every [`MonitoringService::recalibrate`]
    /// so rebuilt shards draw fresh fault streams.
    generation: u64,
    shards: Vec<Mutex<Shard>>,
    served: u64,
    batches: u64,
    verdict_checksum: u64,
    /// Sliding window of the last [`BATCH_LATENCY_WINDOW`] batch latencies.
    batch_latency_micros: VecDeque<u64>,
}

impl MonitoringService {
    /// Deploys `config.shards` replicas of `baseline` protected at
    /// `config.target_error_rate` on the device described by `curve`.
    ///
    /// Deployment is infallible by design: a shard whose calibration
    /// cannot deliver the target error rate (e.g. the device freezes
    /// before reaching it) degrades to the baseline detector and the
    /// degradation is recorded in telemetry, instead of failing the whole
    /// service.
    pub fn deploy(
        baseline: &BaselineHmd,
        curve: &CalibrationCurve,
        config: ServeConfig,
    ) -> MonitoringService {
        let mut service = MonitoringService {
            spec: baseline.spec(),
            policy: config.policy,
            target_error_rate: config.target_error_rate,
            seed: config.seed,
            batch_size: config.batch_size.max(1),
            exec: config.exec,
            generation: 0,
            shards: Vec::new(),
            served: 0,
            batches: 0,
            verdict_checksum: 0,
            batch_latency_micros: VecDeque::new(),
        };
        for id in 0..config.shards.max(1) {
            let shard = service.build_shard(id, baseline, curve);
            service.shards.push(Mutex::new(shard));
        }
        service
    }

    /// Builds one shard for the current generation, degrading to the
    /// baseline on calibration failure.
    fn build_shard(&self, id: usize, baseline: &BaselineHmd, curve: &CalibrationCurve) -> Shard {
        let seed = derive_seed(self.seed, &[SERVE_TAG, id as u64, self.generation]);
        let (backend, degraded_reason, degradation) =
            match Self::protected_backend(baseline, curve, self.target_error_rate, seed) {
                Ok(hmd) => (ShardBackend::Stochastic(Box::new(hmd)), None, 0),
                Err(reason) => (ShardBackend::Baseline(baseline.clone()), Some(reason), 1),
            };
        Shard {
            id,
            seed,
            backend,
            degraded_reason,
            degradation_events: degradation,
            queries: 0,
            flags: 0,
            retired_faults: FaultCounters::default(),
            histogram: ScoreHistogram::new(),
            draws: Vec::new(),
        }
    }

    /// Attempts the full calibration chain for one shard: target error
    /// rate → undervolt offset → fault model → protected detector.
    fn protected_backend(
        baseline: &BaselineHmd,
        curve: &CalibrationCurve,
        target_er: f64,
        seed: u64,
    ) -> Result<StochasticHmd, String> {
        let offset = curve
            .offset_for_error_rate(target_er)
            .map_err(|e| format!("calibration failed: {e}"))?;
        StochasticHmd::at_offset(baseline, curve, offset, seed)
            .map_err(|e| format!("fault model failed: {e}"))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Queries served over the service's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The deployed policy.
    pub fn policy(&self) -> DetectionPolicy {
        self.policy
    }

    /// Changes the calibration target for subsequent
    /// [`MonitoringService::recalibrate`] calls (e.g. the operator trades
    /// accuracy for robustness at runtime). Live shards keep their current
    /// fault models until the next recalibration.
    pub fn retarget(&mut self, target_error_rate: f64) {
        self.target_error_rate = target_error_rate;
    }

    /// Rebuilds every shard's detector against `curve` (a fresh
    /// calibration: temperature drifted, device aged, target changed).
    ///
    /// Each shard draws a new generation seed, so recalibration never
    /// replays old fault streams. Shards whose calibration fails fall
    /// back to the baseline detector — and previously degraded shards
    /// recover when the new calibration succeeds. Returns the number of
    /// shards left degraded.
    pub fn recalibrate(&mut self, baseline: &BaselineHmd, curve: &CalibrationCurve) -> usize {
        self.generation += 1;
        let mut degraded = 0;
        for slot in &mut self.shards {
            let shard = slot.get_mut().expect("shard mutex poisoned");
            shard.retire_backend();
            shard.seed = derive_seed(self.seed, &[SERVE_TAG, shard.id as u64, self.generation]);
            match Self::protected_backend(baseline, curve, self.target_error_rate, shard.seed) {
                Ok(hmd) => {
                    shard.backend = ShardBackend::Stochastic(Box::new(hmd));
                    shard.degraded_reason = None;
                }
                Err(reason) => {
                    shard.backend = ShardBackend::Baseline(baseline.clone());
                    shard.degraded_reason = Some(reason);
                    shard.degradation_events += 1;
                    degraded += 1;
                }
            }
        }
        degraded
    }

    /// Scores one batch of queries across the shard pool, returning
    /// verdicts in query order.
    ///
    /// Query `i` of the batch goes to shard `(served + i) mod shards` —
    /// a function of the stream position only, never of scheduling — and
    /// each worker claims whole shards, so every shard consumes its
    /// queries in stream order and the output is bit-identical at any
    /// thread count.
    pub fn process_batch(&mut self, queries: &[&Trace]) -> Vec<Verdict> {
        let start = Instant::now();
        let features: Vec<Vec<f32>> = queries.iter().map(|t| self.spec.extract(t)).collect();
        let n_shards = self.shards.len();
        let base = self.served;
        let policy = self.policy;
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for i in 0..queries.len() {
            assignments[((base + i as u64) % n_shards as u64) as usize].push(i);
        }
        let shards = &self.shards;
        let features_ref = &features;
        let assignments_ref = &assignments;
        let per_shard: Vec<Vec<(usize, f64, Label)>> = parallel_map_n(&self.exec, n_shards, |s| {
            // Each shard is claimed by exactly one task, so the lock is
            // uncontended; it exists to hand the worker `&mut` access.
            let mut shard = shards[s].lock().expect("shard mutex poisoned");
            assignments_ref[s]
                .iter()
                .map(|&i| {
                    let (score, label) = shard.answer(policy, &features_ref[i]);
                    (i, score, label)
                })
                .collect()
        });
        let mut verdicts: Vec<Option<Verdict>> = vec![None; queries.len()];
        for (s, answers) in per_shard.into_iter().enumerate() {
            for (i, score, label) in answers {
                verdicts[i] = Some(Verdict {
                    query: base + i as u64,
                    shard: s,
                    score,
                    label,
                });
            }
        }
        let verdicts: Vec<Verdict> = verdicts
            .into_iter()
            .map(|v| v.expect("every query is assigned to exactly one shard"))
            .collect();
        for v in &verdicts {
            self.verdict_checksum = self.verdict_checksum.rotate_left(7)
                ^ v.score.to_bits()
                ^ u64::from(v.label.is_malware());
        }
        self.served += queries.len() as u64;
        self.batches += 1;
        if self.batch_latency_micros.len() == BATCH_LATENCY_WINDOW {
            self.batch_latency_micros.pop_front();
        }
        self.batch_latency_micros
            .push_back(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        verdicts
    }

    /// Replays a query stream in batches of the configured size.
    pub fn process_stream(&mut self, queries: &[&Trace]) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(self.batch_size) {
            verdicts.extend(self.process_batch(chunk));
        }
        verdicts
    }

    /// Snapshots the service-wide telemetry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards: Vec<ShardReport> = self
            .shards
            .iter()
            .map(|slot| slot.lock().expect("shard mutex poisoned").report())
            .collect();
        TelemetrySnapshot {
            seed: self.seed,
            policy: self.policy.to_string(),
            batches: self.batches,
            queries: self.served,
            flags: shards.iter().map(|s| s.flags).sum(),
            degradation_events: self
                .shards
                .iter()
                .map(|slot| {
                    slot.lock()
                        .expect("shard mutex poisoned")
                        .degradation_events
                })
                .sum(),
            verdict_checksum: self.verdict_checksum,
            shards,
            batch_latency_micros: self.batch_latency_micros.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_volt::calibration::{Calibrator, DeviceProfile};
    use shmd_workload::dataset::{Dataset, DatasetConfig};

    fn setup() -> (Dataset, BaselineHmd, CalibrationCurve) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 77);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        (dataset, baseline, curve)
    }

    fn stream(dataset: &Dataset, n: usize) -> Vec<&Trace> {
        (0..n).map(|i| dataset.trace(i % dataset.len())).collect()
    }

    #[test]
    fn service_answers_every_query_in_order() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(1));
        let queries = stream(&dataset, 50);
        let verdicts = service.process_stream(&queries);
        assert_eq!(verdicts.len(), 50);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.query, i as u64);
            assert_eq!(v.shard, i % 3);
        }
        assert_eq!(service.served(), 50);
    }

    #[test]
    fn serial_and_threaded_streams_are_bit_identical() {
        let (dataset, baseline, curve) = setup();
        let queries = stream(&dataset, 100);
        let run = |threads: ExecConfig| {
            let config = ServeConfig::new(4)
                .with_seed(9)
                .with_batch_size(16)
                .with_exec(threads);
            let mut service = MonitoringService::deploy(&baseline, &curve, config);
            let verdicts = service.process_stream(&queries);
            (verdicts, service.snapshot().without_timing())
        };
        let (serial_verdicts, serial_snapshot) = run(ExecConfig::serial());
        for threads in [2, 4, 8] {
            let (verdicts, snapshot) = run(ExecConfig::threads(threads));
            assert_eq!(
                verdicts, serial_verdicts,
                "verdict stream differs at {threads} threads"
            );
            assert_eq!(
                snapshot, serial_snapshot,
                "telemetry differs at {threads} threads"
            );
        }
    }

    #[test]
    fn service_detects_malware_through_the_pool() {
        let (dataset, baseline, curve) = setup();
        let split = dataset.three_fold_split(0);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(4).with_seed(3));
        let queries: Vec<&Trace> = split.testing().iter().map(|&i| dataset.trace(i)).collect();
        let verdicts = service.process_stream(&queries);
        let correct = verdicts
            .iter()
            .zip(split.testing())
            .filter(|(v, &i)| v.label.is_malware() == dataset.program(i).is_malware())
            .count();
        let accuracy = correct as f64 / verdicts.len() as f64;
        assert!(accuracy > 0.85, "pool accuracy {accuracy}");
    }

    #[test]
    fn shards_draw_independent_fault_streams() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(4).with_seed(5));
        // Same trace to every shard: scores must not be a single repeated
        // value across shards (each replica rolls its own boundary).
        let queries: Vec<&Trace> = (0..40).map(|_| dataset.trace(0)).collect();
        let verdicts = service.process_stream(&queries);
        let distinct: std::collections::HashSet<u64> =
            verdicts.iter().map(|v| v.score.to_bits()).collect();
        assert!(
            distinct.len() > 1,
            "shard replicas produced one deterministic stream"
        );
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 0);
        assert!(
            snapshot.total_faults().multiplies > 0,
            "telemetry must fold injector stats"
        );
    }

    #[test]
    fn unreachable_target_degrades_to_baseline_and_keeps_serving() {
        let (dataset, baseline, curve) = setup();
        // FREEZE_ERROR_RATE = 0.5: no device reaches er = 0.9.
        let config = ServeConfig::new(3).with_target_error_rate(0.9).with_seed(2);
        let mut service = MonitoringService::deploy(&baseline, &curve, config);
        let queries = stream(&dataset, 30);
        let verdicts = service.process_stream(&queries);
        // Degraded shards serve the deterministic baseline.
        for (i, v) in verdicts.iter().enumerate() {
            let expected = baseline.score_features(&baseline.spec().extract(queries[i]));
            assert_eq!(v.score, expected, "degraded shard must serve the baseline");
        }
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 3);
        assert_eq!(snapshot.degradation_events, 3);
        for shard in &snapshot.shards {
            assert!(shard.degraded);
            let reason = shard.degraded_reason.as_deref().expect("reason recorded");
            assert!(reason.contains("unreachable"), "got {reason}");
        }
    }

    #[test]
    fn recalibration_recovers_and_degrades_shards() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(4));
        assert_eq!(service.snapshot().degraded_shards(), 0);
        let queries = stream(&dataset, 20);
        service.process_stream(&queries);
        let faults_before = service.snapshot().total_faults();

        // Mid-stream the operator retargets to an unreachable rate: the
        // next recalibration degrades every shard, but serving continues
        // and the folded fault counters survive the backend swap.
        service.retarget(0.95);
        assert_eq!(service.recalibrate(&baseline, &curve), 2);
        service.process_stream(&queries);
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 2);
        assert_eq!(snapshot.degradation_events, 2);
        assert_eq!(
            snapshot.total_faults(),
            faults_before,
            "retired injector stats must survive degradation"
        );

        // Back to a reachable target: the shards recover.
        service.retarget(0.1);
        assert_eq!(service.recalibrate(&baseline, &curve), 0);
        let recovered = service.snapshot();
        assert_eq!(recovered.degraded_shards(), 0);
        assert_eq!(recovered.degradation_events, 2, "history is cumulative");
        assert!(recovered.shards.iter().all(|s| s.degraded_reason.is_none()));
    }

    #[test]
    fn policy_consistent_scores_match_verdicts() {
        let (dataset, baseline, curve) = setup();
        let config = ServeConfig::new(2)
            .with_policy(DetectionPolicy::MajorityOf(4))
            .with_seed(6);
        let mut service = MonitoringService::deploy(&baseline, &curve, config);
        let queries = stream(&dataset, 40);
        let threshold = Detector::threshold(&baseline);
        for v in service.process_stream(&queries) {
            assert_eq!(
                v.label.is_malware(),
                v.score >= threshold,
                "score/verdict inconsistent under majority-of-4"
            );
        }
    }

    #[test]
    fn snapshot_json_round_trips_from_a_live_service() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(8));
        service.process_stream(&stream(&dataset, 25));
        let snapshot = service.snapshot();
        let back = TelemetrySnapshot::from_json(&snapshot.to_json()).expect("parses");
        assert_eq!(back, snapshot);
        assert_eq!(back.queries, 25);
        assert_eq!(back.batch_latency_micros.len() as u64, back.batches);
    }

    #[test]
    fn batch_latency_history_is_a_bounded_window() {
        let (dataset, baseline, curve) = setup();
        let config = ServeConfig::new(2).with_seed(11).with_batch_size(1);
        let mut service = MonitoringService::deploy(&baseline, &curve, config);
        let queries = stream(&dataset, BATCH_LATENCY_WINDOW + 10);
        service.process_stream(&queries);
        let snapshot = service.snapshot();
        assert_eq!(snapshot.batches, (BATCH_LATENCY_WINDOW + 10) as u64);
        assert_eq!(
            snapshot.batch_latency_micros.len(),
            BATCH_LATENCY_WINDOW,
            "latency history must age out instead of growing unboundedly"
        );
    }
}

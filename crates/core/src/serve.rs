//! Sharded continuous monitoring: serving a query stream at scale.
//!
//! The paper deploys a Stochastic-HMD as a *continuous* monitor — one
//! detection per period, voltage control owned by the TEE (§IX). A single
//! detector replica caps throughput at one inference at a time, so a
//! production deployment shards the stream across a pool of
//! [`StochasticHmd`] replicas, one per core the defender dedicates to
//! monitoring. [`MonitoringService`] is that pool:
//!
//! - **per-query seeds** come from [`crate::exec::derive_seed`] twice
//!   over: the master seed, shard index, and calibration generation yield
//!   a shard seed, and the shard seed plus the query's lifetime stream
//!   position yield the seed of that query's fault stream. Every verdict
//!   is therefore a pure function of (shard state at the batch boundary,
//!   stream position) — replicas draw statistically independent fault
//!   streams, the whole service replays bit-for-bit from one seed, and
//!   queries within a batch are embarrassingly parallel. Restarting a
//!   fresh geometric fault stream per query preserves the exact
//!   Bernoulli(er)-per-multiplication law because the geometric
//!   inter-fault gap is memoryless;
//! - **lock-free fan-out**: queries are assigned to shards by their
//!   position in the stream (`index mod shards`, re-routed to the serving
//!   set by the same arithmetic when a shard is quarantined). Workers
//!   claim contiguous *query ranges* from a shared atomic cursor — the
//!   task-claim idiom of [`crate::exec`] — scoring against shared `&`
//!   shard state with thread-local scratch, fault streams, and telemetry
//!   accumulators; no worker ever takes a lock or mutates a shard.
//!   Verdict ranges are stitched back into stream order at the batch
//!   boundary and per-shard telemetry deltas (additive, order-independent)
//!   fold on the main thread, so serial and N-thread execution produce
//!   bit-identical verdicts, scores, checksums, and telemetry;
//! - **ingestion validation**: a query whose feature width mismatches the
//!   deployed model, or whose features are NaN/infinite, is *rejected* at
//!   the door with a [`QueryDisposition::Rejected`] verdict instead of
//!   panicking inside a worker — one poison query costs exactly one
//!   verdict, never the shard;
//! - **graceful degradation**: when calibration cannot deliver the target
//!   error rate for a shard (device freezes first, re-calibration fails
//!   mid-stream), the shard falls back to the *baseline* detector at
//!   nominal voltage and the [`crate::telemetry`] layer records the
//!   degradation — the service keeps answering instead of aborting, it
//!   just loses the moving-target defense on that shard until a later
//!   [`MonitoringService::recalibrate`] succeeds;
//! - **supervision** ([`MonitoringService::supervised`]): a deployment
//!   under a [`Supervisor`] steps a thermal world model
//!   ([`shmd_volt::environment`]) plus an optional seeded
//!   [`crate::supervisor::ChaosPlan`] at every supervision point — a
//!   shard whose operating point crosses the freeze threshold *crashes*
//!   and is quarantined (traffic re-routed, deterministic retries with
//!   exponential backoff, restart under a fresh generation seed), and a
//!   watchdog compares the online delivered-error-rate estimate against
//!   its post-calibration reference to trigger recalibration on drift.
//!   Supervision cost is amortized over a configurable cadence
//!   ([`SupervisorConfig::supervision_cadence`], default every batch):
//!   at each point the supervisor processes the scripted-kill window
//!   accumulated since the previous point, so no chaos event is lost.
//!   All supervision runs on the main thread as a function of the batch
//!   index, so chaos runs replay bit-identically at any thread count.
//!
//! The `serve_bench` binary replays a generated dataset through this
//! engine and records throughput plus the thread-invariance checksum in
//! `BENCH_3.json`; `chaos_bench` drives a supervised pool through a
//! scripted crash/drift schedule into `BENCH_4.json`; the
//! `monitoring_service` and `chaos_recovery` examples walk the APIs.

// The ingest path takes bytes-derived feature vectors from outside the
// process (see `crate::daemon`): no unwrap/expect may survive here.
// Unchecked indexing *is* used on internally-constructed buffers (range
// claims, shard vectors) where the index is arithmetic over lengths this
// module itself established — see DESIGN.md §14 for why the indexing
// gate is scoped to the byte-decoding modules instead.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::baseline::BaselineHmd;
use crate::checkpoint::{
    BackendCheckpoint, BatchCommit, RestoreError, ServiceCheckpoint, ShardCheckpoint, StateJournal,
    SupervisorCheckpoint,
};
use crate::deploy::DetectionPolicy;
use crate::detector::{Detector, Label};
use crate::exec::{derive_seed, parallel_map_n, ExecConfig};
use crate::stochastic::StochasticHmd;
use crate::supervisor::{
    retry_backoff, ShardHealth, SupervisionRecord, Supervisor, SupervisorConfig,
};
use crate::telemetry::{FaultCounters, ScoreHistogram, ShardReport, TelemetrySnapshot};
use shmd_ann::network::{BatchScratch, InferenceScratch};
use shmd_ml::anomaly::AnomalyScorer;
use shmd_power::cmos::CmosPowerModel;
use shmd_power::latency::LatencyModel;
use shmd_volt::calibration::{CalibrationCurve, CalibrationError};
use shmd_volt::controller::{ControllerAction, ControllerState};
use shmd_volt::environment::{deepest_safe_offset, delivered_error_rate_at};
use shmd_volt::fault::{BatchFaultStream, FaultStream};
use shmd_volt::multiplier::FREEZE_ERROR_RATE;
use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Experiment tag mixed into every shard-seed derivation, so a service and
/// an experiment sharing a master seed never share RNG streams.
const SERVE_TAG: u64 = 0x5e7e;

/// Tag mixed into every per-query fault-stream seed derivation (over the
/// shard seed and the query's stream position), so query streams never
/// collide with shard-level derivations.
const QUERY_TAG: u64 = 0x09e4;

/// Tag mixed into every re-query fault-stream seed derivation (over the
/// shard seed and the query's stream position), so ensemble re-query
/// draws never overlap the primary scoring stream at the same position.
const REQUERY_TAG: u64 = 0x7e9e;

/// Smallest query range a worker claims from the batch cursor. Claims
/// below this would spend more time on the atomic than on inference.
const MIN_CLAIM: usize = 32;

/// Folded into the verdict checksum in place of a score for rejected
/// queries, so a rejection perturbs the checksum distinctly from any
/// served verdict.
const REJECTED_QUERY_MARK: u64 = 0x07e1_ec7e_dbad_feed;

/// Number of recent per-batch latencies retained for telemetry. A
/// continuous monitor runs indefinitely, so latency history is a sliding
/// window — older batches age out instead of growing without bound.
pub const BATCH_LATENCY_WINDOW: usize = 1024;

/// Widest lane width the batched structure-of-arrays inference path
/// supports. [`ServeConfig::lanes`] is clamped into `1..=MAX_LANES` at
/// deployment.
pub const MAX_LANES: usize = 16;

/// Default batched-inference lane width: eight `i64` accumulator lanes
/// keep the inner MAC loop inside a couple of cache lines while amortizing
/// one weight load (and one fault-gap countdown sweep) across eight
/// queries.
pub const DEFAULT_LANES: usize = 8;

/// Most ensemble replicas one re-query will ever draw.
/// [`RequeryConfig::replicas`] is clamped into `1..=MAX_REQUERY_REPLICAS`
/// wherever it is consumed, which keeps the vote tally inside a `u8`
/// (1 primary + replicas + optional anomaly vote ≤ 252) and bounds the
/// worst-case inference amplification a mis-set config can cause.
pub const MAX_REQUERY_REPLICAS: usize = 250;

/// Uncertainty-aware re-query policy: verdicts whose policy-consistent
/// score lands within `band` of the decision threshold are re-scored by a
/// small ensemble — `replicas` fresh stochastic draws on a dedicated
/// re-query fault stream, plus the service's installed anomaly scorer
/// when one is present (see
/// [`MonitoringService::install_anomaly_scorer`]) — and the final label
/// is the strict majority of all votes.
///
/// The re-query stream is seeded from `(shard seed, `[`REQUERY_TAG`]`,
/// stream position)`, so the whole mechanism stays a pure function of
/// seeds: serial and N-thread runs, scalar and lane-batched paths, and
/// checkpoint/restore all produce bit-identical re-queried verdicts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequeryConfig {
    /// Half-width of the confidence band around the decision threshold.
    /// Scores with `|score - threshold| <= band` trigger a re-query;
    /// `band <= 0` disables re-query in all but name.
    pub band: f64,
    /// Fresh stochastic draws per re-query, clamped into
    /// `1..=`[`MAX_REQUERY_REPLICAS`] at use.
    pub replicas: usize,
}

impl RequeryConfig {
    /// A re-query policy with `band` around the threshold and the given
    /// replica count.
    pub fn new(band: f64, replicas: usize) -> RequeryConfig {
        RequeryConfig { band, replicas }
    }

    /// The replica count actually used: clamped into
    /// `1..=`[`MAX_REQUERY_REPLICAS`].
    pub fn effective_replicas(&self) -> usize {
        self.replicas.clamp(1, MAX_REQUERY_REPLICAS)
    }
}

/// Configuration of a [`MonitoringService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of detector replicas (shards). Clamped to at least 1.
    pub shards: usize,
    /// Maximum queries per batch when streaming. Clamped to at least 1.
    pub batch_size: usize,
    /// Multiplication error rate each shard's calibration targets. Must be
    /// a finite probability below 1 ([`ServeError::InvalidTargetErrorRate`]).
    pub target_error_rate: f64,
    /// Per-query verdict aggregation policy.
    pub policy: DetectionPolicy,
    /// Master seed; every shard seed is derived from it.
    pub seed: u64,
    /// Worker pool for batch processing. Affects wall-clock only, never
    /// results.
    pub exec: ExecConfig,
    /// Lane width of the batched structure-of-arrays inference path: how
    /// many same-shard queries one worker scores simultaneously. Clamped
    /// to `1..=`[`MAX_LANES`] at deployment; width 1 selects the scalar
    /// path. Like [`ServeConfig::exec`], this affects wall-clock only,
    /// never results — every lane's fault stream is seeded per query
    /// exactly as the scalar path seeds it.
    pub lanes: usize,
    /// Uncertainty-aware re-query policy. `None` (the default) answers
    /// every query from its primary draws alone; `Some` re-scores
    /// borderline verdicts across an ensemble (see [`RequeryConfig`]).
    pub requery: Option<RequeryConfig>,
}

impl ServeConfig {
    /// A service of `shards` replicas at the paper's er = 0.1 operating
    /// point: batches of 1024, single-detection policy, seed 42, auto
    /// thread count. The batch is the parallelism *and* supervision
    /// granularity — workers claim query ranges inside it, and the
    /// supervisor only runs between batches — so the default is sized to
    /// amortize both.
    pub fn new(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            batch_size: 1024,
            target_error_rate: 0.1,
            policy: DetectionPolicy::Single,
            seed: 42,
            exec: ExecConfig::auto(),
            lanes: DEFAULT_LANES,
            requery: None,
        }
    }

    /// Sets the calibration target error rate.
    #[must_use]
    pub fn with_target_error_rate(mut self, er: f64) -> ServeConfig {
        self.target_error_rate = er;
        self
    }

    /// Sets the verdict aggregation policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DetectionPolicy) -> ServeConfig {
        self.policy = policy;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ServeConfig {
        self.seed = seed;
        self
    }

    /// Sets the streaming batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> ServeConfig {
        self.batch_size = batch_size;
        self
    }

    /// Sets the worker pool configuration.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> ServeConfig {
        self.exec = exec;
        self
    }

    /// Sets the batched-inference lane width (clamped to
    /// `1..=`[`MAX_LANES`] at deployment; 1 selects the scalar path).
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> ServeConfig {
        self.lanes = lanes;
        self
    }

    /// Enables uncertainty-aware re-query of borderline verdicts.
    #[must_use]
    pub fn with_requery(mut self, requery: RequeryConfig) -> ServeConfig {
        self.requery = Some(requery);
        self
    }
}

/// Error deploying or reconfiguring a [`MonitoringService`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServeError {
    /// `target_error_rate` is NaN, negative, or ≥ 1 — not a rate any
    /// calibration can deliver. Caught at [`MonitoringService::deploy`]
    /// instead of deep inside a shard's calibration chain.
    InvalidTargetErrorRate(f64),
    /// Supervisor construction failed to calibrate the configured device.
    Calibration(CalibrationError),
    /// An anomaly scorer's fitted feature width does not match the
    /// deployed model's input layer
    /// ([`MonitoringService::install_anomaly_scorer`]).
    AnomalyDimMismatch {
        /// Width the scorer was fitted on.
        got: usize,
        /// Width the deployed model expects.
        expected: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidTargetErrorRate(er) => {
                write!(f, "target error rate {er} is not a probability below 1")
            }
            ServeError::Calibration(e) => write!(f, "supervisor calibration failed: {e}"),
            ServeError::AnomalyDimMismatch { got, expected } => {
                write!(
                    f,
                    "anomaly scorer width {got} does not match model input {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CalibrationError> for ServeError {
    fn from(e: CalibrationError) -> ServeError {
        ServeError::Calibration(e)
    }
}

/// Why a query was rejected at ingestion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The feature vector's width does not match the deployed model's
    /// input layer.
    WidthMismatch {
        /// Width of the offending query.
        got: usize,
        /// Width the deployed model expects.
        expected: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Index of the first offending feature.
        index: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::WidthMismatch { got, expected } => {
                write!(
                    f,
                    "feature width {got} does not match model input {expected}"
                )
            }
            RejectReason::NonFiniteFeature { index } => {
                write!(f, "feature {index} is not finite")
            }
        }
    }
}

/// Whether a verdict came from a detector or from ingestion validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryDisposition {
    /// A shard scored the query.
    Served,
    /// Ingestion validation rejected the query before it reached any
    /// shard; the score is 0 and the label benign by convention.
    Rejected(RejectReason),
}

/// How sure the service is about a verdict, and whether the
/// uncertainty-aware ensemble re-queried it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictConfidence {
    /// The primary score sat outside the configured confidence band (or
    /// re-query is disabled): the verdict is the plain thresholding of
    /// the policy-consistent score.
    Confident,
    /// The primary score landed inside the confidence band; the label is
    /// the strict majority over the re-query ensemble (ties resolve
    /// benign). The score field still reports the *primary* order
    /// statistic, so re-query can flip `label` relative to
    /// `score >= threshold`.
    Requeried {
        /// Total votes cast: 1 primary + replicas + 1 if an anomaly
        /// scorer is installed.
        votes: u8,
        /// Votes that said malware.
        positives: u8,
    },
}

impl VerdictConfidence {
    /// Whether the verdict went through ensemble re-query.
    pub fn is_requeried(&self) -> bool {
        matches!(self, VerdictConfidence::Requeried { .. })
    }
}

/// One answered query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Position of the query in the service's lifetime stream (0-based).
    pub query: u64,
    /// Shard that answered it (for a rejected query: the shard it would
    /// have been routed to).
    pub shard: usize,
    /// Policy-consistent score (the statistic whose thresholding matches
    /// the verdict — see [`crate::deploy::PolicyDetector`]).
    pub score: f64,
    /// The verdict.
    pub label: Label,
    /// Served by a detector, or rejected at ingestion.
    pub disposition: QueryDisposition,
    /// Confident primary verdict, or re-queried across the ensemble.
    pub confidence: VerdictConfidence,
}

impl Verdict {
    /// Whether ingestion validation rejected this query.
    pub fn is_rejected(&self) -> bool {
        matches!(self.disposition, QueryDisposition::Rejected(_))
    }

    /// Whether the uncertainty-aware ensemble re-queried this verdict.
    pub fn is_requeried(&self) -> bool {
        self.confidence.is_requeried()
    }
}

/// A shard's detector: the protected replica, the baseline fallback when
/// calibration could not deliver the target error rate, or nothing at all
/// while the shard is crashed.
enum ShardBackend {
    Stochastic(Box<StochasticHmd>),
    /// Degraded: nominal voltage, no moving target — but still serving.
    Baseline(BaselineHmd),
    /// Crashed: the core is hung. The shard is out of the serving set and
    /// receives no queries until the supervisor restarts it.
    Down,
}

/// A shard's backend as seen from inside the parallel region: shared
/// references only, so any number of workers can score against it
/// concurrently without locks.
#[derive(Clone, Copy)]
enum BackendView<'a> {
    Stochastic(&'a StochasticHmd),
    Baseline(&'a BaselineHmd),
    Down,
}

/// The immutable slice of one shard a batch's workers score against. All
/// mutable shard state (counters, histogram, fault totals) stays on the
/// main thread and is updated from the workers' additive
/// [`ShardDelta`]s at the batch boundary.
#[derive(Clone, Copy)]
struct ShardView<'a> {
    seed: u64,
    backend: BackendView<'a>,
    /// Service-wide re-query policy (`None` = re-query disabled).
    requery: Option<RequeryConfig>,
    /// Service-wide anomaly scorer, voting in every re-query when
    /// installed.
    anomaly: Option<&'a AnomalyScorer>,
}

impl ShardView<'_> {
    /// Resolves a stochastic shard's primary `(score, threshold)` into a
    /// final label: a confident thresholding outside the band, or a
    /// strict-majority vote over the re-query ensemble inside it.
    ///
    /// The ensemble draws `replicas` fresh scores from a fault stream
    /// seeded by `(shard seed, REQUERY_TAG, position)` — disjoint from
    /// the primary QUERY_TAG stream, but equally a pure function of the
    /// stream position — and adds the anomaly scorer's vote when one is
    /// installed. Ties resolve benign (strict majority), matching the
    /// service's bias toward false negatives over alert floods at the
    /// boundary.
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        hmd: &StochasticHmd,
        position: u64,
        features: &[f32],
        score: f64,
        threshold: f64,
        scratch: &mut InferenceScratch,
        delta: &mut ShardDelta,
    ) -> (Label, VerdictConfidence) {
        let primary = score >= threshold;
        let Some(cfg) = self.requery else {
            return (Label::from_bool(primary), VerdictConfidence::Confident);
        };
        // `<=` so a NaN score (never in-band) stays on the confident path.
        let in_band = (score - threshold).abs() <= cfg.band;
        if !in_band {
            return (Label::from_bool(primary), VerdictConfidence::Confident);
        }
        let replicas = cfg.effective_replicas();
        delta.band_hits += 1;
        delta.requeries += replicas as u64;
        let seed = derive_seed(self.seed, &[REQUERY_TAG, position]);
        let mut stream = FaultStream::new(hmd.fault_model(), seed);
        let mut votes: u8 = 1;
        let mut positives = u8::from(primary);
        for _ in 0..replicas {
            let replica = hmd.score_features_with(features, &mut stream, scratch);
            votes += 1;
            positives += u8::from(replica >= threshold);
        }
        delta.faults.fold(&stream.stats());
        if let Some(anomaly) = self.anomaly {
            votes += 1;
            positives += u8::from(anomaly.is_anomalous(features));
        }
        let label = Label::from_bool(2 * u16::from(positives) > u16::from(votes));
        (label, VerdictConfidence::Requeried { votes, positives })
    }
    /// Scores one query under the policy, accumulating telemetry into the
    /// worker-local `delta`.
    ///
    /// The query's fault stream is seeded from the shard seed and the
    /// query's lifetime stream position, shared across all `k` policy
    /// draws — so the verdict depends only on (shard state, position),
    /// never on which worker claimed the range or what was scored before.
    /// All `k` detections are always performed so the score is the full
    /// order statistic; the verdict is its thresholding, which by
    /// policy-consistency equals the sequential `decide` outcome.
    fn answer(
        &self,
        policy: DetectionPolicy,
        position: u64,
        features: &[f32],
        scratch: &mut InferenceScratch,
        draws: &mut Vec<f64>,
        delta: &mut ShardDelta,
    ) -> (f64, Label, VerdictConfidence) {
        let k = policy.detections();
        let (score, label, confidence) = match self.backend {
            BackendView::Stochastic(hmd) => {
                let seed = derive_seed(self.seed, &[QUERY_TAG, position]);
                let mut stream = FaultStream::new(hmd.fault_model(), seed);
                draws.clear();
                for _ in 0..k {
                    draws.push(hmd.score_features_with(features, &mut stream, scratch));
                }
                delta.faults.fold(&stream.stats());
                draws.sort_by(f64::total_cmp);
                let score = match policy {
                    DetectionPolicy::Single => draws[0],
                    DetectionPolicy::AnyOf(_) => draws[k - 1],
                    DetectionPolicy::MajorityOf(_) => draws[k.div_ceil(2) - 1],
                };
                let threshold = Detector::threshold(hmd);
                let (label, confidence) =
                    self.resolve(hmd, position, features, score, threshold, scratch, delta);
                (score, label, confidence)
            }
            // The baseline is deterministic: all k draws are one value, so
            // every policy order statistic equals the single score — and
            // re-querying it would only re-produce that value, so the
            // baseline never enters the ensemble.
            BackendView::Baseline(hmd) => {
                let score = hmd.score_features(features);
                let label = Label::from_bool(score >= Detector::threshold(hmd));
                (score, label, VerdictConfidence::Confident)
            }
            BackendView::Down => unreachable!("crashed shard received a query"),
        };
        delta.queries += 1;
        if label.is_malware() {
            delta.flags += 1;
        }
        delta.histogram.record(score);
        (score, label, confidence)
    }

    /// Scores `LANES` same-shard stochastic queries simultaneously: one
    /// structure-of-arrays forward pass per policy draw, telemetry
    /// accumulated into `delta`.
    ///
    /// Lane `l`'s fault stream uses exactly the scalar per-query seed
    /// derivation (`derive_seed(shard_seed, [QUERY_TAG, position])`), one
    /// [`BatchFaultStream`] is shared across all `k` policy draws exactly
    /// as the scalar path shares one [`FaultStream`], and the batched
    /// datapath advances each lane in the same per-multiplication order
    /// as a scalar inference — so every lane's score, label, and fault
    /// stats are bit-identical to [`ShardView::answer`] at the same
    /// position. Batching rearranges wall-clock, never semantics — a lane
    /// whose score lands in the confidence band re-queries through the
    /// same scalar [`ShardView::resolve`] path (`requery_scratch`), on a
    /// stream seeded by its own position.
    #[allow(clippy::too_many_arguments)]
    fn answer_block<const LANES: usize>(
        &self,
        policy: DetectionPolicy,
        positions: &[u64; LANES],
        features: &[&[f32]; LANES],
        scratch: &mut BatchScratch<LANES>,
        requery_scratch: &mut InferenceScratch,
        lane_draws: &mut Vec<f64>,
        delta: &mut ShardDelta,
    ) -> [(f64, Label, VerdictConfidence); LANES] {
        let BackendView::Stochastic(hmd) = self.backend else {
            unreachable!("answer_block is only dispatched to stochastic shards")
        };
        let k = policy.detections();
        let seeds: [u64; LANES] =
            std::array::from_fn(|l| derive_seed(self.seed, &[QUERY_TAG, positions[l]]));
        let mut stream = BatchFaultStream::new(hmd.fault_model(), seeds);
        lane_draws.clear();
        lane_draws.resize(k * LANES, 0.0);
        for d in 0..k {
            let plane = hmd.score_features_batch_with(features, &mut stream, scratch);
            for (l, score) in plane.into_iter().enumerate() {
                lane_draws[l * k + d] = score;
            }
        }
        for l in 0..LANES {
            delta.faults.fold_tally(&stream.tally(l));
        }
        let threshold = Detector::threshold(hmd);
        std::array::from_fn(|l| {
            let draws = &mut lane_draws[l * k..(l + 1) * k];
            draws.sort_by(f64::total_cmp);
            let score = match policy {
                DetectionPolicy::Single => draws[0],
                DetectionPolicy::AnyOf(_) => draws[k - 1],
                DetectionPolicy::MajorityOf(_) => draws[k.div_ceil(2) - 1],
            };
            let (label, confidence) = self.resolve(
                hmd,
                positions[l],
                features[l],
                score,
                threshold,
                requery_scratch,
                delta,
            );
            delta.queries += 1;
            if label.is_malware() {
                delta.flags += 1;
            }
            delta.histogram.record(score);
            (score, label, confidence)
        })
    }
}

/// One worker's accumulated telemetry for one shard over the ranges it
/// claimed this batch. Every field is additive and order-independent, so
/// deltas from any number of workers fold to the same shard totals.
#[derive(Clone, Default)]
struct ShardDelta {
    queries: u64,
    flags: u64,
    /// Verdicts whose primary score landed inside the confidence band.
    band_hits: u64,
    /// Ensemble replica draws spent on re-queries.
    requeries: u64,
    faults: FaultCounters,
    histogram: ScoreHistogram,
}

impl ShardDelta {
    fn is_empty(&self) -> bool {
        self.queries == 0
    }
}

/// One detector replica plus its telemetry counters.
struct Shard {
    id: usize,
    seed: u64,
    /// Calibration generation: bumped on every backend rebuild
    /// (recalibration or supervised restart) so the shard never replays an
    /// old fault stream.
    generation: u64,
    backend: ShardBackend,
    supervision: SupervisionRecord,
    degraded_reason: Option<String>,
    degradation_events: u64,
    queries: u64,
    flags: u64,
    /// Verdicts whose primary score landed inside the re-query confidence
    /// band (0 while re-query is disabled).
    band_hits: u64,
    /// Cumulative ensemble replica draws spent on re-queries.
    requeries: u64,
    /// Re-query count energy has been accrued up to. Like
    /// `energy_accounted`, not checkpointed: at any batch boundary it
    /// equals `requeries`.
    requeries_accounted: u64,
    /// Fault counters folded at every batch boundary from the per-query
    /// fault streams (and, historically, from injector generations retired
    /// by recalibration — the name survives for checkpoint compatibility).
    retired_faults: FaultCounters,
    histogram: ScoreHistogram,
    /// Cumulative detection energy, microjoules — accrued on the main
    /// thread at every batch boundary from the query-count delta, the
    /// modelled per-detection latency, and the busy core power at the
    /// shard's live offset. A deterministic function of the query stream
    /// (see DESIGN.md §13).
    energy_uj: f64,
    /// Shard query count energy has been accrued up to. Not checkpointed:
    /// accrual runs inside every batch, so at any checkpoint boundary it
    /// equals `queries`.
    energy_accounted: u64,
    /// Busy core power (watts) at the last energy accrual.
    last_power_w: Option<f64>,
    /// The power scheduler's current error-rate target for this shard
    /// (`None` until a budget policy first touches it).
    power_target_er: Option<f64>,
    /// Shard query count at the last power-scheduling tick — the window
    /// base for the scheduler's per-shard load estimate.
    power_window_queries: u64,
}

impl Shard {
    /// The immutable view a batch's workers score against. The re-query
    /// policy and anomaly scorer are service-wide and ride in on every
    /// view.
    fn view<'a>(
        &'a self,
        requery: Option<RequeryConfig>,
        anomaly: Option<&'a AnomalyScorer>,
    ) -> ShardView<'a> {
        ShardView {
            seed: self.seed,
            backend: match &self.backend {
                ShardBackend::Stochastic(hmd) => BackendView::Stochastic(hmd),
                ShardBackend::Baseline(hmd) => BackendView::Baseline(hmd),
                ShardBackend::Down => BackendView::Down,
            },
            requery,
            anomaly,
        }
    }

    /// Folds one worker's per-batch telemetry delta into the shard.
    fn fold_delta(&mut self, delta: &ShardDelta) {
        self.queries += delta.queries;
        self.flags += delta.flags;
        self.band_hits += delta.band_hits;
        self.requeries += delta.requeries;
        self.retired_faults.merge(&delta.faults);
        self.histogram.merge(&delta.histogram);
    }

    /// Current fault counters: every batch boundary folds the per-query
    /// streams into `retired_faults`, and the shard-level injector (kept
    /// for checkpoint compatibility; it never corrupts a product itself)
    /// contributes its statistics — zero in steady state.
    fn fault_counters(&self) -> FaultCounters {
        let mut counters = self.retired_faults;
        if let ShardBackend::Stochastic(hmd) = &self.backend {
            counters.fold(&hmd.fault_stats());
        }
        counters
    }

    /// Folds the live injector's stats into the retired counters (called
    /// before the backend is replaced).
    fn retire_backend(&mut self) {
        if let ShardBackend::Stochastic(hmd) = &self.backend {
            self.retired_faults.fold(&hmd.fault_stats());
        }
    }

    fn report(&self) -> ShardReport {
        ShardReport {
            shard: self.id,
            seed: self.seed,
            degraded: matches!(self.backend, ShardBackend::Baseline(_)),
            degraded_reason: self.degraded_reason.clone(),
            health: self.supervision.health(),
            transitions: self.supervision.transitions(),
            crashes: self.supervision.crashes(),
            drift_events: self.supervision.drift_events(),
            retries: self.supervision.retries(),
            queries: self.queries,
            flags: self.flags,
            band_hits: self.band_hits,
            requeries: self.requeries,
            faults: self.fault_counters(),
            histogram: self.histogram.clone(),
            energy_uj: self.energy_uj,
            power_w: self.last_power_w,
            power_target_er: self.power_target_er,
        }
    }
}

/// Validates one query's features against the deployed model.
fn validate_features(features: &[f32], expected: usize) -> Result<(), RejectReason> {
    if features.len() != expected {
        return Err(RejectReason::WidthMismatch {
            got: features.len(),
            expected,
        });
    }
    if let Some(index) = features.iter().position(|f| !f.is_finite()) {
        return Err(RejectReason::NonFiniteFeature { index });
    }
    Ok(())
}

/// Everything a batch worker needs from the main thread, by shared
/// reference: the claim cursor, the query slice, the immutable shard
/// views, and the routing tables. Bundled so the per-width monomorphized
/// worker ([`batch_worker`]) has one parameter instead of ten.
struct BatchCtx<'a> {
    cursor: &'a AtomicUsize,
    features: &'a [Vec<f32>],
    views: &'a [ShardView<'a>],
    mask: &'a [bool],
    serving: &'a [usize],
    n: usize,
    n_shards: usize,
    chunk: usize,
    base: u64,
    policy: DetectionPolicy,
    input_dim: usize,
}

/// One worker's claim loop at compile-time lane width `LANES`.
///
/// Width 1 degenerates to the original scalar worker: nothing is grouped
/// and every query is answered in stream order. At wider widths each
/// claimed range is answered in three stages — rejects and
/// baseline/degraded queries scalar in place, stochastic queries grouped
/// by target shard and scored in lane blocks of `LANES` via
/// [`ShardView::answer_block`], and per-shard remainders scalar. Results
/// are written into slot-indexed positions of the range, so the verdict
/// vector (and therefore stitching and the running checksum) is oblivious
/// to the regrouping; and because per-query fault streams are seeded by
/// stream position, the verdicts themselves are bit-identical at every
/// width.
fn batch_worker<const LANES: usize>(
    ctx: &BatchCtx<'_>,
) -> (Vec<(usize, Vec<Verdict>)>, Vec<ShardDelta>) {
    let mut ranges: Vec<(usize, Vec<Verdict>)> = Vec::new();
    let mut deltas: Vec<ShardDelta> = vec![ShardDelta::default(); ctx.n_shards];
    let mut scratch = InferenceScratch::new();
    let mut draws: Vec<f64> = Vec::new();
    let mut batch_scratch = BatchScratch::<LANES>::new();
    let mut lane_draws: Vec<f64> = Vec::new();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ctx.n_shards];
    loop {
        let lo = ctx.cursor.fetch_add(ctx.chunk, Ordering::Relaxed);
        if lo >= ctx.n {
            break;
        }
        let hi = (lo + ctx.chunk).min(ctx.n);
        let mut out: Vec<Option<Verdict>> = vec![None; hi - lo];
        for group in &mut groups {
            group.clear();
        }
        for (i, query) in ctx.features[lo..hi].iter().enumerate() {
            let position = ctx.base + (lo + i) as u64;
            let home = (position % ctx.n_shards as u64) as usize;
            let target = if ctx.mask[home] {
                home
            } else {
                // Deterministic re-route around quarantined shards: still
                // a function of the stream position only.
                ctx.serving[(position % ctx.serving.len() as u64) as usize]
            };
            match validate_features(query, ctx.input_dim) {
                Ok(()) => {
                    if LANES > 1 && matches!(ctx.views[target].backend, BackendView::Stochastic(_))
                    {
                        groups[target].push(i);
                    } else {
                        let (score, label, confidence) = ctx.views[target].answer(
                            ctx.policy,
                            position,
                            query,
                            &mut scratch,
                            &mut draws,
                            &mut deltas[target],
                        );
                        out[i] = Some(Verdict {
                            query: position,
                            shard: target,
                            score,
                            label,
                            disposition: QueryDisposition::Served,
                            confidence,
                        });
                    }
                }
                Err(reason) => {
                    out[i] = Some(Verdict {
                        query: position,
                        shard: target,
                        score: 0.0,
                        label: Label::from_bool(false),
                        disposition: QueryDisposition::Rejected(reason),
                        confidence: VerdictConfidence::Confident,
                    });
                }
            }
        }
        for (target, group) in groups.iter().enumerate() {
            let mut blocks = group.chunks_exact(LANES);
            for block in blocks.by_ref() {
                let positions: [u64; LANES] =
                    std::array::from_fn(|l| ctx.base + (lo + block[l]) as u64);
                let lane_features: [&[f32]; LANES] =
                    std::array::from_fn(|l| ctx.features[lo + block[l]].as_slice());
                let answers = ctx.views[target].answer_block::<LANES>(
                    ctx.policy,
                    &positions,
                    &lane_features,
                    &mut batch_scratch,
                    &mut scratch,
                    &mut lane_draws,
                    &mut deltas[target],
                );
                for (l, (score, label, confidence)) in answers.into_iter().enumerate() {
                    out[block[l]] = Some(Verdict {
                        query: positions[l],
                        shard: target,
                        score,
                        label,
                        disposition: QueryDisposition::Served,
                        confidence,
                    });
                }
            }
            for &i in blocks.remainder() {
                let position = ctx.base + (lo + i) as u64;
                let (score, label, confidence) = ctx.views[target].answer(
                    ctx.policy,
                    position,
                    &ctx.features[lo + i],
                    &mut scratch,
                    &mut draws,
                    &mut deltas[target],
                );
                out[i] = Some(Verdict {
                    query: position,
                    shard: target,
                    score,
                    label,
                    disposition: QueryDisposition::Served,
                    confidence,
                });
            }
        }
        // Both ingestion arms fill their slot and the lane pass covers
        // every grouped index (chunks + remainder), so no slot is None;
        // flatten keeps the path panic-free and the debug assert keeps
        // the invariant honest under test.
        let answered: Vec<Verdict> = out.into_iter().flatten().collect();
        debug_assert_eq!(answered.len(), hi - lo, "unanswered query in claimed range");
        ranges.push((lo, answered));
    }
    (ranges, deltas)
}

/// Swaps a shard onto a freshly calibrated stochastic backend under a new
/// generation seed. Returns `false` (leaving the shard untouched) when the
/// fault model cannot be built at the offset.
fn restart_shard(
    shard: &mut Shard,
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    offset: Millivolts,
    master_seed: u64,
) -> bool {
    let generation = shard.generation + 1;
    let seed = derive_seed(master_seed, &[SERVE_TAG, shard.id as u64, generation]);
    match StochasticHmd::at_offset(baseline, curve, offset, seed) {
        Ok(hmd) => {
            shard.retire_backend();
            shard.generation = generation;
            shard.seed = seed;
            shard.backend = ShardBackend::Stochastic(Box::new(hmd));
            shard.degraded_reason = None;
            true
        }
        Err(_) => false,
    }
}

/// A sharded continuous-monitoring service over Stochastic-HMD replicas.
///
/// See the [module docs](crate::serve) for the design; the short version:
/// deterministic sharding by stream position, per-shard derived seeds,
/// parallel batch processing with bit-identical output at any thread
/// count, ingestion validation that contains poison queries, per-shard
/// degradation to the baseline detector when calibration fails, and an
/// optional [`Supervisor`] that crashes, quarantines, recalibrates, and
/// restarts shards as its thermal world model (plus scripted chaos) moves.
pub struct MonitoringService {
    spec: FeatureSpec,
    policy: DetectionPolicy,
    target_error_rate: f64,
    seed: u64,
    batch_size: usize,
    exec: ExecConfig,
    /// Batched-inference lane width (1 = scalar), clamped into
    /// `1..=`[`MAX_LANES`]. A wall-clock knob like `exec`: verdicts,
    /// checksums, and telemetry are bit-identical at every width, so it
    /// is never checkpointed and [`MonitoringService::restore`] gives it
    /// the default.
    lanes: usize,
    /// Uncertainty-aware re-query policy (`None` = disabled). Part of the
    /// verdict stream's definition, so it *is* checkpointed.
    requery: Option<RequeryConfig>,
    /// Ensemble anomaly scorer voting in re-queries. Immutable model
    /// weights like `baseline`: never checkpointed, re-installed by the
    /// caller after [`MonitoringService::restore`].
    anomaly: Option<AnomalyScorer>,
    /// The unprotected model: the fallback backend, and the template for
    /// supervised rebuilds.
    baseline: BaselineHmd,
    /// Input-layer width, for ingestion validation.
    input_dim: usize,
    supervisor: Option<Supervisor>,
    /// Plain shard state: workers only ever see immutable
    /// [`ShardView`]s of it, so no lock is needed — all mutation happens
    /// on the main thread between batches.
    shards: Vec<Shard>,
    served: u64,
    batches: u64,
    rejected_queries: u64,
    verdict_checksum: u64,
    /// Sliding window of the last [`BATCH_LATENCY_WINDOW`] batch latencies.
    batch_latency_micros: VecDeque<u64>,
    /// CMOS power model the energy accountant and budget scheduler price
    /// shards against.
    power_model: CmosPowerModel,
    /// Inference latency model (cycle time is voltage-independent on the
    /// paper's platform, so one model covers every operating point).
    latency_model: LatencyModel,
    /// MAC count of the deployed quantized detector, under the repo-wide
    /// `size_bytes / 4` convention.
    macs: usize,
    /// Projected busy-power total over serving shards at the last
    /// power-scheduling tick (`None` before the first tick or without a
    /// budget policy).
    service_power_w: Option<f64>,
}

impl MonitoringService {
    /// Deploys `config.shards` replicas of `baseline` protected at
    /// `config.target_error_rate` on the device described by `curve`.
    ///
    /// Past config validation, deployment is infallible by design: a shard
    /// whose calibration cannot deliver the (valid but unreachable) target
    /// error rate degrades to the baseline detector and the degradation is
    /// recorded in telemetry, instead of failing the whole service.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTargetErrorRate`] when
    /// `config.target_error_rate` is NaN, negative, or ≥ 1.
    pub fn deploy(
        baseline: &BaselineHmd,
        curve: &CalibrationCurve,
        config: ServeConfig,
    ) -> Result<MonitoringService, ServeError> {
        Self::validate_target(config.target_error_rate)?;
        let mut service = Self::empty(baseline, config);
        for id in 0..config.shards.max(1) {
            let shard = service.build_shard(id, baseline, curve);
            service.shards.push(shard);
        }
        Ok(service)
    }

    /// Deploys a *supervised* service: the pool runs inside `supervision`'s
    /// thermal world model (and scripted chaos plan, if any), with shard
    /// offsets chosen by the supervisor's voltage controller. At every
    /// supervision point (every `supervision_cadence` batches, default
    /// every batch) the supervisor steps the environment, crashes and
    /// quarantines shards scripted to die anywhere in the window since
    /// the previous point, retunes live fault models to the physically
    /// delivered error rate, runs the delivered-rate watchdog, and
    /// executes due recovery retries — all as a deterministic function of
    /// the batch index.
    ///
    /// An unreachable (but valid) target clamps at the controller's guard
    /// band rather than degrading: the shards serve stochastic at the
    /// deepest safe offset.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTargetErrorRate`] for an invalid
    /// target, or [`ServeError::Calibration`] when the supervisor cannot
    /// calibrate the configured device.
    pub fn supervised(
        baseline: &BaselineHmd,
        supervision: SupervisorConfig,
        config: ServeConfig,
    ) -> Result<MonitoringService, ServeError> {
        Self::validate_target(config.target_error_rate)?;
        let supervisor = Supervisor::new(supervision, config.target_error_rate)?;
        let mut service = Self::empty(baseline, config);
        let offset = supervisor.controller().offset();
        let curve = supervisor.controller().curve();
        for id in 0..config.shards.max(1) {
            let seed = derive_seed(service.seed, &[SERVE_TAG, id as u64, 0]);
            let (backend, reason, degradation, health) =
                match StochasticHmd::at_offset(baseline, curve, offset, seed) {
                    Ok(hmd) => (
                        ShardBackend::Stochastic(Box::new(hmd)),
                        None,
                        0,
                        ShardHealth::Healthy,
                    ),
                    Err(e) => (
                        ShardBackend::Baseline(baseline.clone()),
                        Some(format!("fault model failed: {e}")),
                        1,
                        ShardHealth::Degraded,
                    ),
                };
            service.shards.push(Shard {
                id,
                seed,
                generation: 0,
                backend,
                supervision: SupervisionRecord::starting(health),
                degraded_reason: reason,
                degradation_events: degradation,
                queries: 0,
                flags: 0,
                band_hits: 0,
                requeries: 0,
                requeries_accounted: 0,
                retired_faults: FaultCounters::default(),
                histogram: ScoreHistogram::new(),
                energy_uj: 0.0,
                energy_accounted: 0,
                last_power_w: None,
                power_target_er: None,
                power_window_queries: 0,
            });
        }
        service.supervisor = Some(supervisor);
        Ok(service)
    }

    fn validate_target(er: f64) -> Result<(), ServeError> {
        if !er.is_finite() || !(0.0..1.0).contains(&er) {
            return Err(ServeError::InvalidTargetErrorRate(er));
        }
        Ok(())
    }

    /// The shard-less scaffold both deploy paths start from.
    fn empty(baseline: &BaselineHmd, config: ServeConfig) -> MonitoringService {
        MonitoringService {
            spec: baseline.spec(),
            policy: config.policy,
            target_error_rate: config.target_error_rate,
            seed: config.seed,
            batch_size: config.batch_size.max(1),
            exec: config.exec,
            lanes: config.lanes.clamp(1, MAX_LANES),
            requery: config.requery,
            anomaly: None,
            baseline: baseline.clone(),
            input_dim: baseline.quantized().input_dim(),
            supervisor: None,
            shards: Vec::new(),
            served: 0,
            batches: 0,
            rejected_queries: 0,
            verdict_checksum: 0,
            batch_latency_micros: VecDeque::new(),
            power_model: CmosPowerModel::i7_5557u(),
            latency_model: LatencyModel::i7_5557u(),
            macs: baseline.quantized().size_bytes() / 4,
            service_power_w: None,
        }
    }

    /// Builds one generation-0 shard, degrading to the baseline on
    /// calibration failure.
    fn build_shard(&self, id: usize, baseline: &BaselineHmd, curve: &CalibrationCurve) -> Shard {
        let seed = derive_seed(self.seed, &[SERVE_TAG, id as u64, 0]);
        let (backend, degraded_reason, degradation, health) =
            match Self::protected_backend(baseline, curve, self.target_error_rate, seed) {
                Ok(hmd) => (
                    ShardBackend::Stochastic(Box::new(hmd)),
                    None,
                    0,
                    ShardHealth::Healthy,
                ),
                Err(reason) => (
                    ShardBackend::Baseline(baseline.clone()),
                    Some(reason),
                    1,
                    ShardHealth::Degraded,
                ),
            };
        Shard {
            id,
            seed,
            generation: 0,
            backend,
            supervision: SupervisionRecord::starting(health),
            degraded_reason,
            degradation_events: degradation,
            queries: 0,
            flags: 0,
            band_hits: 0,
            requeries: 0,
            requeries_accounted: 0,
            retired_faults: FaultCounters::default(),
            histogram: ScoreHistogram::new(),
            energy_uj: 0.0,
            energy_accounted: 0,
            last_power_w: None,
            power_target_er: None,
            power_window_queries: 0,
        }
    }

    /// Attempts the full calibration chain for one shard: target error
    /// rate → undervolt offset → fault model → protected detector.
    fn protected_backend(
        baseline: &BaselineHmd,
        curve: &CalibrationCurve,
        target_er: f64,
        seed: u64,
    ) -> Result<StochasticHmd, String> {
        let offset = curve
            .offset_for_error_rate(target_er)
            .map_err(|e| format!("calibration failed: {e}"))?;
        StochasticHmd::at_offset(baseline, curve, offset, seed)
            .map_err(|e| format!("fault model failed: {e}"))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Queries consumed from the stream (served and rejected alike — every
    /// query advances the stream position).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Queries rejected at ingestion so far.
    pub fn rejected_queries(&self) -> u64 {
        self.rejected_queries
    }

    /// Batches processed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Running verdict checksum: a fold over every served score and
    /// rejection in stream order. Two services are serving the same
    /// stream identically iff their checksums agree.
    pub fn verdict_checksum(&self) -> u64 {
        self.verdict_checksum
    }

    /// The deployed policy.
    pub fn policy(&self) -> DetectionPolicy {
        self.policy
    }

    /// The batched-inference lane width in effect (1 = scalar path).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The uncertainty-aware re-query policy in effect, if any.
    pub fn requery(&self) -> Option<RequeryConfig> {
        self.requery
    }

    /// Enables (or replaces) uncertainty-aware re-query at runtime.
    /// `None` disables it. Takes effect from the next batch; counters
    /// already accrued are kept.
    pub fn set_requery(&mut self, requery: Option<RequeryConfig>) {
        self.requery = requery;
    }

    /// The installed ensemble anomaly scorer, if any.
    pub fn anomaly_scorer(&self) -> Option<&AnomalyScorer> {
        self.anomaly.as_ref()
    }

    /// Installs an unsupervised anomaly scorer as an extra re-query
    /// ensemble member (Tang-style benign-envelope deviation — see
    /// [`shmd_ml::anomaly`]). It votes on every re-queried verdict from
    /// the next batch on; it never answers confident verdicts, so
    /// installing one changes nothing while re-query is disabled.
    ///
    /// Model weights are deterministic caller inputs (like `baseline`),
    /// so the scorer is not checkpointed: re-install the same scorer
    /// after [`MonitoringService::restore`] to resume bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AnomalyDimMismatch`] when the scorer's
    /// fitted width differs from the deployed model's input layer.
    pub fn install_anomaly_scorer(&mut self, scorer: AnomalyScorer) -> Result<(), ServeError> {
        if scorer.input_dim() != self.input_dim {
            return Err(ServeError::AnomalyDimMismatch {
                got: scorer.input_dim(),
                expected: self.input_dim,
            });
        }
        self.anomaly = Some(scorer);
        Ok(())
    }

    /// Removes the installed anomaly scorer, returning it.
    pub fn uninstall_anomaly_scorer(&mut self) -> Option<AnomalyScorer> {
        self.anomaly.take()
    }

    /// Feature width the deployed model expects; queries of any other
    /// width are rejected at ingestion.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The supervision engine, when deployed via
    /// [`MonitoringService::supervised`].
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// Each shard's current health, in shard order.
    pub fn shard_healths(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .map(|shard| shard.supervision.health())
            .collect()
    }

    /// Changes the calibration target for subsequent
    /// [`MonitoringService::recalibrate`] calls (e.g. the operator trades
    /// accuracy for robustness at runtime). Live shards keep their current
    /// fault models until the next recalibration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTargetErrorRate`] for NaN, negative,
    /// or ≥ 1 targets, leaving the current target in place.
    pub fn retarget(&mut self, target_error_rate: f64) -> Result<(), ServeError> {
        Self::validate_target(target_error_rate)?;
        self.target_error_rate = target_error_rate;
        Ok(())
    }

    /// Forcibly degrades a *non-serving* shard to the baseline detector
    /// at nominal voltage — the admission layer's hang deadline (see
    /// [`crate::daemon`]): a shard stuck outside the serving set past its
    /// deadline goes back to answering, just without the moving-target
    /// defense, instead of wedging the daemon behind its retry schedule.
    /// Returns `false` (touching nothing) for an out-of-range id or a
    /// shard that is still serving.
    pub fn force_degrade_shard(&mut self, id: usize, reason: &str) -> bool {
        let baseline = self.baseline.clone();
        let Some(shard) = self.shards.get_mut(id) else {
            return false;
        };
        if shard.supervision.health().is_serving() {
            return false;
        }
        shard.retire_backend();
        shard.backend = ShardBackend::Baseline(baseline);
        shard.supervision.transition(ShardHealth::Degraded);
        shard.supervision.attempt = 0;
        shard.supervision.next_retry_batch = None;
        shard.degraded_reason = Some(reason.to_string());
        shard.degradation_events += 1;
        let mark = shard.fault_counters();
        shard.supervision.reset_watchdog(mark);
        true
    }

    /// Rebuilds every shard's detector against `curve` (a fresh
    /// calibration: temperature drifted, device aged, target changed).
    ///
    /// Each shard draws a new generation seed, so recalibration never
    /// replays old fault streams. Shards whose calibration fails fall
    /// back to the baseline detector — and previously degraded shards
    /// recover when the new calibration succeeds. Returns the number of
    /// shards left degraded.
    pub fn recalibrate(&mut self, baseline: &BaselineHmd, curve: &CalibrationCurve) -> usize {
        let mut degraded = 0;
        for shard in &mut self.shards {
            shard.retire_backend();
            shard.generation += 1;
            shard.seed = derive_seed(self.seed, &[SERVE_TAG, shard.id as u64, shard.generation]);
            match Self::protected_backend(baseline, curve, self.target_error_rate, shard.seed) {
                Ok(hmd) => {
                    shard.backend = ShardBackend::Stochastic(Box::new(hmd));
                    shard.degraded_reason = None;
                    shard.supervision.transition(ShardHealth::Healthy);
                }
                Err(reason) => {
                    shard.backend = ShardBackend::Baseline(baseline.clone());
                    shard.degraded_reason = Some(reason);
                    shard.degradation_events += 1;
                    shard.supervision.transition(ShardHealth::Degraded);
                    degraded += 1;
                }
            }
            let mark = shard.fault_counters();
            shard.supervision.reset_watchdog(mark);
        }
        degraded
    }

    /// Scores one batch of queries across the shard pool, returning
    /// verdicts in query order.
    ///
    /// Query `i` of the batch goes to shard `(served + i) mod shards` —
    /// a function of the stream position only, never of scheduling — and
    /// its fault stream is seeded from the shard seed and stream
    /// position, so workers claiming arbitrary query ranges produce
    /// output bit-identical at any thread count.
    pub fn process_batch(&mut self, queries: &[&Trace]) -> Vec<Verdict> {
        let features: Vec<Vec<f32>> = queries.iter().map(|t| self.spec.extract(t)).collect();
        self.run_batch(&features)
    }

    /// Scores one batch of *raw* feature vectors — the ingestion path for
    /// queries arriving from outside the trusted trace pipeline. Vectors
    /// whose width mismatches the deployed model, or containing NaN or
    /// infinite values, receive a [`QueryDisposition::Rejected`] verdict
    /// (score 0, benign) without touching any shard; everything else is
    /// served exactly as [`MonitoringService::process_batch`].
    pub fn process_feature_batch(&mut self, features: &[Vec<f32>]) -> Vec<Verdict> {
        self.run_batch(features)
    }

    fn run_batch(&mut self, features: &[Vec<f32>]) -> Vec<Verdict> {
        let start = Instant::now();
        // Supervision points are amortized to the configured cadence; at
        // each point the scripted-kill window accumulated since the
        // previous point is processed, so no chaos event is lost.
        let cadence = self
            .supervisor
            .as_ref()
            .map_or(1, |sup| sup.config().supervision_cadence.max(1));
        if self.batches.is_multiple_of(cadence) {
            let window_from = self.batches.saturating_sub(cadence - 1);
            self.supervise(window_from, self.batches);
        }
        let n = features.len();
        let n_shards = self.shards.len();
        let base = self.served;
        let policy = self.policy;
        let input_dim = self.input_dim;
        // The serving set after supervision: a pure function of the batch
        // index and prior state, identical at any thread count.
        let mask: Vec<bool> = self
            .shards
            .iter()
            .map(|shard| shard.supervision.health().is_serving())
            .collect();
        let serving: Vec<usize> = (0..n_shards).filter(|&id| mask[id]).collect();
        debug_assert!(
            !serving.is_empty(),
            "the supervisor never empties the serving set"
        );
        // Lock-free range claiming over the query stream (the atomic
        // task-claim idiom of `crate::exec`, at query-range granularity):
        // each worker repeatedly claims the next contiguous chunk of the
        // batch from a shared cursor and scores it against the shared
        // shard views with thread-local scratch, draws, fault streams,
        // and telemetry deltas. Verdicts are a pure function of stream
        // position, so which worker claims which range affects wall-clock
        // only, never output. The lane width is dispatched once per
        // worker invocation to a monomorphized claim loop; width 1 *is*
        // the scalar path, wider widths regroup each range into
        // same-shard lane blocks (see `batch_worker`).
        let workers = self.exec.thread_count().min((n / MIN_CLAIM).max(1));
        let chunk = (n / (workers * 4).max(1)).clamp(MIN_CLAIM, 8192);
        let lanes = self.lanes;
        type WorkerRanges = Vec<(usize, Vec<Verdict>)>;
        let worker_out: Vec<(WorkerRanges, Vec<ShardDelta>)> = {
            let requery = self.requery;
            let anomaly = self.anomaly.as_ref();
            let views: Vec<ShardView<'_>> = self
                .shards
                .iter()
                .map(|shard| shard.view(requery, anomaly))
                .collect();
            let cursor = AtomicUsize::new(0);
            let ctx = BatchCtx {
                cursor: &cursor,
                features,
                views: &views,
                mask: &mask,
                serving: &serving,
                n,
                n_shards,
                chunk,
                base,
                policy,
                input_dim,
            };
            let ctx_ref = &ctx;
            parallel_map_n(&self.exec, workers, |_worker| match lanes {
                1 => batch_worker::<1>(ctx_ref),
                2 => batch_worker::<2>(ctx_ref),
                3 => batch_worker::<3>(ctx_ref),
                4 => batch_worker::<4>(ctx_ref),
                5 => batch_worker::<5>(ctx_ref),
                6 => batch_worker::<6>(ctx_ref),
                7 => batch_worker::<7>(ctx_ref),
                8 => batch_worker::<8>(ctx_ref),
                9 => batch_worker::<9>(ctx_ref),
                10 => batch_worker::<10>(ctx_ref),
                11 => batch_worker::<11>(ctx_ref),
                12 => batch_worker::<12>(ctx_ref),
                13 => batch_worker::<13>(ctx_ref),
                14 => batch_worker::<14>(ctx_ref),
                15 => batch_worker::<15>(ctx_ref),
                16 => batch_worker::<16>(ctx_ref),
                w => unreachable!("lane width {w} outside 1..=MAX_LANES"),
            })
        };

        // Fold: telemetry deltas are additive and order-independent;
        // verdict ranges partition the batch, so stitching them by start
        // position rebuilds exact stream order.
        let mut stitched: Vec<(usize, Vec<Verdict>)> = Vec::new();
        for (ranges, deltas) in worker_out {
            for (shard, delta) in self.shards.iter_mut().zip(&deltas) {
                if !delta.is_empty() {
                    shard.fold_delta(delta);
                }
            }
            stitched.extend(ranges);
        }
        stitched.sort_unstable_by_key(|&(lo, _)| lo);
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(n);
        for (_, range) in stitched {
            verdicts.extend(range);
        }
        debug_assert_eq!(verdicts.len(), n, "claimed ranges partition the batch");
        for v in &verdicts {
            match v.disposition {
                QueryDisposition::Served => {
                    self.verdict_checksum = self.verdict_checksum.rotate_left(7)
                        ^ v.score.to_bits()
                        ^ u64::from(v.label.is_malware());
                }
                QueryDisposition::Rejected(_) => {
                    self.rejected_queries += 1;
                    self.verdict_checksum =
                        self.verdict_checksum.rotate_left(7) ^ REJECTED_QUERY_MARK;
                }
            }
        }
        self.served += n as u64;
        self.batches += 1;
        self.accrue_energy();
        // Timing folds exactly once per batch, on the main thread, after
        // the parallel region — workers never touch the clock.
        if self.batch_latency_micros.len() == BATCH_LATENCY_WINDOW {
            self.batch_latency_micros.pop_front();
        }
        self.batch_latency_micros
            .push_back(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        verdicts
    }

    /// Accrues modelled detection energy for every query answered this
    /// batch: queries × per-detection latency × detections per query ×
    /// busy core power at the shard's live offset. Runs on the main
    /// thread after the telemetry deltas fold, in shard order, so the
    /// accrual is a deterministic function of the query stream at any
    /// thread count.
    fn accrue_energy(&mut self) {
        let per_detection_us = self.latency_model.hmd_us(self.macs);
        let detections = self.policy.detections();
        for shard in &mut self.shards {
            let delta = shard.queries - shard.energy_accounted;
            shard.energy_accounted = shard.queries;
            // Every ensemble replica draw is a full inference at the
            // shard's live offset — the honest energy price of the
            // re-query counter-measure. (The anomaly scorer's vote is a
            // handful of flops against the model's MACs; below the
            // model's resolution.)
            let requery_delta = shard.requeries - shard.requeries_accounted;
            shard.requeries_accounted = shard.requeries;
            if delta == 0 && requery_delta == 0 {
                continue;
            }
            let (offset, k) = match &shard.backend {
                ShardBackend::Stochastic(hmd) => {
                    (hmd.offset().unwrap_or(Millivolts::new(0)), detections)
                }
                // A degraded shard serves the baseline at nominal
                // voltage, and its k draws collapse to one score — it
                // pays exactly one inference per query.
                _ => (Millivolts::new(0), 1),
            };
            let power_w = self
                .power_model
                .core_power_w(NOMINAL_CORE_VOLTAGE.with_offset(offset));
            // W × µs = µJ.
            shard.energy_uj +=
                (delta as f64 * k as f64 + requery_delta as f64) * per_detection_us * power_w;
            shard.last_power_w = Some(power_w);
        }
    }

    /// One supervision point, run on the main thread before the batch is
    /// dispatched: `batch` is the index of the batch about to run, and
    /// `[window_from, batch]` is the scripted-kill window accumulated
    /// since the previous point (equal to `batch` at cadence 1). The
    /// thermal world, physics, watchdog, and retries are sampled at
    /// `batch`. Everything here is a function of the batch index and
    /// prior state — never of wall-clock or thread scheduling.
    fn supervise(&mut self, window_from: u64, batch: u64) {
        let Some(mut sup) = self.supervisor.take() else {
            return;
        };
        let master = self.seed;
        let temp = sup.temperature_at(batch);
        // Drift counters before this tick's watchdog runs: the power
        // scheduler backs off exactly the shards flagged *this tick*.
        let drift_marks: Vec<u64> = self
            .shards
            .iter()
            .map(|shard| shard.supervision.drift_events())
            .collect();

        // Shards rebuilt at the previous point finish their recovery.
        for shard in &mut self.shards {
            if shard.supervision.health() == ShardHealth::Recovering {
                shard.supervision.transition(ShardHealth::Healthy);
            }
        }

        // Scripted chaos kills, anywhere in the window.
        let kills: Vec<(usize, &'static str)> =
            sup.config().chaos.kills_in(window_from, batch).collect();
        for (victim, cause) in kills {
            if victim < self.shards.len() {
                self.crash_shard(victim, batch, cause.to_string(), sup.config().backoff_base);
            }
        }

        // Physics: what the die actually delivers at this temperature. A
        // frozen operating point crashes the shard; a drifted one retunes
        // the live injector so the fault stream follows the die rather
        // than the stale calibration.
        for id in 0..self.shards.len() {
            let (offset, current_er) = {
                let shard = &self.shards[id];
                if !shard.supervision.health().is_serving() {
                    continue;
                }
                match &shard.backend {
                    ShardBackend::Stochastic(hmd) => match hmd.offset() {
                        Some(offset) => (offset, hmd.error_rate()),
                        None => continue,
                    },
                    _ => continue,
                }
            };
            let delivered = delivered_error_rate_at(&sup.config().device, offset, temp);
            if delivered >= FREEZE_ERROR_RATE {
                self.crash_shard(
                    id,
                    batch,
                    format!("froze: {offset} delivers er {delivered:.3} at {temp:.1} °C"),
                    sup.config().backoff_base,
                );
            } else if (delivered - current_er).abs() > sup.config().physics_epsilon {
                // delivered < FREEZE_ERROR_RATE < 1 here, so retune only
                // fails if the physics model hands back a non-probability
                // — treat that like a freeze instead of panicking.
                let retuned = match &mut self.shards[id].backend {
                    ShardBackend::Stochastic(hmd) => hmd.retune(delivered).is_ok(),
                    _ => true,
                };
                if !retuned {
                    self.crash_shard(
                        id,
                        batch,
                        format!("retune rejected delivered er {delivered:.3}"),
                        sup.config().backoff_base,
                    );
                }
            }
        }

        // Due recovery retries of quarantined shards.
        for id in 0..self.shards.len() {
            let due = {
                let shard = &self.shards[id];
                shard.supervision.health() == ShardHealth::Quarantined
                    && shard
                        .supervision
                        .next_retry_batch
                        .is_some_and(|due| batch >= due)
            };
            if !due {
                continue;
            }
            let action = sup.controller_mut().force_recalibrate(temp);
            let offset = sup.controller().offset();
            let shard = &mut self.shards[id];
            shard.supervision.retries += 1;
            let recovered = match action {
                Ok(ControllerAction::Clamped { .. }) if !sup.config().allow_clamped_recovery => {
                    false
                }
                Ok(_) => restart_shard(
                    shard,
                    &self.baseline,
                    sup.controller().curve(),
                    offset,
                    master,
                ),
                Err(_) => false,
            };
            if recovered {
                shard.supervision.transition(ShardHealth::Recovering);
                shard.supervision.attempt = 0;
                shard.supervision.next_retry_batch = None;
                let mark = shard.fault_counters();
                shard.supervision.reset_watchdog(mark);
            } else {
                shard.supervision.attempt += 1;
                if shard.supervision.attempt >= sup.config().max_retries.max(1) {
                    shard.backend = ShardBackend::Baseline(self.baseline.clone());
                    shard.supervision.transition(ShardHealth::Degraded);
                    shard.supervision.next_retry_batch = None;
                    shard.degraded_reason = Some(format!(
                        "retry budget exhausted after {} attempts",
                        shard.supervision.retries()
                    ));
                    shard.degradation_events += 1;
                    let mark = shard.fault_counters();
                    shard.supervision.reset_watchdog(mark);
                } else {
                    shard.supervision.next_retry_batch = Some(
                        batch
                            + retry_backoff(
                                shard.seed,
                                shard.supervision.attempt,
                                sup.config().backoff_base,
                            ),
                    );
                }
            }
        }

        // Watchdog: judge each serving stochastic shard's observed error
        // rate over the completed window against its post-calibration
        // reference.
        for id in 0..self.shards.len() {
            {
                let shard = &mut self.shards[id];
                if !shard.supervision.health().is_serving() {
                    continue;
                }
                if !matches!(shard.backend, ShardBackend::Stochastic(_)) {
                    continue;
                }
                let now = shard.fault_counters();
                let window = now.multiplies - shard.supervision.window_mark.multiplies;
                if window < sup.config().watchdog_window {
                    continue;
                }
                let faulty = now.faulty - shard.supervision.window_mark.faulty;
                let observed = faulty as f64 / window as f64;
                match shard.supervision.reference_rate {
                    None => {
                        // First full window after (re)calibration: the
                        // target *as observed through this workload* (the
                        // near-zero immune region absorbs a workload-
                        // dependent fraction of injected faults, so the
                        // raw target would misjudge every window).
                        shard.supervision.reference_rate = Some(observed);
                        shard.supervision.window_mark = now;
                        continue;
                    }
                    Some(reference) => {
                        let band = sup.watchdog_band(reference, window);
                        if (observed - reference).abs() <= band {
                            shard.supervision.window_mark = now;
                            continue;
                        }
                        shard.supervision.drift_events += 1;
                        shard.supervision.transition(ShardHealth::Drifting);
                    }
                }
            }
            // Drift confirmed: recalibrate at the current temperature and
            // rebuild the shard at the fresh offset.
            let action = sup.controller_mut().force_recalibrate(temp);
            let offset = sup.controller().offset();
            let shard = &mut self.shards[id];
            let recovered = match action {
                Ok(_) => restart_shard(
                    shard,
                    &self.baseline,
                    sup.controller().curve(),
                    offset,
                    master,
                ),
                Err(_) => false,
            };
            if recovered {
                shard.supervision.transition(ShardHealth::Recovering);
            } else {
                shard.backend = ShardBackend::Baseline(self.baseline.clone());
                shard.supervision.transition(ShardHealth::Degraded);
                shard.degraded_reason =
                    Some("drift recalibration failed; serving baseline".to_string());
                shard.degradation_events += 1;
            }
            let mark = shard.fault_counters();
            shard.supervision.reset_watchdog(mark);
        }

        // Power scheduling last, so this tick's drift flags and recovery
        // restarts are visible to the budget policy.
        self.schedule_power(&sup, temp, &drift_marks);

        self.supervisor = Some(sup);
    }

    /// One power-scheduling tick under the configured
    /// [`crate::supervisor::PowerBudgetPolicy`] (no-op without one):
    /// DVFS-style error-rate
    /// retargeting of every serving stochastic shard as load and
    /// temperature move, holding the projected busy-power total under the
    /// service watt budget and every operating point a guard band shy of
    /// the freeze threshold. Runs on the main thread at supervision
    /// points, in shard-id order, as a pure function of (shard state,
    /// batch index) — so schedules replay bit-identically at any thread
    /// count.
    fn schedule_power(&mut self, sup: &Supervisor, temp: f64, drift_marks: &[u64]) {
        let Some(policy) = sup.config().power_budget else {
            return;
        };
        let device = &sup.config().device;
        let guard = sup.controller().config().guard_band_mv;
        // The physical floor at this temperature: deepening stops a
        // guard band shy of wherever the freeze point sits *now*.
        let floor = deepest_safe_offset(device, temp, guard);
        let power_model = self.power_model;
        let nominal_power = power_model.core_power_w(NOMINAL_CORE_VOLTAGE);
        let serving: Vec<usize> = self
            .shards
            .iter()
            .filter(|shard| shard.supervision.health().is_serving())
            .map(|shard| shard.id)
            .collect();
        if serving.is_empty() {
            return;
        }

        // Per-shard load over the window since the previous tick,
        // against the fair share of the serving set.
        let window_total: u64 = serving
            .iter()
            .map(|&id| self.shards[id].queries - self.shards[id].power_window_queries)
            .sum();
        let fair = window_total as f64 / serving.len() as f64;

        // Phases A and B: tentative per-shard targets. A freshly
        // drift-flagged shard backs off one step toward the nominal end
        // of the band; a healthy shard on a cool die carrying no more
        // than its fair share deepens one step.
        let n = self.shards.len();
        let mut targets: Vec<Option<f64>> = vec![None; n];
        let mut flagged: Vec<bool> = vec![false; n];
        for &id in &serving {
            let shard = &self.shards[id];
            let ShardBackend::Stochastic(hmd) = &shard.backend else {
                continue;
            };
            if hmd.offset().is_none() {
                continue;
            }
            let current = shard
                .power_target_er
                .unwrap_or_else(|| policy.clamp_target(self.target_error_rate));
            flagged[id] =
                shard.supervision.drift_events() > drift_marks.get(id).copied().unwrap_or(u64::MAX);
            let window = (shard.queries - shard.power_window_queries) as f64;
            let light = fair == 0.0 || window <= policy.light_load * fair;
            let target = if flagged[id] {
                policy.clamp_target(current - policy.step_er)
            } else if temp <= policy.cool_temp_c && light {
                policy.clamp_target(current + policy.step_er)
            } else {
                current
            };
            targets[id] = Some(target);
        }

        // A target's operating point: the controller's curve-derived
        // offset, clamped shallow of the physical floor, and the busy
        // core power it draws.
        let place = |target: f64| -> (Millivolts, f64) {
            let offset = match sup.controller().offset_for_target(target) {
                Ok((offset, _clamped)) => offset,
                Err(_) => Millivolts::new(0),
            };
            let offset = Millivolts::new(offset.get().max(floor.get()));
            let power = power_model.core_power_w(NOMINAL_CORE_VOLTAGE.with_offset(offset));
            (offset, power)
        };
        let mut offsets: Vec<Option<Millivolts>> = vec![None; n];
        let mut powers: Vec<f64> = vec![0.0; n];
        for &id in &serving {
            match targets[id] {
                Some(target) => {
                    let (offset, power) = place(target);
                    offsets[id] = Some(offset);
                    powers[id] = power;
                }
                // Serving but not retargetable (degraded to baseline):
                // budgeted at nominal busy power.
                None => powers[id] = nominal_power,
            }
        }
        let mut total: f64 = serving.iter().map(|&id| powers[id]).sum();

        // Phase C: while the projection exceeds the budget, deepen
        // healthy shards one step each in id order. Stops as soon as the
        // projection fits, or when a full pass makes no progress (every
        // shard at its band cap or physical floor: the budget is held
        // best-effort, never by freezing a shard).
        while total > policy.budget_w {
            let before = total;
            for &id in &serving {
                let Some(target) = targets[id] else {
                    continue;
                };
                if flagged[id] || target >= policy.max_target_er {
                    continue;
                }
                let deeper = policy.clamp_target(target + policy.step_er);
                let (offset, power) = place(deeper);
                total += power - powers[id];
                targets[id] = Some(deeper);
                offsets[id] = Some(offset);
                powers[id] = power;
                if total <= policy.budget_w {
                    break;
                }
            }
            if total >= before {
                break;
            }
        }

        // Apply: write each schedule into the live fault model at the
        // rate the die physically delivers there, and rebase the
        // watchdog reference wherever the operating point moved.
        for &id in &serving {
            let (Some(target), Some(offset)) = (targets[id], offsets[id]) else {
                continue;
            };
            let shard = &mut self.shards[id];
            shard.power_target_er = Some(target);
            let ShardBackend::Stochastic(hmd) = &mut shard.backend else {
                continue;
            };
            if hmd.offset() == Some(offset) {
                continue;
            }
            let delivered = delivered_error_rate_at(device, offset, temp);
            if delivered >= FREEZE_ERROR_RATE || hmd.apply_offset(offset, delivered).is_err() {
                // Unreachable by construction (the floor keeps every
                // schedule a guard band shy of freezing), but a schedule
                // is never worth crashing a shard over.
                continue;
            }
            let mark = shard.fault_counters();
            shard.supervision.reset_watchdog(mark);
        }
        // Close the load window and publish the projection.
        for shard in &mut self.shards {
            shard.power_window_queries = shard.queries;
        }
        self.service_power_w = Some(total);
    }

    /// Crashes one shard: quarantine it and schedule deterministic
    /// recovery retries — unless it is the last serving shard, in which
    /// case it fails over to the baseline instead (the service never stops
    /// answering).
    fn crash_shard(&mut self, id: usize, batch: u64, cause: String, backoff_base: u64) {
        let serving = self
            .shards
            .iter()
            .filter(|shard| shard.supervision.health().is_serving())
            .count();
        let shard = &mut self.shards[id];
        if !shard.supervision.health().is_serving() {
            return;
        }
        shard.retire_backend();
        shard.supervision.transition(ShardHealth::Crashed);
        shard.supervision.crashes += 1;
        if serving <= 1 {
            shard.backend = ShardBackend::Baseline(self.baseline.clone());
            shard.supervision.transition(ShardHealth::Degraded);
            shard.degradation_events += 1;
            shard.degraded_reason = Some(format!(
                "{cause}; last serving shard failed over to baseline"
            ));
            let mark = shard.fault_counters();
            shard.supervision.reset_watchdog(mark);
        } else {
            shard.backend = ShardBackend::Down;
            shard.supervision.transition(ShardHealth::Quarantined);
            shard.degraded_reason = Some(cause);
            shard.supervision.attempt = 0;
            shard.supervision.next_retry_batch =
                Some(batch + retry_backoff(shard.seed, 0, backoff_base));
        }
    }

    /// Replays a query stream in batches of the configured size.
    pub fn process_stream(&mut self, queries: &[&Trace]) -> Vec<Verdict> {
        let mut verdicts = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(self.batch_size) {
            verdicts.extend(self.process_batch(chunk));
        }
        verdicts
    }

    /// Captures the service's complete mutable state as a
    /// [`ServiceCheckpoint`].
    ///
    /// The checkpoint holds everything needed to continue the verdict
    /// stream bit-identically from this exact point: per-shard detector
    /// snapshots (RNG state, in-flight fault gap, folded statistics),
    /// supervision records and retry schedules, the voltage controller's
    /// calibration point, telemetry counters, and the global stream
    /// position. The wall-clock batch latency window is deliberately
    /// excluded — timing is not replayable; compare resumed services with
    /// [`TelemetrySnapshot::without_timing`].
    pub fn checkpoint(&self) -> ServiceCheckpoint {
        let supervisor = self.supervisor.as_ref().map(|sup| {
            let state = sup.controller().export_state();
            SupervisorCheckpoint {
                calibrated_at_c: state.calibrated_at_c,
                offset_mv: state.offset.get(),
            }
        });
        let shards = self
            .shards
            .iter()
            .map(|shard| ShardCheckpoint {
                id: shard.id as u64,
                seed: shard.seed,
                generation: shard.generation,
                backend: match &shard.backend {
                    ShardBackend::Stochastic(hmd) => {
                        BackendCheckpoint::Stochastic(hmd.export_state())
                    }
                    ShardBackend::Baseline(_) => BackendCheckpoint::Baseline,
                    ShardBackend::Down => BackendCheckpoint::Down,
                },
                health: shard.supervision.health(),
                transitions: shard.supervision.transitions(),
                crashes: shard.supervision.crashes(),
                drift_events: shard.supervision.drift_events(),
                retries: shard.supervision.retries(),
                attempt: shard.supervision.attempt,
                next_retry_batch: shard.supervision.next_retry_batch,
                reference_rate: shard.supervision.reference_rate,
                window_mark: shard.supervision.window_mark,
                degraded_reason: shard.degraded_reason.clone(),
                degradation_events: shard.degradation_events,
                queries: shard.queries,
                flags: shard.flags,
                retired_faults: shard.retired_faults,
                histogram: *shard.histogram.counts(),
                energy_uj: shard.energy_uj,
                last_power_w: shard.last_power_w,
                power_target_er: shard.power_target_er,
                power_window_queries: shard.power_window_queries,
                band_hits: shard.band_hits,
                requeries: shard.requeries,
            })
            .collect();
        ServiceCheckpoint {
            policy: self.policy,
            target_error_rate: self.target_error_rate,
            seed: self.seed,
            batch_size: self.batch_size as u64,
            input_dim: self.input_dim as u64,
            served: self.served,
            batches: self.batches,
            rejected_queries: self.rejected_queries,
            verdict_checksum: self.verdict_checksum,
            service_power_w: self.service_power_w,
            requery_band: self.requery.map(|r| r.band),
            requery_replicas: self.requery.map_or(0, |r| r.replicas as u64),
            supervisor,
            shards,
        }
    }

    /// Rebuilds a service from a [`MonitoringService::checkpoint`]
    /// snapshot. The resumed service continues the verdict stream — and
    /// every telemetry counter except wall-clock latency — bit-identically
    /// to the service that was checkpointed, at any thread count.
    ///
    /// `baseline` must be the same trained model the checkpointed service
    /// deployed (the checkpoint carries only mutable state, never the
    /// weights), and `supervision` must be the same
    /// [`SupervisorConfig`] for a supervised checkpoint — both are
    /// deterministic inputs the caller reconstructs, exactly as it did at
    /// first deployment. `exec` only chooses the worker pool and never
    /// affects results. An ensemble anomaly scorer is likewise model
    /// weights, not mutable state: re-install the same scorer via
    /// [`MonitoringService::install_anomaly_scorer`] after restoring to
    /// resume re-queried verdicts bit-identically.
    ///
    /// # Errors
    ///
    /// - [`RestoreError::InputDimMismatch`] when `baseline` does not match
    ///   the checkpointed input width;
    /// - [`RestoreError::SupervisorRequired`] /
    ///   [`RestoreError::SupervisorUnexpected`] when `supervision` and the
    ///   checkpoint disagree about supervision;
    /// - [`RestoreError::Calibration`] when the controller cannot
    ///   recalibrate at the checkpointed temperature;
    /// - [`RestoreError::InvalidState`] when the checkpoint decodes but
    ///   describes a state no live service can hold (corrupt injector
    ///   snapshot, a supervisor config whose recalibration disagrees with
    ///   the checkpointed offset, a serving shard with no backend).
    pub fn restore(
        baseline: &BaselineHmd,
        supervision: Option<SupervisorConfig>,
        checkpoint: &ServiceCheckpoint,
        exec: ExecConfig,
    ) -> Result<MonitoringService, RestoreError> {
        let expected = usize::try_from(checkpoint.input_dim)
            .map_err(|_| RestoreError::InvalidState("input width overflows usize".to_string()))?;
        let got = baseline.quantized().input_dim();
        if got != expected {
            return Err(RestoreError::InputDimMismatch { got, expected });
        }
        if Self::validate_target(checkpoint.target_error_rate).is_err() {
            return Err(RestoreError::InvalidState(format!(
                "target error rate {} is not a probability below 1",
                checkpoint.target_error_rate
            )));
        }
        if checkpoint.shards.is_empty() {
            return Err(RestoreError::InvalidState(
                "checkpoint has no shards".to_string(),
            ));
        }
        let supervisor = match (&checkpoint.supervisor, supervision) {
            (Some(state), Some(config)) => {
                let mut sup = Supervisor::new(config, checkpoint.target_error_rate)?;
                let saved = ControllerState {
                    calibrated_at_c: state.calibrated_at_c,
                    offset: Millivolts::new(state.offset_mv),
                };
                sup.controller_mut().restore_state(&saved)?;
                let offset = sup.controller().offset();
                if offset != saved.offset {
                    return Err(RestoreError::InvalidState(format!(
                        "recalibrated offset {offset} disagrees with checkpointed {} mV — \
                         the supervisor config does not match this checkpoint",
                        state.offset_mv
                    )));
                }
                Some(sup)
            }
            (Some(_), None) => return Err(RestoreError::SupervisorRequired),
            (None, Some(_)) => return Err(RestoreError::SupervisorUnexpected),
            (None, None) => None,
        };
        let mut shards = Vec::with_capacity(checkpoint.shards.len());
        for s in &checkpoint.shards {
            let backend = match &s.backend {
                BackendCheckpoint::Stochastic(state) => {
                    let hmd = StochasticHmd::from_state(baseline, state.clone())
                        .map_err(|e| RestoreError::InvalidState(format!("shard {}: {e}", s.id)))?;
                    ShardBackend::Stochastic(Box::new(hmd))
                }
                BackendCheckpoint::Baseline => ShardBackend::Baseline(baseline.clone()),
                BackendCheckpoint::Down => {
                    if s.health.is_serving() {
                        return Err(RestoreError::InvalidState(format!(
                            "shard {} is {} but has no backend",
                            s.id, s.health
                        )));
                    }
                    ShardBackend::Down
                }
            };
            shards.push(Shard {
                id: usize::try_from(s.id).map_err(|_| {
                    RestoreError::InvalidState(format!("shard id {} overflows usize", s.id))
                })?,
                seed: s.seed,
                generation: s.generation,
                backend,
                supervision: SupervisionRecord {
                    health: s.health,
                    transitions: s.transitions,
                    crashes: s.crashes,
                    drift_events: s.drift_events,
                    retries: s.retries,
                    attempt: s.attempt,
                    next_retry_batch: s.next_retry_batch,
                    reference_rate: s.reference_rate,
                    window_mark: s.window_mark,
                },
                degraded_reason: s.degraded_reason.clone(),
                degradation_events: s.degradation_events,
                queries: s.queries,
                flags: s.flags,
                band_hits: s.band_hits,
                requeries: s.requeries,
                // Checkpoints are taken at batch boundaries, where
                // re-query energy is always fully accrued.
                requeries_accounted: s.requeries,
                retired_faults: s.retired_faults,
                histogram: ScoreHistogram::from_counts(s.histogram),
                energy_uj: s.energy_uj,
                // Checkpoints are taken at batch boundaries, where energy
                // is always fully accrued.
                energy_accounted: s.queries,
                last_power_w: s.last_power_w,
                power_target_er: s.power_target_er,
                power_window_queries: s.power_window_queries,
            });
        }
        Ok(MonitoringService {
            spec: baseline.spec(),
            policy: checkpoint.policy,
            target_error_rate: checkpoint.target_error_rate,
            seed: checkpoint.seed,
            batch_size: usize::try_from(checkpoint.batch_size.max(1)).map_err(|_| {
                RestoreError::InvalidState("batch size overflows usize".to_string())
            })?,
            exec,
            // Wall-clock only, so not part of the checkpoint: any width
            // resumes the stream bit-identically.
            lanes: DEFAULT_LANES,
            requery: checkpoint.requery_band.map(|band| RequeryConfig {
                band,
                replicas: usize::try_from(checkpoint.requery_replicas.max(1))
                    .unwrap_or(MAX_REQUERY_REPLICAS)
                    .clamp(1, MAX_REQUERY_REPLICAS),
            }),
            // Model weights, not mutable state: the caller re-installs
            // the same scorer it installed at first deployment.
            anomaly: None,
            baseline: baseline.clone(),
            input_dim: expected,
            supervisor,
            shards,
            served: checkpoint.served,
            batches: checkpoint.batches,
            rejected_queries: checkpoint.rejected_queries,
            verdict_checksum: checkpoint.verdict_checksum,
            batch_latency_micros: VecDeque::new(),
            power_model: CmosPowerModel::i7_5557u(),
            latency_model: LatencyModel::i7_5557u(),
            macs: baseline.quantized().size_bytes() / 4,
            service_power_w: checkpoint.service_power_w,
        })
    }

    /// [`MonitoringService::process_feature_batch`] with write-ahead
    /// durability: the batch's [`BatchCommit`] (stream position + verdict
    /// checksum) is appended to `journal` and synced to disk **before**
    /// the verdicts are returned to the caller.
    ///
    /// A process killed at any instant therefore loses at most one batch
    /// whose verdicts nobody observed: recovery restores the newest
    /// checkpoint from the journal and replays the input stream from its
    /// position, and determinism reproduces the uncommitted batch's
    /// verdicts bit-identically.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the journal append or sync. The service's
    /// in-memory state has already advanced past the batch when the
    /// append fails; the caller decides whether to surface the verdicts
    /// anyway or treat the deployment as no longer durable.
    pub fn process_feature_batch_journaled(
        &mut self,
        features: &[Vec<f32>],
        journal: &mut StateJournal,
    ) -> io::Result<Vec<Verdict>> {
        let verdicts = self.run_batch(features);
        journal.append_commit(BatchCommit {
            batch: self.batches - 1,
            stream_pos: self.served,
            checksum: self.verdict_checksum,
        })?;
        Ok(verdicts)
    }

    /// Snapshots the service-wide telemetry.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards: Vec<ShardReport> = self.shards.iter().map(Shard::report).collect();
        TelemetrySnapshot {
            seed: self.seed,
            policy: self.policy.to_string(),
            batches: self.batches,
            queries: self.served,
            flags: shards.iter().map(|s| s.flags).sum(),
            band_hits: shards.iter().map(|s| s.band_hits).sum(),
            requeries: shards.iter().map(|s| s.requeries).sum(),
            degradation_events: self.shards.iter().map(|s| s.degradation_events).sum(),
            rejected_queries: self.rejected_queries,
            verdict_checksum: self.verdict_checksum,
            power_budget_w: self
                .supervisor
                .as_ref()
                .and_then(|sup| sup.config().power_budget)
                .map(|policy| policy.budget_w),
            service_power_w: self.service_power_w,
            shards,
            batch_latency_micros: self.batch_latency_micros.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_volt::calibration::{Calibrator, DeviceProfile};
    use shmd_workload::dataset::{Dataset, DatasetConfig};

    fn setup() -> (Dataset, BaselineHmd, CalibrationCurve) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 77);
        let split = dataset.three_fold_split(0);
        let baseline = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        (dataset, baseline, curve)
    }

    fn stream(dataset: &Dataset, n: usize) -> Vec<&Trace> {
        (0..n).map(|i| dataset.trace(i % dataset.len())).collect()
    }

    #[test]
    fn service_answers_every_query_in_order() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(1))
                .expect("valid config");
        let queries = stream(&dataset, 50);
        let verdicts = service.process_stream(&queries);
        assert_eq!(verdicts.len(), 50);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.query, i as u64);
            assert_eq!(v.shard, i % 3);
            assert_eq!(v.disposition, QueryDisposition::Served);
        }
        assert_eq!(service.served(), 50);
        assert_eq!(service.rejected_queries(), 0);
    }

    #[test]
    fn invalid_targets_fail_deployment_with_a_typed_error() {
        let (_, baseline, curve) = setup();
        for bad in [f64::NAN, 1.5, -0.1, f64::INFINITY, 1.0] {
            let config = ServeConfig::new(2).with_target_error_rate(bad);
            match MonitoringService::deploy(&baseline, &curve, config) {
                Err(ServeError::InvalidTargetErrorRate(er)) => {
                    assert!(er.is_nan() == bad.is_nan() && (er.is_nan() || er == bad));
                }
                other => panic!("target {bad} accepted: {:?}", other.map(|_| ())),
            }
        }
        // The error is also caught at retarget, before any calibration.
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2)).expect("valid");
        assert!(matches!(
            service.retarget(f64::NAN),
            Err(ServeError::InvalidTargetErrorRate(_))
        ));
        assert!(matches!(
            service.retarget(1.5),
            Err(ServeError::InvalidTargetErrorRate(er)) if er == 1.5
        ));
    }

    #[test]
    fn poison_query_costs_one_verdict_not_the_shard() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(13))
                .expect("valid config");
        let dim = service.input_dim();
        // One width-poisoned query followed by 100 well-formed ones.
        let mut batch: Vec<Vec<f32>> = vec![vec![0.25; dim + 3]];
        for i in 0..100 {
            batch.push(service.spec.extract(dataset.trace(i % dataset.len())));
        }
        let verdicts = service.process_feature_batch(&batch);
        assert_eq!(verdicts.len(), 101);
        assert_eq!(
            verdicts[0].disposition,
            QueryDisposition::Rejected(RejectReason::WidthMismatch {
                got: dim + 3,
                expected: dim
            })
        );
        assert!(!verdicts[0].label.is_malware(), "rejected defaults benign");
        for v in &verdicts[1..] {
            assert_eq!(v.disposition, QueryDisposition::Served, "query {}", v.query);
        }
        // The shards survived: a NaN poison later is likewise contained.
        let mut nan_features = service.spec.extract(dataset.trace(0));
        nan_features[1] = f32::NAN;
        let verdicts = service.process_feature_batch(&[nan_features]);
        assert_eq!(
            verdicts[0].disposition,
            QueryDisposition::Rejected(RejectReason::NonFiniteFeature { index: 1 })
        );
        let more = service.process_stream(&stream(&dataset, 30));
        assert!(more.iter().all(|v| !v.is_rejected()));
        let snapshot = service.snapshot();
        assert_eq!(snapshot.rejected_queries, 2);
        assert_eq!(snapshot.queries, 132);
        assert_eq!(
            snapshot.shards.iter().map(|s| s.queries).sum::<u64>(),
            130,
            "rejected queries never reach a shard"
        );
    }

    #[test]
    fn serial_and_threaded_streams_are_bit_identical() {
        let (dataset, baseline, curve) = setup();
        let queries = stream(&dataset, 100);
        let run = |threads: ExecConfig| {
            let config = ServeConfig::new(4)
                .with_seed(9)
                .with_batch_size(16)
                .with_exec(threads);
            let mut service =
                MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
            let verdicts = service.process_stream(&queries);
            (verdicts, service.snapshot().without_timing())
        };
        let (serial_verdicts, serial_snapshot) = run(ExecConfig::serial());
        for threads in [2, 4, 8] {
            let (verdicts, snapshot) = run(ExecConfig::threads(threads));
            assert_eq!(
                verdicts, serial_verdicts,
                "verdict stream differs at {threads} threads"
            );
            assert_eq!(
                snapshot, serial_snapshot,
                "telemetry differs at {threads} threads"
            );
        }
    }

    #[test]
    fn every_lane_width_is_bit_identical_to_the_scalar_path() {
        let (dataset, baseline, curve) = setup();
        let dim = baseline.quantized().input_dim();
        // A stream that exercises the regrouping: well-formed queries
        // interleaved with poison (so lane blocks form around rejected
        // slots) across both policies that take multiple draws.
        let mut batch: Vec<Vec<f32>> = Vec::new();
        for i in 0..120 {
            if i % 17 == 5 {
                batch.push(vec![f32::NAN; dim]);
            } else if i % 23 == 7 {
                batch.push(vec![0.5; dim + 1]);
            } else {
                batch.push(baseline.spec().extract(dataset.trace(i % dataset.len())));
            }
        }
        for policy in [
            DetectionPolicy::Single,
            DetectionPolicy::AnyOf(3),
            DetectionPolicy::MajorityOf(5),
        ] {
            let run = |lanes: usize, threads: ExecConfig| {
                let config = ServeConfig::new(3)
                    .with_seed(21)
                    .with_policy(policy)
                    .with_batch_size(40)
                    .with_exec(threads)
                    .with_lanes(lanes);
                let mut service =
                    MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
                let mut verdicts = Vec::new();
                for chunk in batch.chunks(40) {
                    verdicts.extend(service.process_feature_batch(chunk));
                }
                (verdicts, service.snapshot().without_timing())
            };
            let (scalar_verdicts, scalar_snapshot) = run(1, ExecConfig::serial());
            for lanes in [2, 3, 4, 8, 16] {
                let (verdicts, snapshot) = run(lanes, ExecConfig::serial());
                assert_eq!(
                    verdicts, scalar_verdicts,
                    "verdict stream differs at {lanes} lanes under {policy:?}"
                );
                assert_eq!(
                    snapshot, scalar_snapshot,
                    "telemetry differs at {lanes} lanes under {policy:?}"
                );
            }
            // Lanes and threads compose without perturbing results.
            let (verdicts, snapshot) = run(8, ExecConfig::threads(4));
            assert_eq!(verdicts, scalar_verdicts, "8 lanes × 4 threads differs");
            assert_eq!(snapshot, scalar_snapshot, "8×4 telemetry differs");
        }
    }

    #[test]
    fn lane_width_is_clamped_and_reported() {
        let (_, baseline, curve) = setup();
        for (asked, got) in [(0, 1), (1, 1), (8, 8), (16, 16), (64, MAX_LANES)] {
            let service =
                MonitoringService::deploy(&baseline, &curve, ServeConfig::new(1).with_lanes(asked))
                    .expect("valid config");
            assert_eq!(service.lanes(), got, "asked {asked}");
        }
        let default = MonitoringService::deploy(&baseline, &curve, ServeConfig::new(1))
            .expect("valid config");
        assert_eq!(default.lanes(), DEFAULT_LANES);
    }

    #[test]
    fn skewed_workload_is_bit_identical_across_thread_counts() {
        // Deliberately uneven per-query cost: a cluster of cheap rejects
        // (width-poisoned) at the front of every batch, then expensive
        // majority-of-5 queries. Workers claiming ranges finish at very
        // different times, so any ordering assumption in the range-claim
        // fold (verdict stitching, checksum order, delta merge) would
        // surface here.
        let (dataset, baseline, curve) = setup();
        let dim = baseline.quantized().input_dim();
        let mut features: Vec<Vec<f32>> = Vec::new();
        for i in 0..9 {
            features.push(vec![0.5; dim + 1 + i]);
        }
        for i in 0..171 {
            features.push(baseline.spec().extract(dataset.trace(i % dataset.len())));
        }
        let run = |exec: ExecConfig| {
            let config = ServeConfig::new(4)
                .with_seed(23)
                .with_policy(DetectionPolicy::MajorityOf(5))
                .with_batch_size(45)
                .with_exec(exec);
            let mut service =
                MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
            let mut verdicts = Vec::new();
            for chunk in features.chunks(45) {
                verdicts.extend(service.process_feature_batch(chunk));
            }
            (verdicts, service.snapshot().without_timing())
        };
        let (serial_verdicts, serial_snapshot) = run(ExecConfig::serial());
        assert_eq!(
            serial_verdicts.iter().filter(|v| v.is_rejected()).count(),
            9
        );
        for threads in [2, 8] {
            let (verdicts, snapshot) = run(ExecConfig::threads(threads));
            assert_eq!(
                verdicts, serial_verdicts,
                "skewed verdict stream differs at {threads} threads"
            );
            assert_eq!(
                snapshot, serial_snapshot,
                "skewed telemetry differs at {threads} threads"
            );
        }
    }

    #[test]
    fn supervision_cadence_amortizes_without_losing_chaos_kills() {
        use crate::supervisor::ChaosPlan;
        use shmd_volt::calibration::DeviceProfile;
        use shmd_volt::environment::EnvironmentConfig;

        let (dataset, baseline, _) = setup();
        let features: Vec<Vec<f32>> = (0..240)
            .map(|i| baseline.spec().extract(dataset.trace(i % dataset.len())))
            .collect();
        let run = |cadence: u64, exec: ExecConfig| {
            let supervision = SupervisorConfig::new(DeviceProfile::reference())
                .with_environment(EnvironmentConfig::drifting(49.0, 5))
                .with_chaos(ChaosPlan::seeded(5, 3, 20, 2, 1))
                .with_supervision_cadence(cadence);
            let config = ServeConfig::new(3)
                .with_seed(17)
                .with_target_error_rate(0.2)
                .with_batch_size(8)
                .with_exec(exec);
            let mut service =
                MonitoringService::supervised(&baseline, supervision, config).expect("deploys");
            let mut verdicts = Vec::new();
            for chunk in features.chunks(8) {
                verdicts.extend(service.process_feature_batch(chunk));
            }
            (verdicts, service.snapshot().without_timing())
        };

        // Cadence 4 skips 3 of every 4 supervision steps but must not
        // lose the scripted kills the dense run sees.
        let (_, dense) = run(1, ExecConfig::serial());
        let (cadenced_verdicts, cadenced) = run(4, ExecConfig::serial());
        assert!(dense.total_crashes() >= 1, "chaos plan schedules crashes");
        assert_eq!(
            cadenced.total_crashes(),
            dense.total_crashes(),
            "a kill between cadence points must fire at the next point"
        );
        assert_eq!(cadenced.queries, 240);

        // And the cadenced schedule stays thread-invariant.
        for threads in [2, 8] {
            let (verdicts, snapshot) = run(4, ExecConfig::threads(threads));
            assert_eq!(
                verdicts, cadenced_verdicts,
                "cadenced verdicts differ at {threads} threads"
            );
            assert_eq!(
                snapshot, cadenced,
                "cadenced telemetry differs at {threads} threads"
            );
        }
    }

    #[test]
    fn service_detects_malware_through_the_pool() {
        let (dataset, baseline, curve) = setup();
        let split = dataset.three_fold_split(0);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(4).with_seed(3))
                .expect("valid config");
        let queries: Vec<&Trace> = split.testing().iter().map(|&i| dataset.trace(i)).collect();
        let verdicts = service.process_stream(&queries);
        let correct = verdicts
            .iter()
            .zip(split.testing())
            .filter(|(v, &i)| v.label.is_malware() == dataset.program(i).is_malware())
            .count();
        let accuracy = correct as f64 / verdicts.len() as f64;
        assert!(accuracy > 0.85, "pool accuracy {accuracy}");
    }

    #[test]
    fn shards_draw_independent_fault_streams() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(4).with_seed(5))
                .expect("valid config");
        // Same trace to every shard: scores must not be a single repeated
        // value across shards (each replica rolls its own boundary).
        let queries: Vec<&Trace> = (0..40).map(|_| dataset.trace(0)).collect();
        let verdicts = service.process_stream(&queries);
        let distinct: std::collections::HashSet<u64> =
            verdicts.iter().map(|v| v.score.to_bits()).collect();
        assert!(
            distinct.len() > 1,
            "shard replicas produced one deterministic stream"
        );
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 0);
        assert_eq!(snapshot.shards_in(ShardHealth::Healthy), 4);
        assert!(
            snapshot.total_faults().multiplies > 0,
            "telemetry must fold injector stats"
        );
    }

    #[test]
    fn unreachable_target_degrades_to_baseline_and_keeps_serving() {
        let (dataset, baseline, curve) = setup();
        // FREEZE_ERROR_RATE = 0.5: no device reaches er = 0.9.
        let config = ServeConfig::new(3).with_target_error_rate(0.9).with_seed(2);
        let mut service = MonitoringService::deploy(&baseline, &curve, config)
            .expect("0.9 is valid, just unreachable");
        let queries = stream(&dataset, 30);
        let verdicts = service.process_stream(&queries);
        // Degraded shards serve the deterministic baseline.
        for (i, v) in verdicts.iter().enumerate() {
            let expected = baseline.score_features(&baseline.spec().extract(queries[i]));
            assert_eq!(v.score, expected, "degraded shard must serve the baseline");
        }
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 3);
        assert_eq!(snapshot.degradation_events, 3);
        for shard in &snapshot.shards {
            assert!(shard.degraded);
            assert_eq!(shard.health, ShardHealth::Degraded);
            let reason = shard.degraded_reason.as_deref().expect("reason recorded");
            assert!(reason.contains("unreachable"), "got {reason}");
        }
    }

    #[test]
    fn recalibration_recovers_and_degrades_shards() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(4))
                .expect("valid config");
        assert_eq!(service.snapshot().degraded_shards(), 0);
        let queries = stream(&dataset, 20);
        service.process_stream(&queries);
        let faults_before = service.snapshot().total_faults();

        // Mid-stream the operator retargets to an unreachable rate: the
        // next recalibration degrades every shard, but serving continues
        // and the folded fault counters survive the backend swap.
        service.retarget(0.95).expect("a valid probability");
        assert_eq!(service.recalibrate(&baseline, &curve), 2);
        service.process_stream(&queries);
        let snapshot = service.snapshot();
        assert_eq!(snapshot.degraded_shards(), 2);
        assert_eq!(snapshot.degradation_events, 2);
        assert_eq!(
            snapshot.total_faults(),
            faults_before,
            "retired injector stats must survive degradation"
        );

        // Back to a reachable target: the shards recover.
        service.retarget(0.1).expect("a valid probability");
        assert_eq!(service.recalibrate(&baseline, &curve), 0);
        let recovered = service.snapshot();
        assert_eq!(recovered.degraded_shards(), 0);
        assert_eq!(recovered.degradation_events, 2, "history is cumulative");
        assert!(recovered.shards.iter().all(|s| s.degraded_reason.is_none()));
        assert_eq!(recovered.shards_in(ShardHealth::Healthy), 2);
    }

    #[test]
    fn policy_consistent_scores_match_verdicts() {
        let (dataset, baseline, curve) = setup();
        let config = ServeConfig::new(2)
            .with_policy(DetectionPolicy::MajorityOf(4))
            .with_seed(6);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
        let queries = stream(&dataset, 40);
        let threshold = Detector::threshold(&baseline);
        for v in service.process_stream(&queries) {
            assert_eq!(
                v.label.is_malware(),
                v.score >= threshold,
                "score/verdict inconsistent under majority-of-4"
            );
        }
    }

    #[test]
    fn snapshot_json_round_trips_from_a_live_service() {
        let (dataset, baseline, curve) = setup();
        let mut service =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(3).with_seed(8))
                .expect("valid config");
        service.process_stream(&stream(&dataset, 25));
        let snapshot = service.snapshot();
        let back = TelemetrySnapshot::from_json(&snapshot.to_json()).expect("parses");
        assert_eq!(back, snapshot);
        assert_eq!(back.queries, 25);
        assert_eq!(back.batch_latency_micros.len() as u64, back.batches);
    }

    #[test]
    fn batch_latency_history_is_a_bounded_window() {
        let (dataset, baseline, curve) = setup();
        let config = ServeConfig::new(2).with_seed(11).with_batch_size(1);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
        let queries = stream(&dataset, BATCH_LATENCY_WINDOW + 10);
        service.process_stream(&queries);
        let snapshot = service.snapshot();
        assert_eq!(snapshot.batches, (BATCH_LATENCY_WINDOW + 10) as u64);
        assert_eq!(
            snapshot.batch_latency_micros.len(),
            BATCH_LATENCY_WINDOW,
            "latency history must age out instead of growing unboundedly"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically_under_supervision() {
        use crate::supervisor::ChaosPlan;
        use shmd_volt::environment::EnvironmentConfig;

        let (dataset, baseline, _) = setup();
        let supervision = || {
            SupervisorConfig::new(DeviceProfile::reference())
                .with_environment(EnvironmentConfig::drifting(49.0, 5))
                .with_chaos(ChaosPlan::seeded(5, 3, 20, 2, 1))
        };
        let config = ServeConfig::new(3)
            .with_seed(17)
            .with_target_error_rate(0.2)
            .with_batch_size(8);
        let features: Vec<Vec<f32>> = (0..240)
            .map(|i| baseline.spec().extract(dataset.trace(i % dataset.len())))
            .collect();
        let chunks: Vec<&[Vec<f32>]> = features.chunks(8).collect();

        // Reference: one uninterrupted run.
        let mut reference =
            MonitoringService::supervised(&baseline, supervision(), config).expect("deploys");
        let mut reference_verdicts = Vec::new();
        for chunk in &chunks {
            reference_verdicts.extend(reference.process_feature_batch(chunk));
        }

        // Interrupted: checkpoint mid-stream (through the binary codec),
        // drop the live service, restore at a different thread count, and
        // replay the remaining batches.
        let mut first =
            MonitoringService::supervised(&baseline, supervision(), config).expect("deploys");
        let mut resumed_verdicts = Vec::new();
        for chunk in &chunks[..12] {
            resumed_verdicts.extend(first.process_feature_batch(chunk));
        }
        let bytes = first.checkpoint().encode();
        drop(first);
        let decoded = ServiceCheckpoint::decode(&bytes).expect("codec round trip");
        let mut restored = MonitoringService::restore(
            &baseline,
            Some(supervision()),
            &decoded,
            ExecConfig::threads(4),
        )
        .expect("restores");
        assert_eq!(restored.served(), 96);
        for chunk in &chunks[12..] {
            resumed_verdicts.extend(restored.process_feature_batch(chunk));
        }

        assert_eq!(resumed_verdicts, reference_verdicts);
        assert_eq!(
            restored.snapshot().without_timing(),
            reference.snapshot().without_timing(),
            "resumed telemetry must be bit-identical"
        );
    }

    #[test]
    fn restore_rejects_mismatched_supervision_and_models() {
        let (_, baseline, curve) = setup();
        let unsupervised =
            MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(1))
                .expect("deploys")
                .checkpoint();
        let supervised = MonitoringService::supervised(
            &baseline,
            SupervisorConfig::new(DeviceProfile::reference()),
            ServeConfig::new(2).with_seed(1),
        )
        .expect("deploys")
        .checkpoint();

        assert!(matches!(
            MonitoringService::restore(
                &baseline,
                Some(SupervisorConfig::new(DeviceProfile::reference())),
                &unsupervised,
                ExecConfig::serial(),
            ),
            Err(RestoreError::SupervisorUnexpected)
        ));
        assert!(matches!(
            MonitoringService::restore(&baseline, None, &supervised, ExecConfig::serial()),
            Err(RestoreError::SupervisorRequired)
        ));

        let mut foreign = unsupervised.clone();
        foreign.input_dim += 1;
        assert!(matches!(
            MonitoringService::restore(&baseline, None, &foreign, ExecConfig::serial()),
            Err(RestoreError::InputDimMismatch { .. })
        ));
    }

    #[test]
    fn supervised_deployment_serves_in_a_steady_world() {
        let (dataset, baseline, _) = setup();
        let supervision = SupervisorConfig::new(DeviceProfile::reference());
        let mut service = MonitoringService::supervised(
            &baseline,
            supervision,
            ServeConfig::new(3).with_seed(21),
        )
        .expect("reference device calibrates");
        let verdicts = service.process_stream(&stream(&dataset, 60));
        assert_eq!(verdicts.len(), 60);
        assert!(verdicts.iter().all(|v| !v.is_rejected()));
        assert_eq!(
            service.shard_healths(),
            vec![ShardHealth::Healthy; 3],
            "a steady environment never trips the supervisor"
        );
        let snapshot = service.snapshot();
        assert_eq!(snapshot.total_crashes(), 0);
        assert_eq!(snapshot.total_drift_events(), 0);
        assert!(snapshot.total_faults().multiplies > 0);
    }

    #[test]
    fn every_batch_accrues_deterministic_energy() {
        let (dataset, baseline, curve) = setup();
        let config = ServeConfig::new(2).with_seed(9).with_batch_size(8);
        let mut service =
            MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
        service.process_stream(&stream(&dataset, 64));
        let snapshot = service.snapshot();
        assert!(snapshot.total_energy_uj() > 0.0, "energy accrues per batch");
        for shard in &snapshot.shards {
            assert!(
                shard.energy_uj > 0.0,
                "shard {} accrued no energy",
                shard.shard
            );
            let power = shard
                .power_w
                .expect("busy power recorded after first batch");
            assert!(
                power > 0.0 && power < 11.0,
                "undervolted busy power {power} W out of range"
            );
        }
        // Unsupervised pools have no budget policy: no projection.
        assert_eq!(snapshot.power_budget_w, None);
        assert_eq!(snapshot.service_power_w, None);
        // Energy is a pure function of the stream: a second identical run
        // accrues bit-identical microjoules.
        let mut again = MonitoringService::deploy(&baseline, &curve, config).expect("valid config");
        again.process_stream(&stream(&dataset, 64));
        assert_eq!(again.snapshot().without_timing(), snapshot.without_timing());
    }

    #[test]
    fn power_budget_holds_on_a_hot_die_and_stays_thread_invariant() {
        use crate::supervisor::PowerBudgetPolicy;
        use shmd_volt::environment::EnvironmentConfig;

        let (dataset, baseline, _) = setup();
        let features: Vec<Vec<f32>> = (0..320)
            .map(|i| baseline.spec().extract(dataset.trace(i % dataset.len())))
            .collect();
        // A hot die (above the policy's cool threshold) disables the
        // opportunistic deepening phase: every retarget below is pure
        // budget pressure. The error-rate→offset curve is nearly vertical
        // this close to the freeze cliff, so retargeting only modulates a
        // narrow power window — the pool draws ~23.11 W at the service
        // target and ~23.05 W at the band cap. A budget between the two
        // is attainable only by deepening, which is exactly the mechanism
        // under test.
        let policy = PowerBudgetPolicy::new(23.08);
        let run = |exec: ExecConfig| {
            let supervision = SupervisorConfig::new(DeviceProfile::reference())
                .with_environment(EnvironmentConfig::steady(58.0))
                .with_power_budget(policy);
            let config = ServeConfig::new(3)
                .with_seed(23)
                .with_target_error_rate(0.2)
                .with_batch_size(8)
                .with_exec(exec);
            let mut service =
                MonitoringService::supervised(&baseline, supervision, config).expect("deploys");
            let mut verdicts = Vec::new();
            for chunk in features.chunks(8) {
                verdicts.extend(service.process_feature_batch(chunk));
            }
            (verdicts, service.snapshot().without_timing())
        };

        let (serial_verdicts, serial) = run(ExecConfig::serial());
        assert_eq!(serial.power_budget_w, Some(policy.budget_w));
        let projected = serial
            .service_power_w
            .expect("a budget policy publishes its projection");
        assert!(
            projected <= policy.budget_w + 1e-9,
            "projected {projected} W exceeds the {} W budget",
            policy.budget_w
        );
        // The pool idles above the budget at the service target, so the
        // scheduler must have deepened past it to fit...
        assert!(
            serial
                .shards
                .iter()
                .any(|s| s.power_target_er.is_some_and(|t| t > 0.2 + 1e-9)),
            "budget pressure must deepen some shard past the service target"
        );
        // ...and no schedule crossed the freeze threshold, or the physics
        // tick would have crashed the shard.
        assert_eq!(serial.total_crashes(), 0);
        assert!(serial.total_energy_uj() > 0.0);

        for threads in [2, 8] {
            let (verdicts, snapshot) = run(ExecConfig::threads(threads));
            assert_eq!(
                verdicts, serial_verdicts,
                "verdicts differ at {threads} threads"
            );
            assert_eq!(snapshot, serial, "telemetry differs at {threads} threads");
        }
    }

    #[test]
    fn cool_lightly_loaded_shards_deepen_to_the_band_cap_without_freezing() {
        use crate::supervisor::PowerBudgetPolicy;
        use shmd_volt::environment::EnvironmentConfig;

        let (dataset, baseline, _) = setup();
        // A generous budget: every retarget below is the opportunistic
        // phase riding a cool die, never budget pressure. The cool die is
        // exactly where the freeze floor is *shallowest* (temperature
        // inversion), so this also pins the floor clamp.
        let supervision = SupervisorConfig::new(DeviceProfile::reference())
            .with_environment(EnvironmentConfig::steady(45.0))
            .with_power_budget(PowerBudgetPolicy::new(100.0));
        let config = ServeConfig::new(3)
            .with_seed(31)
            .with_target_error_rate(0.2)
            .with_batch_size(8);
        let mut service =
            MonitoringService::supervised(&baseline, supervision, config).expect("deploys");
        let features: Vec<Vec<f32>> = (0..160)
            .map(|i| baseline.spec().extract(dataset.trace(i % dataset.len())))
            .collect();
        for chunk in features.chunks(8) {
            service.process_feature_batch(chunk);
        }
        let snapshot = service.snapshot();
        // One step per tick from 0.2 ratchets every shard to the 0.30
        // band cap within the run.
        for shard in &snapshot.shards {
            assert_eq!(
                shard.power_target_er,
                Some(0.30),
                "shard {} stopped short of the band cap",
                shard.shard
            );
            let power = shard.power_w.expect("busy power recorded");
            assert!(power < 11.0, "deepened shard still at nominal power");
        }
        assert_eq!(
            snapshot.total_crashes(),
            0,
            "floor clamp must prevent freezes"
        );
        assert!(
            projected_fits(&snapshot),
            "projection under the generous budget"
        );
    }

    fn projected_fits(snapshot: &TelemetrySnapshot) -> bool {
        match (snapshot.service_power_w, snapshot.power_budget_w) {
            (Some(projected), Some(budget)) => projected <= budget + 1e-9,
            _ => false,
        }
    }

    #[test]
    fn budget_state_survives_checkpoint_restore_bit_identically() {
        use crate::supervisor::PowerBudgetPolicy;
        use shmd_volt::environment::EnvironmentConfig;

        let (dataset, baseline, _) = setup();
        let supervision = || {
            SupervisorConfig::new(DeviceProfile::reference())
                .with_environment(EnvironmentConfig::drifting(49.0, 5))
                .with_power_budget(PowerBudgetPolicy::new(23.0))
        };
        let config = ServeConfig::new(3)
            .with_seed(17)
            .with_target_error_rate(0.2)
            .with_batch_size(8);
        let features: Vec<Vec<f32>> = (0..240)
            .map(|i| baseline.spec().extract(dataset.trace(i % dataset.len())))
            .collect();
        let chunks: Vec<&[Vec<f32>]> = features.chunks(8).collect();

        let mut reference =
            MonitoringService::supervised(&baseline, supervision(), config).expect("deploys");
        let mut reference_verdicts = Vec::new();
        for chunk in &chunks {
            reference_verdicts.extend(reference.process_feature_batch(chunk));
        }

        // Checkpoint mid-stream through the binary codec — with accrued
        // energy, live scheduler targets, and an open load window — and
        // resume at a different thread count.
        let mut first =
            MonitoringService::supervised(&baseline, supervision(), config).expect("deploys");
        let mut resumed_verdicts = Vec::new();
        for chunk in &chunks[..12] {
            resumed_verdicts.extend(first.process_feature_batch(chunk));
        }
        let bytes = first.checkpoint().encode();
        drop(first);
        let decoded = ServiceCheckpoint::decode(&bytes).expect("codec round trip");
        let mut restored = MonitoringService::restore(
            &baseline,
            Some(supervision()),
            &decoded,
            ExecConfig::threads(4),
        )
        .expect("restores");
        for chunk in &chunks[12..] {
            resumed_verdicts.extend(restored.process_feature_batch(chunk));
        }

        assert_eq!(resumed_verdicts, reference_verdicts);
        let resumed = restored.snapshot().without_timing();
        let uninterrupted = reference.snapshot().without_timing();
        assert_eq!(
            resumed, uninterrupted,
            "resumed energy/scheduler telemetry must be bit-identical"
        );
        assert!(uninterrupted.total_energy_uj() > 0.0);
        assert!(
            uninterrupted.service_power_w.is_some(),
            "budget projection survives the round trip"
        );
    }
}

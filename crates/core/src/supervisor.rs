//! Shard supervision: health states, a delivered-rate watchdog, seeded
//! chaos plans, and deterministic recovery schedules.
//!
//! §IX of the paper warns that undervolting-induced fault rates drift with
//! die temperature and that over-aggressive offsets freeze the core; a
//! serving deployment (see [`crate::serve`]) therefore cannot calibrate a
//! shard once and trust the operating point forever. This module provides
//! the pieces the [`crate::serve::MonitoringService`] uses to supervise
//! its pool:
//!
//! - [`ShardHealth`] — the per-shard health-state machine
//!   (`Healthy → Drifting → Crashed → Quarantined → Recovering → Healthy`,
//!   with `Degraded` as the budget-exhausted fallback);
//! - [`SupervisionRecord`] — one shard's supervision state: health,
//!   transition/crash/drift/retry counters, the watchdog's reference
//!   window, and the retry schedule;
//! - [`ChaosPlan`] / [`ChaosEvent`] — seeded fault-injection plans (shard
//!   crashes, hangs, thermal spikes) pinned to *stream positions*, never
//!   wall-clock, so a chaos run replays bit-identically at any thread
//!   count;
//! - [`SupervisorConfig`] / [`Supervisor`] — the supervision engine: a
//!   [`ThermalEnvironment`] world model, an [`AdaptiveVoltageController`]
//!   for watchdog-triggered recalibration, and the watchdog/retry policy.
//!
//! Two design rules keep supervision deterministic:
//!
//! 1. **Everything is a function of the stream position.** Temperature,
//!    chaos events, watchdog windows, and retry schedules are keyed on the
//!    batch index; the retry backoff is derived from the shard seed via
//!    [`derive_seed`], never from wall-clock time.
//! 2. **The watchdog trusts the fault stream, not a sensor.** The
//!    delivered error rate is estimated online from
//!    `FaultInjector::stats()` windows and compared against a reference
//!    window captured right after (re)calibration — the calibration target
//!    *as observed through this workload* — with a binomial confidence
//!    band. (Near-zero products absorb faults, so the observed rate sits
//!    below the model rate by a workload-dependent factor; judging against
//!    the post-calibration reference cancels that factor out.)

use crate::exec::derive_seed;
use crate::telemetry::FaultCounters;
use shmd_volt::calibration::{CalibrationError, Calibrator, DeviceProfile};
use shmd_volt::controller::{AdaptiveVoltageController, ControllerConfig};
use shmd_volt::environment::{EnvironmentConfig, ThermalEnvironment};
use std::fmt;

/// Tag mixed into chaos-plan seed derivations.
const CHAOS_TAG: u64 = 0xc405;

/// Tag mixed into retry-backoff seed derivations.
const RETRY_TAG: u64 = 0x00ba_c0ff;

/// One shard's health, as tracked by the supervisor.
///
/// ```text
///            watchdog drift              recalibration ok
///  Healthy ---------------> Drifting ----------------------+
///     |                        |                           v
///     | freeze / chaos         | recalibration failed   Recovering
///     v                        v                           |
///  Crashed --> Quarantined  Degraded                       | next step
///                 |  ^                                     v
///      retry ok   |  | retry failed (backoff)           Healthy
///                 v  |
///             Recovering     retries exhausted --> Degraded
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardHealth {
    /// Serving from its stochastic replica, delivered rate on target.
    Healthy,
    /// Serving, but the watchdog's delivered-rate estimate left the
    /// confidence band — a recalibration is in flight.
    Drifting,
    /// The operating point crossed the freeze threshold (or chaos killed
    /// the shard): the core hangs instead of computing. Transient — the
    /// supervisor quarantines a crashed shard in the same step.
    Crashed,
    /// Out of the serving set; traffic re-routed; retries scheduled.
    Quarantined,
    /// Rebuilt with a fresh generation seed; promoted to `Healthy` at the
    /// next supervision step.
    Recovering,
    /// Serving from the baseline fallback (no moving target): calibration
    /// unreachable or the retry budget ran out.
    Degraded,
}

impl ShardHealth {
    /// Whether a shard in this state is in the serving set (receives
    /// queries).
    pub fn is_serving(self) -> bool {
        !matches!(self, ShardHealth::Crashed | ShardHealth::Quarantined)
    }

    /// Stable lowercase name (used by telemetry JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Drifting => "drifting",
            ShardHealth::Crashed => "crashed",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Degraded => "degraded",
        }
    }

    /// Parses the form produced by [`ShardHealth::as_str`].
    pub fn parse(s: &str) -> Option<ShardHealth> {
        Some(match s {
            "healthy" => ShardHealth::Healthy,
            "drifting" => ShardHealth::Drifting,
            "crashed" => ShardHealth::Crashed,
            "quarantined" => ShardHealth::Quarantined,
            "recovering" => ShardHealth::Recovering,
            "degraded" => ShardHealth::Degraded,
            _ => return None,
        })
    }
}

impl fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One shard's supervision state: the health machine plus its counters,
/// the watchdog's window bookkeeping, and the retry schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct SupervisionRecord {
    pub(crate) health: ShardHealth,
    pub(crate) transitions: u64,
    pub(crate) crashes: u64,
    pub(crate) drift_events: u64,
    pub(crate) retries: u64,
    /// Failed retries since the shard was quarantined.
    pub(crate) attempt: u32,
    /// Batch index of the next scheduled retry, when quarantined.
    pub(crate) next_retry_batch: Option<u64>,
    /// Observed error rate of the reference window captured after the
    /// last (re)calibration — the watchdog's empirical target.
    pub(crate) reference_rate: Option<f64>,
    /// Fault counters at the start of the current watchdog window.
    pub(crate) window_mark: FaultCounters,
}

impl SupervisionRecord {
    /// A record starting in the given state (`Healthy` for a protected
    /// shard, `Degraded` for a deploy-time baseline fallback).
    pub fn starting(health: ShardHealth) -> SupervisionRecord {
        SupervisionRecord {
            health,
            transitions: 0,
            crashes: 0,
            drift_events: 0,
            retries: 0,
            attempt: 0,
            next_retry_batch: None,
            reference_rate: None,
            window_mark: FaultCounters::default(),
        }
    }

    /// Current health.
    pub fn health(&self) -> ShardHealth {
        self.health
    }

    /// Health transitions since deployment.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Crashes (freeze or chaos) since deployment.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Watchdog drift detections since deployment.
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Recalibration retries attempted since deployment.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Moves to `to`, counting the transition (a self-transition counts
    /// nothing).
    pub(crate) fn transition(&mut self, to: ShardHealth) {
        if self.health != to {
            self.health = to;
            self.transitions += 1;
        }
    }

    /// Resets the watchdog window state (called after any backend swap:
    /// the reference no longer describes the new operating point).
    pub(crate) fn reset_watchdog(&mut self, mark: FaultCounters) {
        self.reference_rate = None;
        self.window_mark = mark;
    }
}

impl Default for SupervisionRecord {
    fn default() -> SupervisionRecord {
        SupervisionRecord::starting(ShardHealth::Healthy)
    }
}

/// One scripted chaos event, pinned to a stream position (batch index).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosEvent {
    /// Kill a shard outright at the start of the given batch.
    Crash {
        /// Batch index at which the shard dies.
        batch: u64,
        /// Victim shard.
        shard: usize,
    },
    /// Wedge a shard as if its core froze (same supervisor-visible
    /// outcome as a crash, distinct cause in telemetry).
    Hang {
        /// Batch index at which the shard wedges.
        batch: u64,
        /// Victim shard.
        shard: usize,
    },
    /// Shift the ambient temperature by `delta_c` for `duration` batches
    /// (cooling spikes are the dangerous direction: temperature inversion
    /// makes a cold die slower, pushing fixed offsets toward freeze).
    DriftSpike {
        /// First batch of the spike.
        batch: u64,
        /// Temperature shift, °C (negative = cooling).
        delta_c: f64,
        /// Batches the spike lasts.
        duration: u64,
    },
}

/// A deterministic chaos schedule: events at chosen stream positions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan (no injected chaos).
    pub fn none() -> ChaosPlan {
        ChaosPlan { events: Vec::new() }
    }

    /// A plan from explicit events.
    pub fn new(events: Vec<ChaosEvent>) -> ChaosPlan {
        ChaosPlan { events }
    }

    /// Adds one event.
    #[must_use]
    pub fn with_event(mut self, event: ChaosEvent) -> ChaosPlan {
        self.events.push(event);
        self
    }

    /// A seeded random plan over `horizon` batches of a `shards`-wide
    /// pool: `crashes` shard kills and `spikes` cooling spikes, at
    /// positions derived from `seed` (bit-identical replays).
    pub fn seeded(
        seed: u64,
        shards: usize,
        horizon: u64,
        crashes: usize,
        spikes: usize,
    ) -> ChaosPlan {
        let shards = shards.max(1) as u64;
        let horizon = horizon.max(1);
        let mut events = Vec::new();
        for i in 0..crashes {
            let batch = derive_seed(seed, &[CHAOS_TAG, 1, i as u64]) % horizon;
            let shard = derive_seed(seed, &[CHAOS_TAG, 2, i as u64]) % shards;
            events.push(ChaosEvent::Crash {
                batch,
                shard: shard as usize,
            });
        }
        for i in 0..spikes {
            let batch = derive_seed(seed, &[CHAOS_TAG, 3, i as u64]) % horizon;
            let magnitude = derive_seed(seed, &[CHAOS_TAG, 4, i as u64]) % 16;
            let duration = 1 + derive_seed(seed, &[CHAOS_TAG, 5, i as u64]) % (horizon / 4).max(1);
            events.push(ChaosEvent::DriftSpike {
                batch,
                delta_c: -(10.0 + magnitude as f64),
                duration,
            });
        }
        ChaosPlan { events }
    }

    /// All scheduled events.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Kill events (crashes and hangs) scheduled anywhere in the inclusive
    /// batch window `[from, to]`, in schedule order. Cadenced supervision
    /// processes the whole window at its next supervision point so no
    /// scripted kill is lost between cadence ticks.
    pub(crate) fn kills_in(
        &self,
        from: u64,
        to: u64,
    ) -> impl Iterator<Item = (usize, &'static str)> + '_ {
        self.events.iter().filter_map(move |e| match *e {
            ChaosEvent::Crash { batch: b, shard } if from <= b && b <= to => {
                Some((shard, "chaos: shard crashed"))
            }
            ChaosEvent::Hang { batch: b, shard } if from <= b && b <= to => {
                Some((shard, "chaos: shard hung"))
            }
            _ => None,
        })
    }

    /// Sum of the temperature shifts of all spikes active at `batch` — a
    /// pure function of the batch index, so replays are bit-identical.
    pub(crate) fn spike_delta_at(&self, batch: u64) -> f64 {
        self.events
            .iter()
            .map(|e| match *e {
                ChaosEvent::DriftSpike {
                    batch: b,
                    delta_c,
                    duration,
                } if b <= batch && batch < b.saturating_add(duration) => delta_c,
                _ => 0.0,
            })
            .sum()
    }
}

/// Fleet-level energy policy: a service-wide busy-core-power budget the
/// supervisor enforces DVFS-style at every supervision point by
/// retargeting individual shards' error rates (deeper undervolt = lower
/// power *and* stronger moving-target defense — the paper's two wins move
/// together, so the budget enforcer deepens rather than throttles).
///
/// The scheduling rules, applied in phase order on the main thread in
/// shard-id order (so replays are bit-identical at any thread count):
///
/// 1. **Back off** shards the watchdog flagged this tick (their delivered
///    rate left the confidence band): one `step_er` shallower, floored at
///    `min_target_er` — a drifting operating point earns margin, not
///    aggression.
/// 2. **Deepen** healthy shards one `step_er` when the die is cool
///    (`temp ≤ cool_temp_c`; temperature inversion makes a cool die fault
///    *more* at a fixed offset, so a cool tick buys the same error rate at
///    a shallower voltage — and budget headroom at a deeper one) and the
///    shard is lightly loaded (its share of the window's queries is at
///    most `light_load ×` fair share), capped at `max_target_er`.
/// 3. **Enforce the budget**: while the projected busy core power summed
///    over serving shards exceeds `budget_w`, deepen healthy shards one
///    step each in shard-id order; stop when within budget or no shard
///    can move.
///
/// Every retarget's offset is clamped at the *calibration* guard-band
/// floor and at the physical
/// [`shmd_volt::environment::deepest_safe_offset`] for the current
/// temperature, so no scheduled operating point ever satisfies
/// [`shmd_volt::environment::freezes_at`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerBudgetPolicy {
    /// Service-wide busy core power budget, watts, summed over serving
    /// shards.
    pub budget_w: f64,
    /// Shallowest per-shard error-rate target the back-off phase may
    /// reach.
    pub min_target_er: f64,
    /// Deepest per-shard error-rate target the deepening phases may
    /// reach.
    pub max_target_er: f64,
    /// Error-rate step of one retarget.
    pub step_er: f64,
    /// Deepen only when the die temperature is at or below this, °C.
    pub cool_temp_c: f64,
    /// Deepen only shards whose window query share is at most this
    /// multiple of the fair share.
    pub light_load: f64,
}

impl PowerBudgetPolicy {
    /// A budget of `budget_w` watts with the default scheduling band:
    /// targets in `[0.05, 0.30]`, steps of `0.05`, deepening below the
    /// reference calibration temperature at up to 1.1× fair-share load.
    pub fn new(budget_w: f64) -> PowerBudgetPolicy {
        PowerBudgetPolicy {
            budget_w,
            min_target_er: 0.05,
            max_target_er: 0.30,
            step_er: 0.05,
            cool_temp_c: DeviceProfile::reference().temp_c,
            light_load: 1.1,
        }
    }

    /// Sets the per-shard error-rate target band.
    #[must_use]
    pub fn with_target_band(mut self, min_er: f64, max_er: f64) -> PowerBudgetPolicy {
        self.min_target_er = min_er;
        self.max_target_er = max_er;
        self
    }

    /// Sets the retarget step.
    #[must_use]
    pub fn with_step(mut self, step_er: f64) -> PowerBudgetPolicy {
        self.step_er = step_er;
        self
    }

    /// Sets the cool-die threshold for the deepening phase.
    #[must_use]
    pub fn with_cool_below(mut self, temp_c: f64) -> PowerBudgetPolicy {
        self.cool_temp_c = temp_c;
        self
    }

    /// Sets the light-load threshold (multiple of fair share).
    #[must_use]
    pub fn with_light_load(mut self, multiple: f64) -> PowerBudgetPolicy {
        self.light_load = multiple;
        self
    }

    /// Clamps an error-rate target into the policy band.
    pub fn clamp_target(&self, er: f64) -> f64 {
        er.clamp(self.min_target_er, self.max_target_er)
    }
}

/// Supervision policy for a [`crate::serve::MonitoringService`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The physical device the pool runs on (all shards share the die).
    pub device: DeviceProfile,
    /// The thermal world model the deployment is exposed to.
    pub environment: EnvironmentConfig,
    /// Scripted chaos, if any.
    pub chaos: ChaosPlan,
    /// Controller policy (guard band, recalibration threshold). The
    /// target error rate is overridden by the service's
    /// `ServeConfig::target_error_rate` at deploy time.
    pub controller: ControllerConfig,
    /// Sweep step (mV) for supervised recalibrations — coarser than the
    /// paper's 1 mV lab sweep because the supervisor recalibrates live.
    pub calibration_step_mv: i32,
    /// Minimum multiplies in a watchdog window before it is judged.
    pub watchdog_window: u64,
    /// Width of the confidence band, in binomial standard deviations of
    /// the window estimate.
    pub band_sigmas: f64,
    /// Absolute slack added to the band (guards the tiny-window regime
    /// and benign model retunes from thermal noise).
    pub band_floor: f64,
    /// Failed retries tolerated before a quarantined shard degrades to
    /// the baseline for good.
    pub max_retries: u32,
    /// Base retry backoff, in batches (exponential per attempt, jittered
    /// deterministically from the shard seed).
    pub backoff_base: u64,
    /// Whether a guard-band-clamped recalibration (delivered rate below
    /// target) counts as a successful recovery. `false` means the
    /// operator demands the full target rate: clamped retries fail and
    /// consume retry budget.
    pub allow_clamped_recovery: bool,
    /// Retune a live injector when the physically delivered rate moves
    /// further than this from the model rate.
    pub physics_epsilon: f64,
    /// Batches between supervision points. The default of 1 supervises
    /// every batch (the historical behaviour); a cadence of `c` runs the
    /// supervisor only when `batch % c == 0`, processing the scripted
    /// kill window accumulated since the previous point and sampling the
    /// thermal world at the supervision batch. Amortizes supervision cost
    /// at high throughput; still a pure function of the batch index, so
    /// replays stay bit-identical at any thread count.
    pub supervision_cadence: u64,
    /// Fleet energy policy: when set, the supervisor retargets shard
    /// error rates at every supervision point to hold the service-wide
    /// busy-core-power budget (see [`PowerBudgetPolicy`]).
    pub power_budget: Option<PowerBudgetPolicy>,
}

impl SupervisorConfig {
    /// Supervision of `device` in a lab-steady environment with no chaos:
    /// watchdog windows of 4096 multiplies with a 6σ + 0.02 band, 3
    /// retries at base backoff 2, clamped recoveries allowed.
    pub fn new(device: DeviceProfile) -> SupervisorConfig {
        let environment = EnvironmentConfig::steady(device.temp_c);
        SupervisorConfig {
            device,
            environment,
            chaos: ChaosPlan::none(),
            controller: ControllerConfig::default(),
            calibration_step_mv: 2,
            watchdog_window: 4096,
            band_sigmas: 6.0,
            band_floor: 0.02,
            max_retries: 3,
            backoff_base: 2,
            allow_clamped_recovery: true,
            physics_epsilon: 1e-4,
            supervision_cadence: 1,
            power_budget: None,
        }
    }

    /// Sets the thermal environment.
    #[must_use]
    pub fn with_environment(mut self, environment: EnvironmentConfig) -> SupervisorConfig {
        self.environment = environment;
        self
    }

    /// Sets the chaos plan.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> SupervisorConfig {
        self.chaos = chaos;
        self
    }

    /// Sets the controller policy (its target error rate is still
    /// overridden by the service's at deploy time).
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> SupervisorConfig {
        self.controller = controller;
        self
    }

    /// Sets the watchdog window and confidence band.
    #[must_use]
    pub fn with_watchdog(mut self, window: u64, sigmas: f64, floor: f64) -> SupervisorConfig {
        self.watchdog_window = window.max(1);
        self.band_sigmas = sigmas;
        self.band_floor = floor;
        self
    }

    /// Sets the retry budget and base backoff.
    #[must_use]
    pub fn with_retry_policy(mut self, max_retries: u32, backoff_base: u64) -> SupervisorConfig {
        self.max_retries = max_retries;
        self.backoff_base = backoff_base.max(1);
        self
    }

    /// Demands the full target rate on recovery: clamped recalibrations
    /// count as failed retries.
    #[must_use]
    pub fn require_full_target(mut self) -> SupervisorConfig {
        self.allow_clamped_recovery = false;
        self
    }

    /// Sets the supervision cadence in batches (clamped to at least 1).
    /// See [`SupervisorConfig::supervision_cadence`].
    #[must_use]
    pub fn with_supervision_cadence(mut self, cadence: u64) -> SupervisorConfig {
        self.supervision_cadence = cadence.max(1);
        self
    }

    /// Installs a fleet power budget (see [`PowerBudgetPolicy`]).
    #[must_use]
    pub fn with_power_budget(mut self, policy: PowerBudgetPolicy) -> SupervisorConfig {
        self.power_budget = Some(policy);
        self
    }
}

/// Batches until the retry numbered `attempt` (0-based) of the shard with
/// `shard_seed` fires: exponential in the attempt, plus a deterministic
/// jitter derived from the shard seed — two shards quarantined in the
/// same batch do not retry in lockstep, and nothing reads a clock.
///
/// The exponential is capped at attempt 6 (a 64× multiplier) and the
/// arithmetic saturates, so an arbitrarily large attempt count or base can
/// never shift or add past `u64::MAX` into a wrapped-around (nonsensically
/// *short*) delay — the worst case is a delay pinned at `u64::MAX`.
pub fn retry_backoff(shard_seed: u64, attempt: u32, base: u64) -> u64 {
    let base = base.max(1);
    let exponential = base.saturating_mul(1u64 << attempt.min(6));
    let jitter = derive_seed(shard_seed, &[RETRY_TAG, u64::from(attempt)]) % base;
    exponential.saturating_add(jitter)
}

/// The supervision engine owned by a supervised
/// [`crate::serve::MonitoringService`]: the world model (environment +
/// chaos) and the control loop (voltage controller + watchdog policy).
#[derive(Clone, Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    environment: ThermalEnvironment,
    controller: AdaptiveVoltageController,
}

impl Supervisor {
    /// Builds the engine: calibrates the controller on the configured
    /// device at the configured target rate.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] for an invalid target rate (an
    /// unreachable one clamps at the guard band instead).
    pub fn new(
        mut config: SupervisorConfig,
        target_error_rate: f64,
    ) -> Result<Supervisor, CalibrationError> {
        config.controller.target_error_rate = target_error_rate;
        let calibrator = Calibrator::new().with_step(config.calibration_step_mv.max(1));
        let controller = AdaptiveVoltageController::with_calibrator(
            config.device.clone(),
            config.controller,
            calibrator,
        )?;
        let environment = ThermalEnvironment::new(config.environment);
        Ok(Supervisor {
            config,
            environment,
            controller,
        })
    }

    /// The policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The voltage controller (most recent calibration).
    pub fn controller(&self) -> &AdaptiveVoltageController {
        &self.controller
    }

    /// Mutable access for watchdog-triggered recalibration.
    pub(crate) fn controller_mut(&mut self) -> &mut AdaptiveVoltageController {
        &mut self.controller
    }

    /// Die temperature at `batch`: the thermal environment plus any
    /// active chaos spikes. A pure function of the batch index.
    pub fn temperature_at(&self, batch: u64) -> f64 {
        self.environment.temperature_at(batch) + self.config.chaos.spike_delta_at(batch)
    }

    /// Half-width of the watchdog's acceptance band around the reference
    /// rate for a window of `multiplies` observations: `band_floor` +
    /// `band_sigmas` binomial standard deviations.
    pub fn watchdog_band(&self, reference_rate: f64, multiplies: u64) -> f64 {
        let n = multiplies.max(1) as f64;
        let p = reference_rate.clamp(1e-9, 1.0 - 1e-9);
        self.config.band_floor + self.config.band_sigmas * (p * (1.0 - p) / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_names_round_trip() {
        for h in [
            ShardHealth::Healthy,
            ShardHealth::Drifting,
            ShardHealth::Crashed,
            ShardHealth::Quarantined,
            ShardHealth::Recovering,
            ShardHealth::Degraded,
        ] {
            assert_eq!(ShardHealth::parse(h.as_str()), Some(h));
        }
        assert_eq!(ShardHealth::parse("zombie"), None);
    }

    #[test]
    fn serving_set_excludes_crashed_and_quarantined() {
        assert!(ShardHealth::Healthy.is_serving());
        assert!(ShardHealth::Drifting.is_serving());
        assert!(ShardHealth::Recovering.is_serving());
        assert!(ShardHealth::Degraded.is_serving());
        assert!(!ShardHealth::Crashed.is_serving());
        assert!(!ShardHealth::Quarantined.is_serving());
    }

    #[test]
    fn transitions_count_changes_only() {
        let mut r = SupervisionRecord::default();
        r.transition(ShardHealth::Healthy); // self-transition: no count
        assert_eq!(r.transitions(), 0);
        r.transition(ShardHealth::Drifting);
        r.transition(ShardHealth::Recovering);
        r.transition(ShardHealth::Healthy);
        assert_eq!(r.transitions(), 3);
        assert_eq!(r.health(), ShardHealth::Healthy);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let base = 2;
        for attempt in 0..5 {
            let a = retry_backoff(41, attempt, base);
            let b = retry_backoff(41, attempt, base);
            assert_eq!(a, b, "same seed and attempt must schedule identically");
            let floor = base << attempt;
            assert!(a >= floor && a < floor + base, "attempt {attempt}: {a}");
        }
        // The jitter decorrelates shards quarantined at the same batch.
        let schedules: std::collections::HashSet<u64> =
            (0..32).map(|seed| retry_backoff(seed, 0, 8)).collect();
        assert!(schedules.len() > 1, "jitter must vary across shard seeds");
    }

    #[test]
    fn backoff_shift_saturates() {
        // Attempts beyond 6 reuse the 64x multiplier instead of shifting
        // into overflow.
        let far = retry_backoff(1, 60, 4);
        assert!((4 << 6..(4 << 6) + 4).contains(&far));
    }

    #[test]
    fn backoff_never_overflows_into_a_short_delay() {
        // Attempt counts at and past the u64 bit width behave exactly like
        // the capped attempt 6 for ordinary bases...
        for attempt in [64, 65, 1000, u32::MAX] {
            let d = retry_backoff(1, attempt, 4);
            assert!(
                (4 << 6..(4 << 6) + 4).contains(&d),
                "attempt {attempt}: delay {d}"
            );
        }
        // ...and a base large enough that the 64x multiplier (or the
        // jitter add) would wrap saturates to u64::MAX instead of wrapping
        // into a nonsense near-zero delay.
        for base in [u64::MAX, u64::MAX / 2, 1 << 58] {
            for attempt in [6, 64, u32::MAX] {
                let d = retry_backoff(7, attempt, base);
                assert!(d >= base, "base {base}, attempt {attempt}: delay {d}");
            }
            assert_eq!(retry_backoff(7, 64, u64::MAX), u64::MAX);
        }
    }

    #[test]
    fn seeded_chaos_plans_replay_identically() {
        let a = ChaosPlan::seeded(9, 4, 100, 3, 2);
        let b = ChaosPlan::seeded(9, 4, 100, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        let c = ChaosPlan::seeded(10, 4, 100, 3, 2);
        assert_ne!(a, c, "a different seed must reschedule the chaos");
        for e in a.events() {
            match *e {
                ChaosEvent::Crash { batch, shard } => {
                    assert!(batch < 100);
                    assert!(shard < 4);
                }
                ChaosEvent::Hang { batch, shard } => {
                    assert!(batch < 100);
                    assert!(shard < 4);
                }
                ChaosEvent::DriftSpike {
                    batch,
                    delta_c,
                    duration,
                } => {
                    assert!(batch < 100);
                    assert!((-26.0..=-10.0).contains(&delta_c));
                    assert!(duration >= 1);
                }
            }
        }
    }

    #[test]
    fn spike_deltas_are_active_only_within_their_window() {
        let plan = ChaosPlan::none()
            .with_event(ChaosEvent::DriftSpike {
                batch: 10,
                delta_c: -15.0,
                duration: 5,
            })
            .with_event(ChaosEvent::DriftSpike {
                batch: 12,
                delta_c: -4.0,
                duration: 2,
            });
        assert_eq!(plan.spike_delta_at(9), 0.0);
        assert_eq!(plan.spike_delta_at(10), -15.0);
        assert_eq!(plan.spike_delta_at(12), -19.0, "overlapping spikes sum");
        assert_eq!(plan.spike_delta_at(14), -15.0);
        assert_eq!(plan.spike_delta_at(15), 0.0);
    }

    #[test]
    fn kills_at_matches_batch() {
        let plan = ChaosPlan::none()
            .with_event(ChaosEvent::Crash { batch: 3, shard: 1 })
            .with_event(ChaosEvent::Hang { batch: 3, shard: 2 })
            .with_event(ChaosEvent::Crash { batch: 5, shard: 0 });
        let at3: Vec<usize> = plan.kills_in(3, 3).map(|(s, _)| s).collect();
        assert_eq!(at3, vec![1, 2]);
        assert_eq!(plan.kills_in(4, 4).count(), 0);
    }

    #[test]
    fn kills_in_covers_the_whole_window() {
        let plan = ChaosPlan::none()
            .with_event(ChaosEvent::Crash { batch: 3, shard: 1 })
            .with_event(ChaosEvent::Hang { batch: 5, shard: 2 })
            .with_event(ChaosEvent::Crash { batch: 9, shard: 0 });
        let window: Vec<usize> = plan.kills_in(3, 8).map(|(s, _)| s).collect();
        assert_eq!(window, vec![1, 2], "inclusive window, schedule order");
        assert_eq!(plan.kills_in(4, 4).count(), 0);
        assert_eq!(plan.kills_in(0, 64).count(), 3);
    }

    #[test]
    fn supervisor_tracks_environment_and_spikes() {
        let device = DeviceProfile::reference();
        let config = SupervisorConfig::new(device).with_chaos(ChaosPlan::none().with_event(
            ChaosEvent::DriftSpike {
                batch: 2,
                delta_c: -20.0,
                duration: 3,
            },
        ));
        let sup = Supervisor::new(config, 0.1).expect("reference device reaches er 0.1");
        assert_eq!(sup.temperature_at(0), 49.0);
        assert_eq!(sup.temperature_at(2), 29.0);
        assert_eq!(sup.temperature_at(5), 49.0);
        assert!(sup.controller().offset().is_undervolt());
    }

    #[test]
    fn power_budget_policy_clamps_into_its_band() {
        let policy = PowerBudgetPolicy::new(30.0)
            .with_target_band(0.08, 0.25)
            .with_step(0.02)
            .with_cool_below(45.0)
            .with_light_load(1.0);
        assert_eq!(policy.budget_w, 30.0);
        assert_eq!(policy.clamp_target(0.01), 0.08);
        assert_eq!(policy.clamp_target(0.9), 0.25);
        assert_eq!(policy.clamp_target(0.1), 0.1);
        let config = SupervisorConfig::new(DeviceProfile::reference()).with_power_budget(policy);
        assert_eq!(config.power_budget, Some(policy));
        assert_eq!(
            SupervisorConfig::new(DeviceProfile::reference()).power_budget,
            None
        );
    }

    #[test]
    fn watchdog_band_shrinks_with_window_size() {
        let sup = Supervisor::new(SupervisorConfig::new(DeviceProfile::reference()), 0.1)
            .expect("constructs");
        let wide = sup.watchdog_band(0.08, 512);
        let narrow = sup.watchdog_band(0.08, 1 << 20);
        assert!(wide > narrow);
        assert!(narrow >= sup.config().band_floor);
    }

    #[test]
    fn invalid_target_rate_fails_construction() {
        let err = Supervisor::new(SupervisorConfig::new(DeviceProfile::reference()), f64::NAN);
        assert!(matches!(err, Err(CalibrationError::InvalidErrorRate(_))));
    }
}

//! The Stochastic-HMD: the baseline model inferred on an undervolted core.

use crate::baseline::BaselineHmd;
use crate::detector::Detector;
use shmd_ann::network::{BatchScratch, InferenceScratch, QuantizedNetwork};
use shmd_volt::calibration::CalibrationCurve;
use shmd_volt::fault::{
    FaultInjector, FaultModel, FaultModelError, InjectorState, LaneCorruptor, ProductCorruptor,
};
use shmd_volt::voltage::Millivolts;
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;

/// A Stochastic-HMD: the *unmodified* trained model whose inference runs on
/// an undervolted multiplier, turning its decision boundary into a moving
/// target.
///
/// Construction never retrains or alters the model ("no retraining or fine
/// tuning is needed") — it only attaches a fault model, the software twin of
/// writing an undervolt offset to MSR `0x150`.
#[derive(Clone, Debug)]
pub struct StochasticHmd {
    name: String,
    spec: FeatureSpec,
    quantized: QuantizedNetwork,
    injector: FaultInjector,
    error_rate: f64,
    offset: Option<Millivolts>,
    threshold: f64,
    /// Reusable activation buffers: the steady-state query path allocates
    /// nothing (see [`InferenceScratch`]).
    scratch: InferenceScratch,
}

/// Near-zero immunity width for the Q16.16 inference datapath.
///
/// The injector sees raw Q32.32 products, but the datapath only latches the
/// upper 32-bit Q16.16 word: faults below [`shmd_fixed::FRAC_BITS`] are
/// discarded by the normalising shift, and the immune-LSB zone of the §II
/// characterisation (the bottom 8 of 64 output columns, whose carry chains
/// are too short to violate timing) scales to the bottom 4 columns of the
/// 32-bit latched word. Products narrower than `16 + 4` raw bits — latched
/// magnitude below 2⁻¹² of unit scale — therefore never fault, which is how
/// the paper's stated limitation manifests end-to-end (§IX: "models that
/// operate on numbers that are very close to zero are not protected").
const DATAPATH_NEAR_ZERO_WIDTH: u32 =
    shmd_fixed::FRAC_BITS + (shmd_volt::multiplier::IMMUNE_LSBS as u32) / 2;

/// Adapts a fault model to the Q16.16 datapath's latch: immunity is judged
/// on latched bits, never below the raw-integer default.
fn for_datapath(model: FaultModel) -> FaultModel {
    let width = model.near_zero_width().max(DATAPATH_NEAR_ZERO_WIDTH);
    model.with_near_zero_width(width)
}

/// The dynamic state of a [`StochasticHmd`], for checkpointing. Everything
/// the detector holds beyond its (immutable, re-derivable) baseline model:
/// the injector snapshot carries the fault law, RNG stream, statistics and
/// in-flight gap, so [`StochasticHmd::from_state`] resumes scoring
/// bit-identically against the same baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct StochasticHmdState {
    /// Display name (encodes how the detector was constructed).
    pub name: String,
    /// The effective multiplication error rate.
    pub error_rate: f64,
    /// The physical undervolt offset, when calibrated.
    pub offset: Option<Millivolts>,
    /// Decision threshold.
    pub threshold: f64,
    /// Complete injector snapshot.
    pub injector: InjectorState,
}

impl StochasticHmd {
    /// Protects a baseline HMD with the abstract error-rate knob — the
    /// quantity the paper's space exploration sweeps. `er = 0.1` is the
    /// paper's selected operating point.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is outside
    /// `[0, 1]`.
    pub fn from_baseline(
        base: &BaselineHmd,
        er: f64,
        seed: u64,
    ) -> Result<StochasticHmd, FaultModelError> {
        let model = for_datapath(FaultModel::from_error_rate(er)?);
        Ok(StochasticHmd {
            name: format!("stochastic({}, er={er})", Detector::name(base)),
            spec: base.spec(),
            quantized: base.quantized().clone(),
            injector: FaultInjector::new(model, seed),
            error_rate: er,
            offset: None,
            threshold: Detector::threshold(base),
            scratch: InferenceScratch::new(),
        })
    }

    /// Protects a baseline HMD with an explicit fault model (for ablation
    /// studies — e.g. varying the carry-ripple tail).
    pub fn with_fault_model(base: &BaselineHmd, model: FaultModel, seed: u64) -> StochasticHmd {
        let model = for_datapath(model);
        let er = model.error_rate();
        StochasticHmd {
            name: format!("stochastic({}, custom er={er})", Detector::name(base)),
            spec: base.spec(),
            quantized: base.quantized().clone(),
            injector: FaultInjector::new(model, seed),
            error_rate: er,
            offset: None,
            threshold: Detector::threshold(base),
            scratch: InferenceScratch::new(),
        }
    }

    /// Protects a baseline HMD by running it at a physical undervolt offset
    /// on a calibrated device.
    ///
    /// # Errors
    ///
    /// Propagates fault-model construction errors (cannot occur for offsets
    /// within the calibrated range).
    pub fn at_offset(
        base: &BaselineHmd,
        curve: &CalibrationCurve,
        offset: Millivolts,
        seed: u64,
    ) -> Result<StochasticHmd, FaultModelError> {
        let model = for_datapath(curve.fault_model_at(offset)?);
        let er = model.error_rate();
        Ok(StochasticHmd {
            name: format!(
                "stochastic({}, {offset} on {})",
                Detector::name(base),
                curve.device()
            ),
            spec: base.spec(),
            quantized: base.quantized().clone(),
            injector: FaultInjector::new(model, seed),
            error_rate: er,
            offset: Some(offset),
            threshold: Detector::threshold(base),
            scratch: InferenceScratch::new(),
        })
    }

    /// The effective multiplication error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// The physical undervolt offset, when constructed from a calibration
    /// curve.
    pub fn offset(&self) -> Option<Millivolts> {
        self.offset
    }

    /// The feature specification this detector consumes.
    pub fn spec(&self) -> FeatureSpec {
        self.spec
    }

    /// Accumulated fault statistics of the injector.
    pub fn fault_stats(&self) -> shmd_volt::fault::FaultStats {
        self.injector.stats()
    }

    /// The live fault model — the law an external corruption stream (e.g.
    /// a per-query [`shmd_volt::fault::FaultStream`]) must borrow to score
    /// under this detector's current calibration. Tracks
    /// [`StochasticHmd::retune`]: after a retune, newly constructed
    /// streams sample under the new error rate.
    pub fn fault_model(&self) -> &FaultModel {
        self.injector.model()
    }

    /// Retunes the live fault model to a new delivered error rate — the
    /// software twin of the physical world moving while the applied offset
    /// stays put (die temperature drifted, so the same undervolt now
    /// delivers a different fault rate). The injector keeps its RNG stream
    /// and accumulated statistics; only the fault law changes.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is outside
    /// `[0, 1]`.
    pub fn retune(&mut self, er: f64) -> Result<(), FaultModelError> {
        let model = for_datapath(FaultModel::from_error_rate(er)?);
        self.injector.set_model(model);
        self.error_rate = er;
        Ok(())
    }

    /// Moves the detector to a new physical operating point in place — the
    /// software twin of writing a fresh undervolt offset to MSR `0x150`
    /// under a live detector (the budget scheduler's retarget path). Like
    /// [`StochasticHmd::retune`], the injector keeps its RNG stream and
    /// accumulated statistics; the fault law and the recorded offset
    /// change together so subsequent physics sweeps reason from the new
    /// operating point.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `delivered_er` is
    /// outside `[0, 1]`.
    pub fn apply_offset(
        &mut self,
        offset: Millivolts,
        delivered_er: f64,
    ) -> Result<(), FaultModelError> {
        let model = for_datapath(FaultModel::from_error_rate(delivered_er)?);
        self.injector.set_model(model);
        self.error_rate = delivered_er;
        self.offset = Some(offset);
        Ok(())
    }

    /// Snapshots the detector's dynamic state for checkpointing. The
    /// baseline model itself (weights, feature spec) is not captured — a
    /// restore rebuilds those from the baseline the service redeploys with.
    pub fn export_state(&self) -> StochasticHmdState {
        StochasticHmdState {
            name: self.name.clone(),
            error_rate: self.error_rate,
            offset: self.offset,
            threshold: self.threshold,
            injector: self.injector.export_state(),
        }
    }

    /// Rebuilds a detector from an [`StochasticHmd::export_state`] snapshot
    /// against the baseline it was originally protecting. The injector —
    /// fault law, RNG position, statistics, in-flight gap — is restored
    /// verbatim (the snapshot's model already carries the datapath's
    /// near-zero width; it is *not* re-derived), so the resumed score
    /// stream is bit-identical to the original's.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModelError::InvalidState`] when the snapshot fails
    /// validation (see [`FaultInjector::from_state`]).
    pub fn from_state(
        base: &BaselineHmd,
        state: StochasticHmdState,
    ) -> Result<StochasticHmd, FaultModelError> {
        let injector = FaultInjector::from_state(state.injector)?;
        Ok(StochasticHmd {
            name: state.name,
            spec: base.spec(),
            quantized: base.quantized().clone(),
            injector,
            error_rate: state.error_rate,
            offset: state.offset,
            threshold: state.threshold,
            scratch: InferenceScratch::new(),
        })
    }

    /// Scores an already-extracted feature vector (one stochastic
    /// detection).
    ///
    /// This is the deployment hot path: the injector is statically
    /// dispatched into the MAC loop and the activations live in the
    /// detector's [`InferenceScratch`], so a steady stream of queries
    /// performs no heap allocation and no per-MAC RNG draws (geometric gap
    /// sampling inside [`FaultInjector`]).
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the network input.
    pub fn score_features(&mut self, features: &[f32]) -> f64 {
        let out = self
            .quantized
            .infer_into(features, &mut self.injector, &mut self.scratch);
        f64::from(out[0].to_f32())
    }

    /// Scores a feature vector through an *external* corruption stream,
    /// leaving the detector untouched (`&self`): the caller owns the fault
    /// stream and the scratch space, so many workers can score against one
    /// shared detector concurrently. Pair with a
    /// [`shmd_volt::fault::FaultStream`] borrowed from
    /// [`StochasticHmd::fault_model`] for the lock-free serving path.
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the network input.
    pub fn score_features_with<C: ProductCorruptor + ?Sized>(
        &self,
        features: &[f32],
        corruptor: &mut C,
        scratch: &mut InferenceScratch,
    ) -> f64 {
        let out = self.quantized.infer_into(features, corruptor, scratch);
        f64::from(out[0].to_f32())
    }

    /// Scores `LANES` feature vectors simultaneously through one
    /// structure-of-arrays forward pass — the batched counterpart of
    /// [`StochasticHmd::score_features_with`]. Lane `l`'s score is
    /// bit-identical to a scalar `score_features_with(features[l], ..)`
    /// driven by the corruptor stream lane `l` wraps, because the batched
    /// datapath advances every lane through the same per-multiplication
    /// schedule as a scalar inference.
    ///
    /// # Panics
    ///
    /// Panics if any lane's feature width mismatches the network input.
    pub fn score_features_batch_with<const LANES: usize, C>(
        &self,
        features: &[&[f32]; LANES],
        corruptor: &mut C,
        scratch: &mut BatchScratch<LANES>,
    ) -> [f64; LANES]
    where
        C: LaneCorruptor<LANES> + ?Sized,
    {
        let out = self
            .quantized
            .infer_batch_into(features, corruptor, scratch);
        std::array::from_fn(|l| f64::from(out[l].to_f32()))
    }
}

impl Detector for StochasticHmd {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&mut self, trace: &Trace) -> f64 {
        let features = self.spec.extract(trace);
        self.score_features(&features)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_baseline, HmdTrainConfig};
    use shmd_ml::metrics::ConfusionMatrix;
    use shmd_volt::calibration::{Calibrator, DeviceProfile};
    use shmd_workload::dataset::{Dataset, DatasetConfig};

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(100), 21);
        let split = dataset.three_fold_split(0);
        let hmd = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("training succeeds");
        (dataset, hmd)
    }

    #[test]
    fn invalid_error_rate_is_rejected() {
        let (_, base) = setup();
        assert!(StochasticHmd::from_baseline(&base, 1.5, 0).is_err());
    }

    #[test]
    fn zero_error_rate_matches_baseline() {
        let (dataset, base) = setup();
        let mut protected = StochasticHmd::from_baseline(&base, 0.0, 0).expect("valid");
        for i in 0..20 {
            let t = dataset.trace(i);
            assert_eq!(
                protected.score(t),
                base.score_features(&base.spec().extract(t))
            );
        }
    }

    #[test]
    fn accuracy_loss_is_small_at_er_0_1() {
        // Paper headline: < 2% accuracy loss at the er = 0.1 operating
        // point (we allow a slightly wider band on the small test dataset).
        let (dataset, base) = setup();
        let split = dataset.three_fold_split(0);
        let mut baseline_m = ConfusionMatrix::new();
        for &i in split.testing() {
            let f = base.spec().extract(dataset.trace(i));
            baseline_m.record(
                base.classify_features(&f).is_malware(),
                dataset.program(i).is_malware(),
            );
        }
        let mut protected = StochasticHmd::from_baseline(&base, 0.1, 7).expect("valid");
        let mut protected_m = ConfusionMatrix::new();
        for _ in 0..5 {
            for &i in split.testing() {
                protected_m.record(
                    protected.classify(dataset.trace(i)).is_malware(),
                    dataset.program(i).is_malware(),
                );
            }
        }
        let loss = baseline_m.accuracy() - protected_m.accuracy();
        assert!(
            loss < 0.06,
            "accuracy loss {loss} too high (baseline {}, stochastic {})",
            baseline_m.accuracy(),
            protected_m.accuracy()
        );
    }

    #[test]
    fn apply_offset_moves_the_operating_point_and_keeps_the_stream() {
        let (dataset, base) = setup();
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let mut hmd = StochasticHmd::at_offset(&base, &curve, offset, 5).expect("valid");
        hmd.score(dataset.trace(0));
        let stats_before = hmd.fault_stats();
        let deeper = curve.offset_for_error_rate(0.3).expect("reachable");
        hmd.apply_offset(deeper, 0.3).expect("valid rate");
        assert_eq!(hmd.offset(), Some(deeper));
        assert_eq!(hmd.error_rate(), 0.3);
        // Like retune, the move keeps the injector's RNG stream and its
        // accumulated statistics.
        assert_eq!(hmd.fault_stats().multiplies, stats_before.multiplies);
        assert!(hmd.apply_offset(deeper, 1.5).is_err());
    }

    #[test]
    fn borrowed_stream_scoring_matches_the_owned_injector() {
        use shmd_volt::fault::FaultStream;
        let (dataset, base) = setup();
        let mut owned = StochasticHmd::from_baseline(&base, 0.3, 17).expect("valid");
        let shared = StochasticHmd::from_baseline(&base, 0.3, 17).expect("valid");
        let mut scratch = InferenceScratch::new();
        // A fresh FaultStream re-seeded from the detector seed walks the
        // same RNG stream as the just-constructed owned injector, so the
        // first query must score bit-identically; later queries continue
        // the owned stream while each borrowed stream restarts, so only
        // the first is comparable.
        let features = base.spec().extract(dataset.trace(0));
        let mut stream = FaultStream::new(shared.fault_model(), 17);
        assert_eq!(
            shared.score_features_with(&features, &mut stream, &mut scratch),
            owned.score_features(&features),
        );
        // `&self` scoring leaves the shared detector's stats untouched.
        assert_eq!(shared.fault_stats().multiplies, 0);
        assert!(stream.stats().multiplies > 0);
    }

    #[test]
    fn scores_vary_across_queries() {
        let (dataset, base) = setup();
        let mut protected = StochasticHmd::from_baseline(&base, 0.5, 3).expect("valid");
        let t = dataset.trace(1);
        let scores: std::collections::HashSet<u64> =
            (0..50).map(|_| protected.score(t).to_bits()).collect();
        assert!(scores.len() > 1, "moving-target defense must vary scores");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let (dataset, base) = setup();
        let mut a = StochasticHmd::from_baseline(&base, 0.3, 5).expect("valid");
        let mut b = StochasticHmd::from_baseline(&base, 0.3, 5).expect("valid");
        for i in 0..10 {
            assert_eq!(a.score(dataset.trace(i)), b.score(dataset.trace(i)));
        }
    }

    #[test]
    fn physical_offset_construction_works() {
        let (dataset, base) = setup();
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let mut protected = StochasticHmd::at_offset(&base, &curve, offset, 1).expect("valid");
        assert_eq!(protected.offset(), Some(offset));
        assert!(protected.error_rate() > 0.05);
        let s = protected.score(dataset.trace(0));
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn protection_inherits_the_baseline_threshold() {
        let (_, base) = setup();
        let tuned = base.clone().with_threshold(0.7);
        let protected = StochasticHmd::from_baseline(&tuned, 0.1, 4).expect("valid");
        assert_eq!(Detector::threshold(&protected), 0.7);
    }

    #[test]
    fn retune_changes_the_fault_law_in_place() {
        let (dataset, base) = setup();
        let mut protected = StochasticHmd::from_baseline(&base, 0.0, 9).expect("valid");
        let t = dataset.trace(0);
        protected.score(t);
        assert_eq!(protected.fault_stats().faulty, 0, "er 0 never faults");
        protected.retune(0.5).expect("valid rate");
        assert_eq!(protected.error_rate(), 0.5);
        for _ in 0..5 {
            protected.score(t);
        }
        let after = protected.fault_stats();
        assert!(after.faulty > 0, "retuned injector must fault");
        assert_eq!(
            after.multiplies as usize,
            6 * base.quantized().mac_count(),
            "statistics survive the model swap"
        );
        assert!(protected.retune(1.5).is_err());
    }

    #[test]
    fn exported_state_resumes_scoring_bit_identically() {
        let (dataset, base) = setup();
        let mut original = StochasticHmd::from_baseline(&base, 0.3, 17).expect("valid");
        // Burn partway into the stream, including a retune, so the snapshot
        // captures a non-trivial RNG position and a non-default fault law.
        for i in 0..30 {
            original.score(dataset.trace(i % dataset.len()));
        }
        original.retune(0.45).expect("valid rate");
        for i in 0..7 {
            original.score(dataset.trace(i));
        }
        let mut resumed =
            StochasticHmd::from_state(&base, original.export_state()).expect("valid state");
        assert_eq!(Detector::name(&resumed), Detector::name(&original));
        assert_eq!(resumed.error_rate(), original.error_rate());
        assert_eq!(resumed.fault_stats(), original.fault_stats());
        for i in 0..60 {
            let t = dataset.trace(i % dataset.len());
            assert_eq!(
                original.score(t).to_bits(),
                resumed.score(t).to_bits(),
                "score streams diverged at query {i}"
            );
        }
        assert_eq!(resumed.fault_stats(), original.fault_stats());
    }

    #[test]
    fn fault_stats_accumulate() {
        let (dataset, base) = setup();
        let mut protected = StochasticHmd::from_baseline(&base, 0.2, 2).expect("valid");
        protected.score(dataset.trace(0));
        let stats = protected.fault_stats();
        assert_eq!(stats.multiplies as usize, base.quantized().mac_count());
    }
}

//! The shared byte-codec discipline of every binary format in this crate.
//!
//! [`crate::checkpoint`] and [`crate::wire`] both speak length-prefixed,
//! little-endian, FNV-1a-checksummed binary formats that must survive
//! hostile bytes: truncations, bit flips, and length-field lies all decode
//! to typed errors, never a panic, and never an allocation beyond what the
//! input itself can justify. This module is the one implementation of that
//! discipline — a bounds-checked [`Reader`], an append-only [`Writer`],
//! and the [`fnv1a`] checksum — so the two formats cannot drift apart in
//! how carefully they treat untrusted input.
//!
//! Everything here is `pub(crate)`: the codec is an implementation detail
//! of the formats built on it, not an API.

#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::fmt;

/// A low-level decode failure, format-agnostic: either the input ended
/// before the structure did, or a structural field (option tag, UTF-8
/// string) is self-inconsistent. The formats built on the codec convert
/// this into their own typed error via `From`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CodecError {
    /// The input ended before the structure did.
    Truncated,
    /// A structural field is self-inconsistent.
    Corrupted(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input is truncated"),
            CodecError::Corrupted(what) => write!(f, "input is corrupted: {what}"),
        }
    }
}

/// FNV-1a 64-bit, the integrity checksum of checkpoints, journal records,
/// and wire frames. Not cryptographic — it detects torn writes and bit
/// rot, not adversaries (both the journal and the wire live inside the
/// TEE's trust boundary; hostile bytes must fail *safely*, not
/// undetectably).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over a one-byte record kind followed by its payload, without
/// materialising the concatenation — the journal-record checksum.
pub(crate) fn fnv1a_tagged(kind: u8, payload: &[u8]) -> u64 {
    let mut hash = fnv1a(&[kind]);
    for &b in payload {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian byte sink.
pub(crate) struct Writer {
    pub(crate) bytes: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { bytes: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }

    pub(crate) fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source. Every read checks the
/// remaining input first; no method can panic, for any input.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        match self.bytes.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(CodecError::Truncated),
        }
    }

    /// `take` for a compile-time size, returning the array directly.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        match self.take(N)?.first_chunk::<N>() {
            Some(chunk) => Ok(*chunk),
            // Unreachable — take(N) returned exactly N bytes — but a typed
            // error costs nothing and keeps this module panic-free by
            // construction rather than by argument.
            None => Err(CodecError::Truncated),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_array::<1>()?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(CodecError::Corrupted(format!("invalid option tag {tag}"))),
        }
    }

    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            tag => Err(CodecError::Corrupted(format!("invalid option tag {tag}"))),
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::Truncated);
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| CodecError::Corrupted("string is not utf-8".to_string()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.f64(-0.125);
        w.f32(3.5);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.opt_f64(Some(f64::NEG_INFINITY));
        w.string("héllo");
        let mut r = Reader::new(&w.bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.f32().unwrap(), 3.5);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(f64::NEG_INFINITY));
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_past_the_end_fail_typed() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        // The failed read consumes nothing.
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u8(), Err(CodecError::Truncated));
    }

    #[test]
    fn string_length_lies_are_bounded_by_remaining_input() {
        // A string claiming u32::MAX bytes over a 4-byte input must fail
        // before any allocation.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let mut r = Reader::new(&w.bytes);
        assert_eq!(r.string(), Err(CodecError::Truncated));
    }

    #[test]
    fn tagged_checksum_matches_concatenation() {
        let payload = [1u8, 2, 3, 4, 5];
        let mut concat = vec![7u8];
        concat.extend_from_slice(&payload);
        assert_eq!(fnv1a_tagged(7, &payload), fnv1a(&concat));
    }
}

//! Synthetic malware/benign workload and dataset generation.
//!
//! The paper's dataset (§IV) consists of 3 000 malware samples from five
//! families (backdoors, rogues, password stealers, trojans, worms) and 600
//! benign programs (browsers, text editors, system utilities, CPU
//! benchmarks), traced with Intel Pin on an isolated Windows machine. The
//! extracted features are "based on the frequency of executed instruction
//! categories; based on Intel's sub-grouping of instructions".
//!
//! Neither the malware corpus nor Pin is available here, so this crate
//! generates the closest synthetic equivalent that exercises the same code
//! paths (see DESIGN.md §2): each program family has a characteristic
//! instruction-category mix; each program perturbs its family profile
//! log-normally; each execution window draws category counts around the
//! program profile. Generation is **deterministic per seed** — the paper
//! verifies its own feature collection is deterministic, and tests here
//! assert the same property.
//!
//! # Example
//!
//! ```
//! use shmd_workload::dataset::{Dataset, DatasetConfig};
//! use shmd_workload::features::FeatureSpec;
//!
//! let dataset = Dataset::generate(&DatasetConfig::small(60), 42);
//! let folds = dataset.three_fold_split(0);
//! let victim = dataset.labeled_features(folds.victim_training(), FeatureSpec::frequency());
//! assert_eq!(victim.inputs.len(), folds.victim_training().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dataset;
pub mod drift;
pub mod export;
pub mod families;
pub mod features;
pub mod isa;
pub mod program;
pub mod trace;

pub use dataset::{Dataset, DatasetConfig, LabeledFeatures, ThreeFoldSplit};
pub use drift::{DriftError, DriftSchedule, DriftSegment, DriftStream};
pub use families::{BenignFamily, MalwareFamily, ProgramClass};
pub use features::{DetectionPeriod, FeatureKind, FeatureSpec, FEATURE_DIM};
pub use isa::InsnCategory;
pub use program::Program;
pub use trace::{Trace, TraceConfig};

//! Instruction categories, modelled on Intel's instruction sub-groups.
//!
//! The paper's features count executed instructions per category, "based on
//! Intel's sub-grouping of instructions, e.g., binary arithmetic, control
//! transfer, and system instructions sub-groups".

use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction category (Intel SDM sub-group granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum InsnCategory {
    /// ADD/SUB/MUL/DIV and friends.
    BinaryArithmetic = 0,
    /// AND/OR/XOR/NOT.
    Logical = 1,
    /// SHL/SHR/ROL/ROR.
    ShiftRotate = 2,
    /// BT/BSF/SETcc — bit and byte instructions.
    BitByte = 3,
    /// MOV/CMOV/XCHG — data transfer.
    DataTransfer = 4,
    /// JMP/Jcc/CALL/RET — control transfer.
    ControlTransfer = 5,
    /// MOVS/CMPS/SCAS — string operations.
    StringOp = 6,
    /// CLC/STC/PUSHF — flag control.
    FlagControl = 7,
    /// LDS/LES and segment-register moves.
    SegmentRegister = 8,
    /// PUSH/POP/ENTER/LEAVE — stack manipulation.
    Stack = 9,
    /// SSE/AVX vector instructions.
    Simd = 10,
    /// x87/scalar floating point.
    FloatingPoint = 11,
    /// CPUID/RDMSR/syscall entry — system instructions.
    System = 12,
    /// IN/OUT and port I/O.
    Io = 13,
    /// LOCK-prefixed and fence instructions.
    Synchronization = 14,
    /// NOP/prefetch/everything else.
    Misc = 15,
}

/// Number of instruction categories.
pub const CATEGORY_COUNT: usize = 16;

impl InsnCategory {
    /// All categories in index order.
    pub const ALL: [InsnCategory; CATEGORY_COUNT] = [
        InsnCategory::BinaryArithmetic,
        InsnCategory::Logical,
        InsnCategory::ShiftRotate,
        InsnCategory::BitByte,
        InsnCategory::DataTransfer,
        InsnCategory::ControlTransfer,
        InsnCategory::StringOp,
        InsnCategory::FlagControl,
        InsnCategory::SegmentRegister,
        InsnCategory::Stack,
        InsnCategory::Simd,
        InsnCategory::FloatingPoint,
        InsnCategory::System,
        InsnCategory::Io,
        InsnCategory::Synchronization,
        InsnCategory::Misc,
    ];

    /// The category's dense index in `0..CATEGORY_COUNT`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The category with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CATEGORY_COUNT`.
    pub fn from_index(index: usize) -> InsnCategory {
        InsnCategory::ALL[index]
    }

    /// A short mnemonic name.
    pub fn name(self) -> &'static str {
        match self {
            InsnCategory::BinaryArithmetic => "binarith",
            InsnCategory::Logical => "logical",
            InsnCategory::ShiftRotate => "shift",
            InsnCategory::BitByte => "bitbyte",
            InsnCategory::DataTransfer => "dataxfer",
            InsnCategory::ControlTransfer => "ctrlxfer",
            InsnCategory::StringOp => "string",
            InsnCategory::FlagControl => "flag",
            InsnCategory::SegmentRegister => "segment",
            InsnCategory::Stack => "stack",
            InsnCategory::Simd => "simd",
            InsnCategory::FloatingPoint => "float",
            InsnCategory::System => "system",
            InsnCategory::Io => "io",
            InsnCategory::Synchronization => "sync",
            InsnCategory::Misc => "misc",
        }
    }
}

impl fmt::Display for InsnCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_round_trip() {
        for (i, cat) in InsnCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
            assert_eq!(InsnCategory::from_index(i), *cat);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            InsnCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), CATEGORY_COUNT);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(InsnCategory::System.to_string(), "system");
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = InsnCategory::from_index(CATEGORY_COUNT);
    }
}

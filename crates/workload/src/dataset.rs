//! Dataset assembly and the paper's three-fold split.
//!
//! §IV: "The dataset was divided evenly into 3-folds, which are victim
//! training, attacker training, and testing. ... the malware types and the
//! benign application types were distributed evenly and randomly across the
//! folds to ensure that the datasets are not biased."

use crate::families::{BenignFamily, MalwareFamily, ProgramClass};
use crate::features::FeatureSpec;
use crate::program::Program;
use crate::trace::{Trace, TraceConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shape of a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Total malware samples (spread evenly over the five families).
    pub malware_count: usize,
    /// Total benign samples (spread evenly over the four families).
    pub benign_count: usize,
    /// Trace shape per program.
    pub trace: TraceConfig,
}

impl DatasetConfig {
    /// The paper's dataset: 3 000 malware + 600 benign.
    pub fn paper() -> DatasetConfig {
        DatasetConfig {
            malware_count: 3000,
            benign_count: 600,
            trace: TraceConfig::default(),
        }
    }

    /// A scaled-down dataset preserving the paper's 5:1 class ratio
    /// (`malware_count` malware, `malware_count / 5` benign) — for tests
    /// and fast experiment runs.
    pub fn small(malware_count: usize) -> DatasetConfig {
        DatasetConfig {
            malware_count,
            benign_count: (malware_count / 5).max(MalwareFamily::ALL.len()),
            trace: TraceConfig::default(),
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> DatasetConfig {
        DatasetConfig::paper()
    }
}

/// Feature matrix + labels, ready for any of the model crates.
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledFeatures {
    /// One feature vector per sample.
    pub inputs: Vec<Vec<f32>>,
    /// `true` = malware.
    pub labels: Vec<bool>,
}

impl LabeledFeatures {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// The three folds: victim training, attacker training, testing.
///
/// `rotation` (0–2) cycles which fold plays which role, implementing the
/// paper's 3-fold cross-validation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreeFoldSplit {
    folds: [Vec<usize>; 3],
    rotation: usize,
}

impl ThreeFoldSplit {
    /// Indices the victim trains on.
    pub fn victim_training(&self) -> &[usize] {
        &self.folds[self.rotation % 3]
    }

    /// Indices the attacker trains proxies on.
    pub fn attacker_training(&self) -> &[usize] {
        &self.folds[(self.rotation + 1) % 3]
    }

    /// Held-out evaluation indices.
    pub fn testing(&self) -> &[usize] {
        &self.folds[(self.rotation + 2) % 3]
    }
}

/// A generated dataset: programs plus their (deterministic) traces.
#[derive(Clone, Debug)]
pub struct Dataset {
    config: DatasetConfig,
    seed: u64,
    programs: Vec<Program>,
    traces: Vec<Trace>,
}

impl Dataset {
    /// Generates the dataset; deterministic per `(config, seed)`.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Dataset {
        let mut programs = Vec::with_capacity(config.malware_count + config.benign_count);
        let mut id = 0u32;
        for i in 0..config.malware_count {
            let family = MalwareFamily::ALL[i % MalwareFamily::ALL.len()];
            programs.push(Program::generate(id, ProgramClass::Malware(family), seed));
            id += 1;
        }
        for i in 0..config.benign_count {
            let family = BenignFamily::ALL[i % BenignFamily::ALL.len()];
            programs.push(Program::generate(id, ProgramClass::Benign(family), seed));
            id += 1;
        }
        let traces = programs.iter().map(|p| p.trace(&config.trace)).collect();
        Dataset {
            config: *config,
            seed,
            programs,
            traces,
        }
    }

    /// Generates a dataset from explicit `(class, count)` groups (used by
    /// [`crate::builder::DatasetBuilder`]).
    pub(crate) fn from_groups(
        groups: &[(ProgramClass, usize)],
        trace: &TraceConfig,
        seed: u64,
    ) -> Dataset {
        let mut programs = Vec::new();
        let mut id = 0u32;
        let (mut malware_count, mut benign_count) = (0usize, 0usize);
        for &(class, count) in groups {
            for _ in 0..count {
                programs.push(Program::generate(id, class, seed));
                id += 1;
            }
            if class.is_malware() {
                malware_count += count;
            } else {
                benign_count += count;
            }
        }
        let traces = programs.iter().map(|p| p.trace(trace)).collect();
        Dataset {
            config: DatasetConfig {
                malware_count,
                benign_count,
                trace: *trace,
            },
            seed,
            programs,
            traces,
        }
    }

    /// The generation config.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when the dataset has no programs.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// All programs.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The program at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn program(&self, idx: usize) -> &Program {
        &self.programs[idx]
    }

    /// The trace of program `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn trace(&self, idx: usize) -> &Trace {
        &self.traces[idx]
    }

    /// Stratified three-fold split: each family's samples are shuffled
    /// (deterministically) and dealt round-robin into the folds, so types
    /// are "distributed evenly and randomly across the folds".
    pub fn three_fold_split(&self, rotation: usize) -> ThreeFoldSplit {
        let mut folds: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        // Group indices per class (strata).
        let mut strata: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        for (i, p) in self.programs.iter().enumerate() {
            strata.entry(p.class().to_string()).or_default().push(i);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xf01d_5eed_0000_0000);
        for (_, mut indices) in strata {
            indices.shuffle(&mut rng);
            for (k, idx) in indices.into_iter().enumerate() {
                folds[k % 3].push(idx);
            }
        }
        ThreeFoldSplit { folds, rotation }
    }

    /// Extracts features for a set of program indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn labeled_features(&self, indices: &[usize], spec: FeatureSpec) -> LabeledFeatures {
        let mut inputs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            inputs.push(spec.extract(&self.traces[i]));
            labels.push(self.programs[i].is_malware());
        }
        LabeledFeatures { inputs, labels }
    }

    /// Indices of all malware programs within `indices`.
    pub fn malware_indices<'a>(&'a self, indices: &'a [usize]) -> impl Iterator<Item = usize> + 'a {
        indices
            .iter()
            .copied()
            .filter(move |&i| self.programs[i].is_malware())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(&DatasetConfig::small(30), 5)
    }

    #[test]
    fn paper_config_matches_section_iv() {
        let c = DatasetConfig::paper();
        assert_eq!(c.malware_count, 3000);
        assert_eq!(c.benign_count, 600);
    }

    #[test]
    fn generation_counts() {
        let d = tiny();
        assert_eq!(d.len(), 30 + 6);
        let malware = d.programs().iter().filter(|p| p.is_malware()).count();
        assert_eq!(malware, 30);
    }

    #[test]
    fn families_are_balanced() {
        let d = tiny();
        let mut per_family = std::collections::HashMap::new();
        for p in d.programs() {
            *per_family.entry(p.class().to_string()).or_insert(0usize) += 1;
        }
        for &f in &MalwareFamily::ALL {
            assert_eq!(per_family[&format!("malware/{f}")], 6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DatasetConfig::small(20), 9);
        let b = Dataset::generate(&DatasetConfig::small(20), 9);
        assert_eq!(a.programs(), b.programs());
        assert_eq!(a.trace(3), b.trace(3));
    }

    #[test]
    fn folds_partition_the_dataset() {
        let d = tiny();
        let split = d.three_fold_split(0);
        let mut all: Vec<usize> = split
            .victim_training()
            .iter()
            .chain(split.attacker_training())
            .chain(split.testing())
            .copied()
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..d.len()).collect();
        assert_eq!(all, expected, "folds must partition without overlap");
    }

    #[test]
    fn folds_are_roughly_even() {
        let d = tiny();
        let split = d.three_fold_split(0);
        let sizes = [
            split.victim_training().len(),
            split.attacker_training().len(),
            split.testing().len(),
        ];
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 9, "fold sizes {sizes:?}");
    }

    #[test]
    fn folds_are_stratified() {
        let d = Dataset::generate(&DatasetConfig::small(60), 2);
        let split = d.three_fold_split(0);
        for fold in [
            split.victim_training(),
            split.attacker_training(),
            split.testing(),
        ] {
            let malware = fold.iter().filter(|&&i| d.program(i).is_malware()).count();
            let ratio = malware as f64 / fold.len() as f64;
            assert!(
                (0.70..0.95).contains(&ratio),
                "fold malware ratio {ratio} should match dataset (≈0.83)"
            );
        }
    }

    #[test]
    fn rotation_cycles_roles() {
        let d = tiny();
        let r0 = d.three_fold_split(0);
        let r1 = d.three_fold_split(1);
        assert_eq!(r0.attacker_training(), r1.victim_training());
        assert_eq!(r0.testing(), r1.attacker_training());
    }

    #[test]
    fn labeled_features_align() {
        let d = tiny();
        let split = d.three_fold_split(0);
        let lf = d.labeled_features(split.testing(), FeatureSpec::frequency());
        assert_eq!(lf.len(), split.testing().len());
        for (k, &idx) in split.testing().iter().enumerate() {
            assert_eq!(lf.labels[k], d.program(idx).is_malware());
        }
    }

    #[test]
    fn malware_indices_filters() {
        let d = tiny();
        let all: Vec<usize> = (0..d.len()).collect();
        let count = d.malware_indices(&all).count();
        assert_eq!(count, 30);
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // Sanity check that an HMD can exist at all: class centroids of the
        // frequency features must be farther apart than typical
        // within-class spread.
        let d = Dataset::generate(&DatasetConfig::small(100), 3);
        let all: Vec<usize> = (0..d.len()).collect();
        let lf = d.labeled_features(&all, FeatureSpec::frequency());
        let dim = lf.inputs[0].len();
        let mut centroid = [vec![0.0f64; dim], vec![0.0f64; dim]];
        let mut counts = [0usize; 2];
        for (x, &y) in lf.inputs.iter().zip(&lf.labels) {
            let c = usize::from(y);
            counts[c] += 1;
            for (m, &v) in centroid[c].iter_mut().zip(x) {
                *m += f64::from(v);
            }
        }
        for (c, n) in centroid.iter_mut().zip(counts) {
            for m in c.iter_mut() {
                *m /= n as f64;
            }
        }
        let dist: f64 = centroid[0]
            .iter()
            .zip(&centroid[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.02, "centroid distance {dist} too small to detect");
    }
}

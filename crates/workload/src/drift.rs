//! Seeded mid-stream workload drift: Dirichlet family-mix shifts.
//!
//! A fleet's workload is not stationary — a patch Tuesday floods the
//! stream with system utilities, a worm outbreak skews it toward one
//! malware family. The monitoring service's delivered-rate watchdog must
//! tell *workload* drift (the mix of programs changes, the physics does
//! not) apart from *physics* drift (the delivered fault rate moves). This
//! module generates the former on demand: a [`DriftSchedule`] is a
//! sequence of segments whose family mixes are drawn from a symmetric
//! Dirichlet distribution, and a [`DriftStream`] maps a stream position
//! to a concrete program index of a [`Dataset`] — a **pure function of
//! `(seed, position)`**, so a serial replay and an 8-thread replay of the
//! same arena see byte-identical query streams, and a checkpoint/restore
//! resumes mid-segment without any stream state to save.
//!
//! # Example
//!
//! ```
//! use shmd_workload::dataset::{Dataset, DatasetConfig};
//! use shmd_workload::drift::{DriftSchedule, DriftStream};
//!
//! let dataset = Dataset::generate(&DatasetConfig::small(60), 1);
//! let schedule = DriftSchedule::dirichlet(3, 100, 1.0, 42)?;
//! let stream = DriftStream::new(&dataset, &schedule, 7)?;
//! // Positions map deterministically to dataset program indices.
//! assert_eq!(stream.pick(5), stream.pick(5));
//! assert!(stream.pick(5) < dataset.len());
//! # Ok::<(), shmd_workload::drift::DriftError>(())
//! ```

use crate::dataset::Dataset;
use crate::families::{BenignFamily, MalwareFamily, ProgramClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The golden-gamma increment of splitmix64: decorrelates per-position
/// draw streams derived from one seed.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Domain tag separating drift-stream seeds from every other consumer of
/// the master seed.
const DRIFT_TAG: u64 = 0xd21f_7000_0000_0000;

/// Error building a [`DriftSchedule`] or [`DriftStream`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriftError {
    /// The schedule has no segments.
    EmptySchedule,
    /// A segment covers zero queries.
    EmptySegment(usize),
    /// A segment's weight vector length differs from the class list's.
    WeightWidth {
        /// The offending segment.
        segment: usize,
        /// Weights supplied.
        got: usize,
        /// Classes in the schedule.
        expected: usize,
    },
    /// No program of any scheduled class exists in the dataset.
    NoPrograms,
}

impl fmt::Display for DriftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriftError::EmptySchedule => f.write_str("drift schedule has no segments"),
            DriftError::EmptySegment(i) => write!(f, "drift segment {i} covers zero queries"),
            DriftError::WeightWidth {
                segment,
                got,
                expected,
            } => write!(
                f,
                "segment {segment} has {got} weights for {expected} classes"
            ),
            DriftError::NoPrograms => {
                f.write_str("the dataset holds no program of any scheduled class")
            }
        }
    }
}

impl std::error::Error for DriftError {}

/// Every program class, in a fixed canonical order (benign families
/// first, then malware families) — the default class list of a
/// [`DriftSchedule`].
pub const ALL_CLASSES: [ProgramClass; 9] = [
    ProgramClass::Benign(BenignFamily::Browser),
    ProgramClass::Benign(BenignFamily::TextEditor),
    ProgramClass::Benign(BenignFamily::SystemUtility),
    ProgramClass::Benign(BenignFamily::CpuBenchmark),
    ProgramClass::Malware(MalwareFamily::Backdoor),
    ProgramClass::Malware(MalwareFamily::Rogue),
    ProgramClass::Malware(MalwareFamily::PasswordStealer),
    ProgramClass::Malware(MalwareFamily::Trojan),
    ProgramClass::Malware(MalwareFamily::Worm),
];

/// One stationary stretch of the stream: a family mix held for a span of
/// queries.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftSegment {
    /// Queries the segment covers. The final segment of a schedule
    /// extends indefinitely past its span.
    pub queries: u64,
    /// Per-class sampling weights, parallel to the schedule's class
    /// list. Normalised at stream-build time.
    pub weights: Vec<f64>,
}

/// A piecewise-stationary family-mix schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftSchedule {
    classes: Vec<ProgramClass>,
    segments: Vec<DriftSegment>,
}

impl DriftSchedule {
    /// Builds a schedule from explicit segments over a class list.
    ///
    /// # Errors
    ///
    /// [`DriftError::EmptySchedule`] without segments,
    /// [`DriftError::EmptySegment`] for a zero-query segment,
    /// [`DriftError::WeightWidth`] when a weight vector's length differs
    /// from the class list's.
    pub fn new(
        classes: Vec<ProgramClass>,
        segments: Vec<DriftSegment>,
    ) -> Result<DriftSchedule, DriftError> {
        if segments.is_empty() {
            return Err(DriftError::EmptySchedule);
        }
        for (i, segment) in segments.iter().enumerate() {
            if segment.queries == 0 {
                return Err(DriftError::EmptySegment(i));
            }
            if segment.weights.len() != classes.len() {
                return Err(DriftError::WeightWidth {
                    segment: i,
                    got: segment.weights.len(),
                    expected: classes.len(),
                });
            }
        }
        Ok(DriftSchedule { classes, segments })
    }

    /// Draws `segments` family mixes from a symmetric
    /// Dirichlet(`concentration`) over [`ALL_CLASSES`], each held for
    /// `queries_per_segment` queries. Lower concentrations produce
    /// spikier mixes (one family dominates a segment); `1.0` is uniform
    /// over the simplex. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`DriftError::EmptySchedule`] when `segments == 0`,
    /// [`DriftError::EmptySegment`] when `queries_per_segment == 0`.
    pub fn dirichlet(
        segments: usize,
        queries_per_segment: u64,
        concentration: f64,
        seed: u64,
    ) -> Result<DriftSchedule, DriftError> {
        let classes = ALL_CLASSES.to_vec();
        let alpha = if concentration.is_finite() && concentration > 0.0 {
            concentration
        } else {
            1.0
        };
        let mut out = Vec::with_capacity(segments);
        for s in 0..segments {
            let mut rng =
                StdRng::seed_from_u64(seed ^ DRIFT_TAG ^ (s as u64).wrapping_mul(GOLDEN_GAMMA));
            let mut weights: Vec<f64> =
                (0..classes.len()).map(|_| gamma(&mut rng, alpha)).collect();
            let total: f64 = weights.iter().sum();
            if total > 0.0 {
                for w in &mut weights {
                    *w /= total;
                }
            } else {
                let n = weights.len() as f64;
                weights.iter_mut().for_each(|w| *w = 1.0 / n);
            }
            out.push(DriftSegment {
                queries: queries_per_segment,
                weights,
            });
        }
        DriftSchedule::new(classes, out)
    }

    /// The schedule's class list.
    pub fn classes(&self) -> &[ProgramClass] {
        &self.classes
    }

    /// The schedule's segments.
    pub fn segments(&self) -> &[DriftSegment] {
        &self.segments
    }

    /// Index of the segment covering a stream position; positions past
    /// the last segment's span stay in the last segment.
    pub fn segment_at(&self, position: u64) -> usize {
        let mut start = 0u64;
        for (i, segment) in self.segments.iter().enumerate() {
            let end = start.saturating_add(segment.queries);
            if position < end {
                return i;
            }
            start = end;
        }
        self.segments.len() - 1
    }

    /// Total queries the schedule spans before the final mix holds.
    pub fn span(&self) -> u64 {
        self.segments
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.queries))
    }
}

/// A drifting query stream over a [`Dataset`]: position → program index,
/// as a pure function of the stream seed.
#[derive(Clone, Debug)]
pub struct DriftStream<'a> {
    dataset: &'a Dataset,
    schedule: &'a DriftSchedule,
    /// Per-segment cumulative weights over classes that exist in the
    /// dataset; classes with no programs carry zero mass.
    cumulative: Vec<Vec<f64>>,
    /// Program indices of the dataset grouped per schedule class.
    members: Vec<Vec<usize>>,
    seed: u64,
}

impl<'a> DriftStream<'a> {
    /// Binds a schedule to a dataset.
    ///
    /// Classes scheduled but absent from the dataset are dropped from
    /// the mix (their mass renormalises over the present classes).
    ///
    /// # Errors
    ///
    /// [`DriftError::NoPrograms`] when no scheduled class has any
    /// program in the dataset.
    pub fn new(
        dataset: &'a Dataset,
        schedule: &'a DriftSchedule,
        seed: u64,
    ) -> Result<DriftStream<'a>, DriftError> {
        let members: Vec<Vec<usize>> = schedule
            .classes
            .iter()
            .map(|&class| {
                dataset
                    .programs()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.class() == class)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        if members.iter().all(Vec::is_empty) {
            return Err(DriftError::NoPrograms);
        }
        let cumulative = schedule
            .segments
            .iter()
            .map(|segment| {
                let mut acc = 0.0;
                segment
                    .weights
                    .iter()
                    .zip(&members)
                    .map(|(&w, m)| {
                        if !m.is_empty() && w > 0.0 {
                            acc += w;
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(DriftStream {
            dataset,
            schedule,
            cumulative,
            members,
            seed,
        })
    }

    /// The program index queried at a stream position. Pure in
    /// `(seed, position)`: any thread, any replay, any resume computes
    /// the same index.
    pub fn pick(&self, position: u64) -> usize {
        let segment = self.schedule.segment_at(position);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ DRIFT_TAG ^ position.wrapping_mul(GOLDEN_GAMMA));
        let cumulative = &self.cumulative[segment];
        let total = cumulative.last().copied().unwrap_or(0.0);
        let class = if total > 0.0 {
            let u: f64 = rng.gen::<f64>() * total;
            cumulative.iter().position(|&c| u < c).unwrap_or(0)
        } else {
            // Degenerate segment (all scheduled mass on absent classes):
            // fall back to any present class.
            self.members.iter().position(|m| !m.is_empty()).unwrap_or(0)
        };
        let members = if self.members[class].is_empty() {
            // The drawn class has no programs: walk to the next present
            // class deterministically.
            self.members
                .iter()
                .cycle()
                .skip(class)
                .find(|m| !m.is_empty())
                .map_or(&[][..], Vec::as_slice)
        } else {
            self.members[class].as_slice()
        };
        members[rng.gen_range(0..members.len())]
    }

    /// The class queried at a stream position.
    pub fn class_at(&self, position: u64) -> ProgramClass {
        self.dataset.program(self.pick(position)).class()
    }
}

/// Marsaglia–Tsang Gamma(`alpha`, 1) sampler; the `alpha < 1` boost uses
/// `Gamma(alpha) = Gamma(alpha + 1) · U^(1/alpha)`.
fn gamma(rng: &mut StdRng, alpha: f64) -> f64 {
    if alpha < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = crate::program::gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::small(90), 11)
    }

    #[test]
    fn dirichlet_mixes_are_distributions() {
        let schedule = DriftSchedule::dirichlet(4, 50, 0.5, 3).expect("schedule");
        assert_eq!(schedule.segments().len(), 4);
        for segment in schedule.segments() {
            let total: f64 = segment.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
            assert!(segment.weights.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_shift_across_segments() {
        let a = DriftSchedule::dirichlet(3, 100, 1.0, 9).expect("a");
        let b = DriftSchedule::dirichlet(3, 100, 1.0, 9).expect("b");
        assert_eq!(a, b);
        // Adjacent segments draw genuinely different mixes.
        assert_ne!(a.segments()[0].weights, a.segments()[1].weights);
        let c = DriftSchedule::dirichlet(3, 100, 1.0, 10).expect("c");
        assert_ne!(a.segments()[0].weights, c.segments()[0].weights);
    }

    #[test]
    fn segment_lookup_covers_the_stream_and_saturates() {
        let schedule = DriftSchedule::dirichlet(3, 10, 1.0, 1).expect("schedule");
        assert_eq!(schedule.segment_at(0), 0);
        assert_eq!(schedule.segment_at(9), 0);
        assert_eq!(schedule.segment_at(10), 1);
        assert_eq!(schedule.segment_at(29), 2);
        // Past the span, the final mix holds.
        assert_eq!(schedule.segment_at(1_000_000), 2);
        assert_eq!(schedule.span(), 30);
    }

    #[test]
    fn picks_are_pure_functions_of_seed_and_position() {
        let d = dataset();
        let schedule = DriftSchedule::dirichlet(2, 40, 1.0, 5).expect("schedule");
        let stream = DriftStream::new(&d, &schedule, 21).expect("stream");
        let forward: Vec<usize> = (0..80).map(|p| stream.pick(p)).collect();
        let backward: Vec<usize> = (0..80).rev().map(|p| stream.pick(p)).collect();
        let reversed: Vec<usize> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed, "order of evaluation must not matter");
        assert!(forward.iter().all(|&i| i < d.len()));
        let other = DriftStream::new(&d, &schedule, 22).expect("stream 2");
        let shifted: Vec<usize> = (0..80).map(|p| other.pick(p)).collect();
        assert_ne!(forward, shifted, "seed must matter");
    }

    #[test]
    fn mix_shift_is_visible_in_the_class_stream() {
        let d = dataset();
        // Two hand-built segments: all browsers, then all worms.
        let mut first = vec![0.0; ALL_CLASSES.len()];
        first[0] = 1.0; // Browser
        let mut second = vec![0.0; ALL_CLASSES.len()];
        second[8] = 1.0; // Worm
        let schedule = DriftSchedule::new(
            ALL_CLASSES.to_vec(),
            vec![
                DriftSegment {
                    queries: 50,
                    weights: first,
                },
                DriftSegment {
                    queries: 50,
                    weights: second,
                },
            ],
        )
        .expect("schedule");
        let stream = DriftStream::new(&d, &schedule, 4).expect("stream");
        for p in 0..50 {
            assert_eq!(
                stream.class_at(p),
                ProgramClass::Benign(BenignFamily::Browser),
                "position {p}"
            );
        }
        for p in 50..100 {
            assert_eq!(
                stream.class_at(p),
                ProgramClass::Malware(MalwareFamily::Worm),
                "position {p}"
            );
        }
    }

    #[test]
    fn absent_classes_renormalise_rather_than_wedge() {
        use crate::builder::DatasetBuilder;
        // A dataset with only worms and system utilities.
        let d = DatasetBuilder::new()
            .add(ProgramClass::Malware(MalwareFamily::Worm), 20)
            .add(ProgramClass::Benign(BenignFamily::SystemUtility), 20)
            .seed(2)
            .build()
            .expect("dataset");
        let schedule = DriftSchedule::dirichlet(2, 30, 1.0, 6).expect("schedule");
        let stream = DriftStream::new(&d, &schedule, 3).expect("stream");
        for p in 0..60 {
            let class = stream.class_at(p);
            assert!(
                class == ProgramClass::Malware(MalwareFamily::Worm)
                    || class == ProgramClass::Benign(BenignFamily::SystemUtility),
                "position {p} drew absent class {class}"
            );
        }
    }

    #[test]
    fn typed_errors_for_degenerate_schedules() {
        assert_eq!(
            DriftSchedule::new(ALL_CLASSES.to_vec(), vec![]),
            Err(DriftError::EmptySchedule)
        );
        assert_eq!(
            DriftSchedule::dirichlet(2, 0, 1.0, 1),
            Err(DriftError::EmptySegment(0))
        );
        let bad = DriftSchedule::new(
            ALL_CLASSES.to_vec(),
            vec![DriftSegment {
                queries: 10,
                weights: vec![1.0; 3],
            }],
        );
        assert_eq!(
            bad,
            Err(DriftError::WeightWidth {
                segment: 0,
                got: 3,
                expected: 9,
            })
        );
    }
}

//! Execution traces: per-window instruction-category counts.

use crate::isa::CATEGORY_COUNT;
use serde::{Deserialize, Serialize};

/// Sampling interval structure of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of detection windows per trace.
    pub windows: usize,
    /// Instructions executed per window.
    pub insns_per_window: u32,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            windows: 16,
            insns_per_window: 10_000,
        }
    }
}

/// An instruction-category count trace: one count vector per detection
/// window — the raw material every feature extractor consumes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trace {
    windows: Vec<[u32; CATEGORY_COUNT]>,
}

impl Trace {
    /// Wraps raw window counts.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty.
    pub fn from_windows(windows: Vec<[u32; CATEGORY_COUNT]>) -> Trace {
        assert!(!windows.is_empty(), "a trace needs at least one window");
        Trace { windows }
    }

    /// The per-window category counts.
    #[inline]
    pub fn windows(&self) -> &[[u32; CATEGORY_COUNT]] {
        &self.windows
    }

    /// Number of windows.
    #[inline]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Always `false` (construction rejects empty traces).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total category counts over the whole trace.
    pub fn total_counts(&self) -> [u64; CATEGORY_COUNT] {
        let mut total = [0u64; CATEGORY_COUNT];
        for w in &self.windows {
            for (t, &c) in total.iter_mut().zip(w) {
                *t += u64::from(c);
            }
        }
        total
    }

    /// Total instructions in the trace.
    pub fn total_insns(&self) -> u64 {
        self.total_counts().iter().sum()
    }

    /// Frequencies of one window (counts normalised to sum 1).
    pub fn window_frequencies(window: &[u32; CATEGORY_COUNT]) -> [f64; CATEGORY_COUNT] {
        let total: u64 = window.iter().map(|&c| u64::from(c)).sum();
        let mut out = [0.0; CATEGORY_COUNT];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(window) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Returns a new trace with extra instructions injected, spread evenly
    /// across windows — how evasive malware pads its execution: the payload
    /// (the original counts) is preserved, only *additional* instructions
    /// appear.
    #[must_use]
    pub fn with_injected(&self, extra: &[u32; CATEGORY_COUNT]) -> Trace {
        let n = self.windows.len() as u32;
        let windows = self
            .windows
            .iter()
            .enumerate()
            .map(|(w, counts)| {
                let mut out = *counts;
                for (c, (&e, slot)) in extra.iter().zip(out.iter_mut()).enumerate() {
                    let _ = c;
                    let base = e / n;
                    let remainder = e % n;
                    let share = base + u32::from((w as u32) < remainder);
                    *slot = slot.saturating_add(share);
                }
                out
            })
            .collect();
        Trace { windows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut w0 = [0u32; CATEGORY_COUNT];
        let mut w1 = [0u32; CATEGORY_COUNT];
        w0[0] = 10;
        w0[1] = 30;
        w1[0] = 20;
        w1[2] = 20;
        Trace::from_windows(vec![w0, w1])
    }

    #[test]
    fn totals() {
        let t = sample_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_insns(), 80);
        let totals = t.total_counts();
        assert_eq!(totals[0], 30);
        assert_eq!(totals[1], 30);
        assert_eq!(totals[2], 20);
    }

    #[test]
    fn window_frequencies_sum_to_one() {
        let t = sample_trace();
        for w in t.windows() {
            let f = Trace::window_frequencies(w);
            assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_window_frequencies_are_zero() {
        let f = Trace::window_frequencies(&[0u32; CATEGORY_COUNT]);
        assert_eq!(f.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn injection_preserves_payload() {
        let t = sample_trace();
        let mut extra = [0u32; CATEGORY_COUNT];
        extra[4] = 100;
        let injected = t.with_injected(&extra);
        // Original counts are still present — the payload is intact.
        for (orig, new) in t.windows().iter().zip(injected.windows()) {
            for (o, n) in orig.iter().zip(new) {
                assert!(n >= o);
            }
        }
        assert_eq!(injected.total_counts()[4], 100);
        assert_eq!(injected.total_insns(), t.total_insns() + 100);
    }

    #[test]
    fn injection_spreads_remainder() {
        let t = sample_trace();
        let mut extra = [0u32; CATEGORY_COUNT];
        extra[0] = 3; // 3 across 2 windows: 2 then 1
        let injected = t.with_injected(&extra);
        assert_eq!(injected.windows()[0][0], 10 + 2);
        assert_eq!(injected.windows()[1][0], 20 + 1);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_trace_panics() {
        let _ = Trace::from_windows(vec![]);
    }

    proptest! {
        #[test]
        fn injection_total_is_exact(extra_count in 0u32..10_000) {
            let t = sample_trace();
            let mut extra = [0u32; CATEGORY_COUNT];
            extra[7] = extra_count;
            let injected = t.with_injected(&extra);
            prop_assert_eq!(injected.total_counts()[7], u64::from(extra_count));
        }
    }
}

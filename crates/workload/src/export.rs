//! CSV export/import of extracted features.
//!
//! Deployments and external ML tooling exchange HMD training data as
//! feature tables. The format is one header row (`f0..f{n-1},label`) and
//! one row per sample; labels are `malware`/`benign`.

use crate::dataset::LabeledFeatures;
use std::fmt;
use std::io::{BufReader, Read, Write};

/// Error importing a feature CSV.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseCsvError {
    /// Missing or malformed header row.
    BadHeader(String),
    /// A data row has the wrong number of columns.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCsvError::BadHeader(h) => write!(f, "bad header: {h}"),
            ParseCsvError::BadRow { line, reason } => write!(f, "bad row at line {line}: {reason}"),
            ParseCsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ParseCsvError {}

/// Serializes features to CSV text.
pub fn to_csv(features: &LabeledFeatures) -> String {
    let width = features.inputs.first().map_or(0, Vec::len);
    let mut out = String::new();
    for i in 0..width {
        out.push_str(&format!("f{i},"));
    }
    out.push_str("label\n");
    for (x, &y) in features.inputs.iter().zip(&features.labels) {
        for v in x {
            out.push_str(&format!("{v:e},"));
        }
        out.push_str(if y { "malware" } else { "benign" });
        out.push('\n');
    }
    out
}

/// Writes features as CSV to any [`Write`] (pass `&mut file` to keep it).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(features: &LabeledFeatures, mut writer: W) -> std::io::Result<()> {
    writer.write_all(to_csv(features).as_bytes())
}

/// Parses features from CSV text.
///
/// # Errors
///
/// Returns [`ParseCsvError`] describing the first malformed line.
pub fn from_csv(text: &str) -> Result<LabeledFeatures, ParseCsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseCsvError::BadHeader("empty input".to_string()))?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.last() != Some(&"label") || columns.len() < 2 {
        return Err(ParseCsvError::BadHeader(header.to_string()));
    }
    let width = columns.len() - 1;

    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (idx, line) in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != width + 1 {
            return Err(ParseCsvError::BadRow {
                line: idx + 1,
                reason: format!("expected {} columns, found {}", width + 1, cells.len()),
            });
        }
        let mut row = Vec::with_capacity(width);
        for cell in &cells[..width] {
            row.push(cell.parse::<f32>().map_err(|_| ParseCsvError::BadRow {
                line: idx + 1,
                reason: format!("not a number: {cell}"),
            })?);
        }
        let label = match cells[width] {
            "malware" => true,
            "benign" => false,
            other => {
                return Err(ParseCsvError::BadRow {
                    line: idx + 1,
                    reason: format!("unknown label: {other}"),
                })
            }
        };
        inputs.push(row);
        labels.push(label);
    }
    Ok(LabeledFeatures { inputs, labels })
}

/// Reads features from any [`Read`] (pass `&mut file` to keep it).
///
/// # Errors
///
/// Returns [`ParseCsvError::Io`] for reader failures, parse errors
/// otherwise.
pub fn read_csv<R: Read>(reader: R) -> Result<LabeledFeatures, ParseCsvError> {
    let mut text = String::new();
    BufReader::new(reader)
        .read_to_string(&mut text)
        .map_err(|e| ParseCsvError::Io(e.to_string()))?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::features::FeatureSpec;

    fn sample() -> LabeledFeatures {
        let d = Dataset::generate(&DatasetConfig::small(20), 3);
        let all: Vec<usize> = (0..d.len()).collect();
        d.labeled_features(&all, FeatureSpec::frequency())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let features = sample();
        let loaded = from_csv(&to_csv(&features)).expect("parses");
        assert_eq!(features, loaded);
    }

    #[test]
    fn io_round_trip() {
        let features = sample();
        let mut buffer = Vec::new();
        write_csv(&features, &mut buffer).expect("writes");
        let loaded = read_csv(buffer.as_slice()).expect("reads");
        assert_eq!(features, loaded);
    }

    #[test]
    fn header_names_features() {
        let features = sample();
        let text = to_csv(&features);
        let header = text.lines().next().expect("header");
        assert!(header.starts_with("f0,f1,"));
        assert!(header.ends_with(",label"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_csv("a,b,c\n1,2,3\n"),
            Err(ParseCsvError::BadHeader(_))
        ));
        assert!(matches!(from_csv(""), Err(ParseCsvError::BadHeader(_))));
    }

    #[test]
    fn rejects_short_rows() {
        let err = from_csv("f0,f1,label\n0.5,malware\n").expect_err("short row");
        assert!(matches!(err, ParseCsvError::BadRow { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_numbers_and_labels() {
        assert!(matches!(
            from_csv("f0,label\nxyz,malware\n"),
            Err(ParseCsvError::BadRow { .. })
        ));
        assert!(matches!(
            from_csv("f0,label\n0.5,suspicious\n"),
            Err(ParseCsvError::BadRow { .. })
        ));
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_input_never_panics(text in proptest::string::string_regex(".{0,300}").unwrap()) {
            let _ = from_csv(&text); // must return Err, never panic
        }
    }

    #[test]
    fn errors_display_line_numbers() {
        let err = from_csv("f0,label\n0.5,nope\n").expect_err("bad label");
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}

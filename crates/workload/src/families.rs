//! Program families and their characteristic instruction mixes.
//!
//! The dataset's malware families are the paper's five MalwareDB types;
//! the benign families are its four application classes. Each family's
//! base profile is a plausibility-driven instruction-category distribution:
//! malware leans on control transfer (obfuscated/indirect flow), system
//! instructions and I/O (payload activity), and string scans; benign code
//! leans on data transfer, arithmetic, and SIMD/FP. The absolute values are
//! synthetic — only the *relative* separability matters for reproducing the
//! paper's detector/attack dynamics.

use crate::isa::CATEGORY_COUNT;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five malware types of the paper's dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MalwareFamily {
    /// Remote-access backdoors.
    Backdoor,
    /// Rogue ("fake antivirus") applications.
    Rogue,
    /// Credential-harvesting password stealers.
    PasswordStealer,
    /// Trojan droppers/downloaders.
    Trojan,
    /// Self-propagating worms.
    Worm,
}

impl MalwareFamily {
    /// All malware families.
    pub const ALL: [MalwareFamily; 5] = [
        MalwareFamily::Backdoor,
        MalwareFamily::Rogue,
        MalwareFamily::PasswordStealer,
        MalwareFamily::Trojan,
        MalwareFamily::Worm,
    ];
}

impl fmt::Display for MalwareFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MalwareFamily::Backdoor => "backdoor",
            MalwareFamily::Rogue => "rogue",
            MalwareFamily::PasswordStealer => "password-stealer",
            MalwareFamily::Trojan => "trojan",
            MalwareFamily::Worm => "worm",
        };
        f.write_str(name)
    }
}

/// The benign application classes of the paper's dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BenignFamily {
    /// Web browsers.
    Browser,
    /// Text-editing tools.
    TextEditor,
    /// System programs/utilities.
    SystemUtility,
    /// CPU performance benchmarks.
    CpuBenchmark,
}

impl BenignFamily {
    /// All benign families.
    pub const ALL: [BenignFamily; 4] = [
        BenignFamily::Browser,
        BenignFamily::TextEditor,
        BenignFamily::SystemUtility,
        BenignFamily::CpuBenchmark,
    ];
}

impl fmt::Display for BenignFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BenignFamily::Browser => "browser",
            BenignFamily::TextEditor => "text-editor",
            BenignFamily::SystemUtility => "system-utility",
            BenignFamily::CpuBenchmark => "cpu-benchmark",
        };
        f.write_str(name)
    }
}

/// A program's class: benign application or malware of some family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProgramClass {
    /// A benign application.
    Benign(BenignFamily),
    /// A malware sample.
    Malware(MalwareFamily),
}

impl ProgramClass {
    /// `true` for malware — the positive detection label.
    #[inline]
    pub fn is_malware(self) -> bool {
        matches!(self, ProgramClass::Malware(_))
    }

    /// The family's base instruction-category mix (normalised to sum 1).
    pub fn base_profile(self) -> [f64; CATEGORY_COUNT] {
        // Index order: binarith, logical, shift, bitbyte, dataxfer,
        // ctrlxfer, string, flag, segment, stack, simd, float, system, io,
        // sync, misc.
        let raw: [f64; CATEGORY_COUNT] = match self {
            ProgramClass::Benign(BenignFamily::Browser) => [
                0.12, 0.06, 0.03, 0.03, 0.22, 0.13, 0.03, 0.03, 0.005, 0.09, 0.10, 0.05, 0.015,
                0.005, 0.03, 0.04,
            ],
            ProgramClass::Benign(BenignFamily::TextEditor) => [
                0.10, 0.06, 0.03, 0.04, 0.21, 0.14, 0.08, 0.03, 0.005, 0.10, 0.04, 0.03, 0.015,
                0.005, 0.02, 0.07,
            ],
            ProgramClass::Benign(BenignFamily::SystemUtility) => [
                0.10, 0.07, 0.04, 0.04, 0.19, 0.14, 0.05, 0.03, 0.01, 0.10, 0.03, 0.02, 0.035,
                0.02, 0.03, 0.065,
            ],
            ProgramClass::Benign(BenignFamily::CpuBenchmark) => [
                0.24, 0.06, 0.06, 0.02, 0.16, 0.09, 0.02, 0.02, 0.003, 0.06, 0.13, 0.11, 0.007,
                0.003, 0.02, 0.007,
            ],
            ProgramClass::Malware(MalwareFamily::Backdoor) => [
                0.08, 0.07, 0.04, 0.04, 0.15, 0.20, 0.06, 0.04, 0.015, 0.11, 0.015, 0.01, 0.075,
                0.045, 0.02, 0.04,
            ],
            ProgramClass::Malware(MalwareFamily::Rogue) => [
                0.09, 0.07, 0.04, 0.04, 0.16, 0.19, 0.08, 0.04, 0.01, 0.10, 0.03, 0.02, 0.055,
                0.025, 0.02, 0.03,
            ],
            ProgramClass::Malware(MalwareFamily::PasswordStealer) => [
                0.08, 0.07, 0.04, 0.06, 0.17, 0.17, 0.12, 0.04, 0.01, 0.09, 0.015, 0.01, 0.055,
                0.02, 0.02, 0.03,
            ],
            ProgramClass::Malware(MalwareFamily::Trojan) => [
                0.09, 0.10, 0.06, 0.04, 0.15, 0.19, 0.05, 0.04, 0.015, 0.12, 0.01, 0.01, 0.06,
                0.02, 0.015, 0.03,
            ],
            ProgramClass::Malware(MalwareFamily::Worm) => [
                0.08, 0.07, 0.04, 0.04, 0.15, 0.18, 0.08, 0.04, 0.015, 0.10, 0.015, 0.01, 0.07,
                0.06, 0.02, 0.03,
            ],
        };
        let total: f64 = raw.iter().sum();
        let mut out = raw;
        for v in &mut out {
            *v /= total;
        }
        out
    }

    /// Per-window temporal jitter of the family (malware phases burst more,
    /// which the burstiness feature extractor picks up).
    pub fn burstiness(self) -> f64 {
        match self {
            ProgramClass::Benign(BenignFamily::CpuBenchmark) => 0.08,
            ProgramClass::Benign(_) => 0.15,
            ProgramClass::Malware(_) => 0.30,
        }
    }
}

impl fmt::Display for ProgramClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramClass::Benign(b) => write!(f, "benign/{b}"),
            ProgramClass::Malware(m) => write!(f, "malware/{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_classes() -> Vec<ProgramClass> {
        let mut v: Vec<ProgramClass> = BenignFamily::ALL
            .iter()
            .map(|&b| ProgramClass::Benign(b))
            .collect();
        v.extend(MalwareFamily::ALL.iter().map(|&m| ProgramClass::Malware(m)));
        v
    }

    #[test]
    fn profiles_are_distributions() {
        for class in all_classes() {
            let p = class.base_profile();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{class}: sums to {total}");
            assert!(p.iter().all(|&v| v > 0.0), "{class}: zero category weight");
        }
    }

    #[test]
    fn profiles_are_pairwise_distinct() {
        let classes = all_classes();
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                assert_ne!(
                    classes[i].base_profile(),
                    classes[j].base_profile(),
                    "{} and {} share a profile",
                    classes[i],
                    classes[j]
                );
            }
        }
    }

    #[test]
    fn malware_leans_on_system_and_control_flow() {
        use crate::isa::InsnCategory;
        let sys = InsnCategory::System.index();
        let ct = InsnCategory::ControlTransfer.index();
        for &m in &MalwareFamily::ALL {
            let mp = ProgramClass::Malware(m).base_profile();
            for &b in &BenignFamily::ALL {
                let bp = ProgramClass::Benign(b).base_profile();
                assert!(
                    mp[sys] + mp[ct] > bp[sys] + bp[ct] - 0.05,
                    "{m} vs {b}: malware should skew to system/control flow"
                );
            }
        }
    }

    #[test]
    fn labels() {
        assert!(ProgramClass::Malware(MalwareFamily::Worm).is_malware());
        assert!(!ProgramClass::Benign(BenignFamily::Browser).is_malware());
    }

    #[test]
    fn malware_is_burstier_than_benign() {
        for &m in &MalwareFamily::ALL {
            for &b in &BenignFamily::ALL {
                assert!(
                    ProgramClass::Malware(m).burstiness() > ProgramClass::Benign(b).burstiness()
                );
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ProgramClass::Malware(MalwareFamily::PasswordStealer).to_string(),
            "malware/password-stealer"
        );
        assert_eq!(
            ProgramClass::Benign(BenignFamily::CpuBenchmark).to_string(),
            "benign/cpu-benchmark"
        );
    }
}

//! Feature extraction: the views of a trace that detectors train on.
//!
//! RHMD (the paper's comparison system) derives its diversity from training
//! base detectors on *different feature vectors* and *different detection
//! periods*. This module provides three feature kinds and a detection-period
//! parameter; the cross product gives the base-detector space for the
//! RHMD-2F/3F/2F2P/3F2P constructions of §VII-C.

use crate::isa::CATEGORY_COUNT;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of every feature vector (one slot per instruction category).
pub const FEATURE_DIM: usize = CATEGORY_COUNT;

/// The family of statistic a feature vector captures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Mean per-category instruction frequency (the paper's primary
    /// feature vector).
    #[default]
    Frequency,
    /// Per-category temporal burstiness: the coefficient of variation of
    /// the category frequency across windows.
    Burstiness,
    /// Per-category mean absolute window-to-window frequency change.
    Transition,
}

impl FeatureKind {
    /// All feature kinds.
    pub const ALL: [FeatureKind; 3] = [
        FeatureKind::Frequency,
        FeatureKind::Burstiness,
        FeatureKind::Transition,
    ];
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FeatureKind::Frequency => "frequency",
            FeatureKind::Burstiness => "burstiness",
            FeatureKind::Transition => "transition",
        };
        f.write_str(name)
    }
}

/// How many windows apart consecutive feature samples are taken
/// (RHMD's "detection period" axis of diversity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DetectionPeriod(usize);

impl DetectionPeriod {
    /// Every window (the default).
    pub const EVERY_WINDOW: DetectionPeriod = DetectionPeriod(1);
    /// Every other window.
    pub const EVERY_OTHER: DetectionPeriod = DetectionPeriod(2);

    /// Creates a period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> DetectionPeriod {
        assert!(period > 0, "detection period must be positive");
        DetectionPeriod(period)
    }

    /// The stride in windows.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for DetectionPeriod {
    fn default() -> DetectionPeriod {
        DetectionPeriod::EVERY_WINDOW
    }
}

/// A complete feature-vector specification: kind × detection period.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// The statistic family.
    pub kind: FeatureKind,
    /// The window stride.
    pub period: DetectionPeriod,
}

impl FeatureSpec {
    /// The paper's primary feature vector: frequencies over every window.
    pub fn frequency() -> FeatureSpec {
        FeatureSpec::default()
    }

    /// Builds a spec.
    pub fn new(kind: FeatureKind, period: DetectionPeriod) -> FeatureSpec {
        FeatureSpec { kind, period }
    }

    /// All kind × {1, 2} period combinations, the RHMD base-detector space.
    pub fn all_combinations() -> Vec<FeatureSpec> {
        let mut out = Vec::new();
        for &kind in &FeatureKind::ALL {
            for period in [DetectionPeriod::EVERY_WINDOW, DetectionPeriod::EVERY_OTHER] {
                out.push(FeatureSpec::new(kind, period));
            }
        }
        out
    }

    /// Extracts the feature vector from a trace.
    pub fn extract(&self, trace: &Trace) -> Vec<f32> {
        let freqs: Vec<[f64; CATEGORY_COUNT]> = trace
            .windows()
            .iter()
            .step_by(self.period.get())
            .map(Trace::window_frequencies)
            .collect();
        let n = freqs.len().max(1) as f64;
        match self.kind {
            FeatureKind::Frequency => {
                let mut mean = [0.0f64; CATEGORY_COUNT];
                for f in &freqs {
                    for (m, v) in mean.iter_mut().zip(f) {
                        *m += v;
                    }
                }
                mean.iter().map(|&m| (m / n) as f32).collect()
            }
            FeatureKind::Burstiness => {
                let mut mean = [0.0f64; CATEGORY_COUNT];
                for f in &freqs {
                    for (m, v) in mean.iter_mut().zip(f) {
                        *m += v;
                    }
                }
                for m in &mut mean {
                    *m /= n;
                }
                let mut var = [0.0f64; CATEGORY_COUNT];
                for f in &freqs {
                    for ((v, x), m) in var.iter_mut().zip(f).zip(&mean) {
                        *v += (x - m) * (x - m);
                    }
                }
                var.iter()
                    .zip(&mean)
                    .map(|(&v, &m)| {
                        if m <= 0.0 {
                            0.0
                        } else {
                            // Coefficient of variation, squashed into [0, 1).
                            let cv = (v / n).sqrt() / m;
                            (cv / (1.0 + cv)) as f32
                        }
                    })
                    .collect()
            }
            FeatureKind::Transition => {
                if freqs.len() < 2 {
                    return vec![0.0; FEATURE_DIM];
                }
                let mut delta = [0.0f64; CATEGORY_COUNT];
                for pair in freqs.windows(2) {
                    for (d, (a, b)) in delta.iter_mut().zip(pair[0].iter().zip(&pair[1])) {
                        *d += (a - b).abs();
                    }
                }
                let steps = (freqs.len() - 1) as f64;
                // Scale ×10 so magnitudes are comparable to frequencies.
                delta
                    .iter()
                    .map(|&d| ((d / steps) * 10.0).min(1.0) as f32)
                    .collect()
            }
        }
    }
}

impl fmt::Display for FeatureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}", self.kind, self.period.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{MalwareFamily, ProgramClass};
    use crate::program::Program;
    use crate::trace::TraceConfig;

    fn sample_trace() -> Trace {
        Program::generate(1, ProgramClass::Malware(MalwareFamily::Backdoor), 3)
            .trace(&TraceConfig::default())
    }

    #[test]
    fn all_kinds_output_feature_dim() {
        let t = sample_trace();
        for spec in FeatureSpec::all_combinations() {
            assert_eq!(spec.extract(&t).len(), FEATURE_DIM, "{spec}");
        }
    }

    #[test]
    fn frequency_features_sum_to_one() {
        let t = sample_trace();
        let f = FeatureSpec::frequency().extract(&t);
        let total: f32 = f.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "sum {total}");
    }

    #[test]
    fn features_are_bounded() {
        let t = sample_trace();
        for spec in FeatureSpec::all_combinations() {
            for v in spec.extract(&t) {
                assert!((0.0..=1.0).contains(&v), "{spec}: {v}");
            }
        }
    }

    #[test]
    fn kinds_produce_different_views() {
        let t = sample_trace();
        let freq = FeatureSpec::new(FeatureKind::Frequency, DetectionPeriod::EVERY_WINDOW);
        let burst = FeatureSpec::new(FeatureKind::Burstiness, DetectionPeriod::EVERY_WINDOW);
        let trans = FeatureSpec::new(FeatureKind::Transition, DetectionPeriod::EVERY_WINDOW);
        assert_ne!(freq.extract(&t), burst.extract(&t));
        assert_ne!(freq.extract(&t), trans.extract(&t));
        assert_ne!(burst.extract(&t), trans.extract(&t));
    }

    #[test]
    fn periods_produce_different_views() {
        let t = sample_trace();
        let p1 = FeatureSpec::new(FeatureKind::Frequency, DetectionPeriod::EVERY_WINDOW);
        let p2 = FeatureSpec::new(FeatureKind::Frequency, DetectionPeriod::EVERY_OTHER);
        assert_ne!(p1.extract(&t), p2.extract(&t));
    }

    #[test]
    fn all_combinations_is_the_full_grid() {
        assert_eq!(FeatureSpec::all_combinations().len(), 6);
    }

    #[test]
    fn transition_on_single_window_is_zero() {
        let t = Trace::from_windows(vec![[5u32; CATEGORY_COUNT]]);
        let f =
            FeatureSpec::new(FeatureKind::Transition, DetectionPeriod::EVERY_WINDOW).extract(&t);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "detection period must be positive")]
    fn zero_period_panics() {
        let _ = DetectionPeriod::new(0);
    }

    #[test]
    fn display_forms() {
        let spec = FeatureSpec::new(FeatureKind::Burstiness, DetectionPeriod::EVERY_OTHER);
        assert_eq!(spec.to_string(), "burstiness/p2");
    }

    #[test]
    fn injection_moves_frequency_features() {
        // Evasion relies on injected instructions moving the feature
        // vector; verify the coupling end to end.
        let t = sample_trace();
        let before = FeatureSpec::frequency().extract(&t);
        let mut extra = [0u32; CATEGORY_COUNT];
        extra[10] = (t.total_insns() / 4) as u32; // +25% SIMD
        let after = FeatureSpec::frequency().extract(&t.with_injected(&extra));
        assert!(after[10] > before[10] + 0.05);
        assert!(after[5] < before[5], "other frequencies renormalise down");
    }
}

//! Custom dataset composition.
//!
//! [`crate::dataset::Dataset::generate`] reproduces the paper's corpus
//! shape (five malware families, four benign families, evenly spread).
//! Downstream users modelling *their* fleet need different mixes — a
//! server deployment sees no browsers; an IoT fleet is worm-heavy.
//! [`DatasetBuilder`] composes a dataset family by family.

use crate::dataset::Dataset;
use crate::families::ProgramClass;
use crate::trace::TraceConfig;
use std::fmt;

/// Error building a custom dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildDatasetError {
    /// No programs were requested.
    Empty,
    /// Only one class is present; detectors cannot train on it.
    SingleClass,
}

impl fmt::Display for BuildDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDatasetError::Empty => f.write_str("no programs requested"),
            BuildDatasetError::SingleClass => {
                f.write_str("a dataset needs both malware and benign programs")
            }
        }
    }
}

impl std::error::Error for BuildDatasetError {}

/// Builder for datasets with custom family mixes.
///
/// # Example
///
/// ```
/// use shmd_workload::builder::DatasetBuilder;
/// use shmd_workload::families::{BenignFamily, MalwareFamily, ProgramClass};
///
/// // An IoT fleet: worm-heavy threat mix, no browsers.
/// let dataset = DatasetBuilder::new()
///     .add(ProgramClass::Malware(MalwareFamily::Worm), 60)
///     .add(ProgramClass::Malware(MalwareFamily::Backdoor), 20)
///     .add(ProgramClass::Benign(BenignFamily::SystemUtility), 30)
///     .seed(7)
///     .build()?;
/// assert_eq!(dataset.len(), 110);
/// # Ok::<(), shmd_workload::builder::BuildDatasetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    groups: Vec<(ProgramClass, usize)>,
    trace: TraceConfig,
    seed: u64,
}

impl DatasetBuilder {
    /// Starts an empty builder.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder {
            groups: Vec::new(),
            trace: TraceConfig::default(),
            seed: 0,
        }
    }

    /// Adds `count` programs of a class.
    #[must_use]
    pub fn add(mut self, class: ProgramClass, count: usize) -> DatasetBuilder {
        self.groups.push((class, count));
        self
    }

    /// Overrides the trace shape.
    #[must_use]
    pub fn trace_config(mut self, trace: TraceConfig) -> DatasetBuilder {
        self.trace = trace;
        self
    }

    /// Sets the generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> DatasetBuilder {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`BuildDatasetError`] when nothing was requested or only one
    /// class is present.
    pub fn build(self) -> Result<Dataset, BuildDatasetError> {
        let total: usize = self.groups.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return Err(BuildDatasetError::Empty);
        }
        let has_malware = self.groups.iter().any(|&(c, n)| n > 0 && c.is_malware());
        let has_benign = self.groups.iter().any(|&(c, n)| n > 0 && !c.is_malware());
        if !has_malware || !has_benign {
            return Err(BuildDatasetError::SingleClass);
        }
        Ok(Dataset::from_groups(&self.groups, &self.trace, self.seed))
    }
}

impl Default for DatasetBuilder {
    fn default() -> DatasetBuilder {
        DatasetBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{BenignFamily, MalwareFamily};

    fn worm_fleet() -> Dataset {
        DatasetBuilder::new()
            .add(ProgramClass::Malware(MalwareFamily::Worm), 40)
            .add(ProgramClass::Benign(BenignFamily::SystemUtility), 20)
            .seed(3)
            .build()
            .expect("valid mix")
    }

    #[test]
    fn builds_the_requested_mix() {
        let d = worm_fleet();
        assert_eq!(d.len(), 60);
        let worms = d
            .programs()
            .iter()
            .filter(|p| p.class() == ProgramClass::Malware(MalwareFamily::Worm))
            .count();
        assert_eq!(worms, 40);
    }

    #[test]
    fn custom_datasets_split_and_train() {
        use crate::features::FeatureSpec;
        let d = worm_fleet();
        let split = d.three_fold_split(0);
        let lf = d.labeled_features(split.victim_training(), FeatureSpec::frequency());
        assert!(lf.labels.iter().any(|&l| l));
        assert!(lf.labels.iter().any(|&l| !l));
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(
            DatasetBuilder::new().build().unwrap_err(),
            BuildDatasetError::Empty
        );
    }

    #[test]
    fn single_class_is_rejected() {
        let err = DatasetBuilder::new()
            .add(ProgramClass::Malware(MalwareFamily::Trojan), 10)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildDatasetError::SingleClass);
    }

    #[test]
    fn zero_count_groups_do_not_count_as_classes() {
        let err = DatasetBuilder::new()
            .add(ProgramClass::Malware(MalwareFamily::Trojan), 10)
            .add(ProgramClass::Benign(BenignFamily::Browser), 0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildDatasetError::SingleClass);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = worm_fleet();
        let b = worm_fleet();
        assert_eq!(a.programs(), b.programs());
    }
}

//! Individual programs: a family profile perturbed per sample.

use crate::families::ProgramClass;
use crate::isa::{InsnCategory, CATEGORY_COUNT};
use crate::trace::{Trace, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Log-normal spread of per-program profiles around the family base.
const PROGRAM_PROFILE_SIGMA: f64 = 0.30;

/// Fraction of leading windows spent in the start-up phase.
const STARTUP_FRACTION: f64 = 0.25;

/// Draws a standard normal variate (Box–Muller).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A single program of the dataset.
///
/// The program's behaviour profile is its family's base instruction mix
/// perturbed log-normally per sample, so two trojans resemble each other
/// more than a trojan resembles a browser, without being identical.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    id: u32,
    class: ProgramClass,
    seed: u64,
    profile: [f64; CATEGORY_COUNT],
}

impl Program {
    /// Generates a program of the given class.
    ///
    /// Generation is deterministic in `(id, class, seed)`.
    pub fn generate(id: u32, class: ProgramClass, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(id) << 32) ^ 0x9e37_79b9_7f4a_7c15);
        let base = class.base_profile();
        let mut profile = [0.0; CATEGORY_COUNT];
        let mut total = 0.0;
        for (p, &b) in profile.iter_mut().zip(&base) {
            *p = b * (PROGRAM_PROFILE_SIGMA * gaussian(&mut rng)).exp();
            total += *p;
        }
        for p in &mut profile {
            *p /= total;
        }
        Program {
            id,
            class,
            seed,
            profile,
        }
    }

    /// The program's identifier within its dataset.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The program's class.
    #[inline]
    pub fn class(&self) -> ProgramClass {
        self.class
    }

    /// `true` if the program is malware.
    #[inline]
    pub fn is_malware(&self) -> bool {
        self.class.is_malware()
    }

    /// The program's steady-state instruction mix.
    #[inline]
    pub fn profile(&self) -> &[f64; CATEGORY_COUNT] {
        &self.profile
    }

    /// Generates a metamorphic variant of this program.
    ///
    /// Polymorphic/metamorphic malware rewrites its own code so each copy
    /// has a different byte signature (the paper's motivation for dynamic
    /// HMDs over "signature-based static analysis"). The rewritten copy's
    /// *behaviour* stays close to the original: the variant perturbs this
    /// program's profile mildly (half the inter-program spread) under a
    /// variant-specific seed, so its byte-level trace differs while its
    /// instruction mix remains family-typical.
    pub fn variant(&self, generation: u32) -> Program {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (u64::from(self.id) << 20)
                ^ u64::from(generation).wrapping_mul(0x94d0_49bb_1331_11eb),
        );
        let mut profile = [0.0; CATEGORY_COUNT];
        let mut total = 0.0;
        for (p, &base) in profile.iter_mut().zip(&self.profile) {
            *p = base * (0.5 * PROGRAM_PROFILE_SIGMA * gaussian(&mut rng)).exp();
            total += *p;
        }
        for p in &mut profile {
            *p /= total;
        }
        Program {
            id: self.id ^ (generation << 24),
            class: self.class,
            seed: self.seed ^ u64::from(generation) << 40,
            profile,
        }
    }

    /// Generates the program's execution trace.
    ///
    /// Traces are deterministic: calling this twice returns identical
    /// counts, mirroring the paper's verified-deterministic feature
    /// collection ("we get the exact same trace in every run when we supply
    /// the same input").
    pub fn trace(&self, config: &TraceConfig) -> Trace {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ u64::from(self.id).wrapping_mul(0xd134_2543_de82_ef95),
        );
        let startup_windows =
            ((config.windows as f64 * STARTUP_FRACTION).ceil() as usize).min(config.windows);
        let burst = self.class.burstiness();
        let mut windows = Vec::with_capacity(config.windows);
        for w in 0..config.windows {
            let in_startup = w < startup_windows;
            let mut weights = [0.0f64; CATEGORY_COUNT];
            let mut total = 0.0;
            for (c, wt) in weights.iter_mut().enumerate() {
                let mut mean = self.profile[c];
                if in_startup {
                    // Start-up: loader activity — extra data transfer, stack
                    // traffic, and system calls, blended 50/50.
                    let loader = startup_boost(c);
                    mean = 0.5 * mean + 0.5 * loader;
                }
                *wt = mean * (burst * gaussian(&mut rng)).exp();
                total += *wt;
            }
            let mut counts = [0u32; CATEGORY_COUNT];
            for (count, &wt) in counts.iter_mut().zip(&weights) {
                *count = ((wt / total) * f64::from(config.insns_per_window)).round() as u32;
            }
            windows.push(counts);
        }
        Trace::from_windows(windows)
    }
}

/// The loader/start-up instruction mix blended into early windows.
fn startup_boost(category: usize) -> f64 {
    let c = InsnCategory::from_index(category);
    match c {
        InsnCategory::DataTransfer => 0.30,
        InsnCategory::Stack => 0.16,
        InsnCategory::System => 0.08,
        InsnCategory::ControlTransfer => 0.14,
        InsnCategory::SegmentRegister => 0.02,
        _ => 0.30 / 11.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{BenignFamily, MalwareFamily};

    fn trojan(id: u32) -> Program {
        Program::generate(id, ProgramClass::Malware(MalwareFamily::Trojan), 7)
    }

    #[test]
    fn profile_is_a_distribution() {
        let p = trojan(0);
        let total: f64 = p.profile().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p.profile().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(trojan(3), trojan(3));
    }

    #[test]
    fn different_ids_differ() {
        assert_ne!(trojan(1).profile(), trojan(2).profile());
    }

    #[test]
    fn traces_are_deterministic() {
        let p = trojan(5);
        let cfg = TraceConfig::default();
        assert_eq!(
            p.trace(&cfg),
            p.trace(&cfg),
            "paper §IV: deterministic traces"
        );
    }

    #[test]
    fn trace_matches_config() {
        let p = trojan(6);
        let cfg = TraceConfig {
            windows: 5,
            insns_per_window: 1000,
        };
        let t = p.trace(&cfg);
        assert_eq!(t.len(), 5);
        // Rounding keeps totals within ~CATEGORY_COUNT/2 of the target.
        for w in t.windows() {
            let total: u32 = w.iter().sum();
            assert!((990..=1010).contains(&total), "window total {total}");
        }
    }

    #[test]
    fn trace_reflects_profile() {
        let p = Program::generate(9, ProgramClass::Benign(BenignFamily::CpuBenchmark), 11);
        let t = p.trace(&TraceConfig::default());
        let totals = t.total_counts();
        let arith = InsnCategory::BinaryArithmetic.index();
        let io = InsnCategory::Io.index();
        assert!(
            totals[arith] > totals[io] * 5,
            "a CPU benchmark is arithmetic-heavy: {totals:?}"
        );
    }

    #[test]
    fn variants_differ_but_stay_family_typical() {
        let original = trojan(2);
        let v1 = original.variant(1);
        let v2 = original.variant(2);
        assert_ne!(original.profile(), v1.profile(), "variant must differ");
        assert_ne!(v1.profile(), v2.profile(), "generations must differ");
        assert_eq!(v1.class(), original.class());
        // Behaviour stays close: profile distance below the inter-program
        // spread.
        let dist = |a: &[f64; CATEGORY_COUNT], b: &[f64; CATEGORY_COUNT]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
        };
        let to_variant = dist(original.profile(), v1.profile());
        let to_other_program = dist(original.profile(), trojan(99).profile());
        assert!(
            to_variant < to_other_program,
            "a variant should resemble its original more than a random sibling: \
             {to_variant} vs {to_other_program}"
        );
    }

    #[test]
    fn variants_are_deterministic() {
        let p = trojan(3);
        assert_eq!(p.variant(5), p.variant(5));
    }

    #[test]
    fn variant_traces_have_different_signatures() {
        // The metamorphic property: the raw trace (a byte-signature stand-in)
        // differs between generations.
        let p = trojan(4);
        let cfg = TraceConfig::default();
        assert_ne!(p.trace(&cfg), p.variant(1).trace(&cfg));
    }

    #[test]
    fn startup_windows_are_loader_heavy() {
        let p = Program::generate(10, ProgramClass::Benign(BenignFamily::TextEditor), 13);
        let cfg = TraceConfig {
            windows: 16,
            insns_per_window: 100_000,
        };
        let t = p.trace(&cfg);
        let dx = InsnCategory::DataTransfer.index();
        let early = Trace::window_frequencies(&t.windows()[0])[dx];
        let late = Trace::window_frequencies(&t.windows()[12])[dx];
        // The startup blend pushes data transfer above steady state (noisy
        // per-window, so compare with slack).
        assert!(early > late * 0.9, "early {early} vs late {late}");
    }
}

//! Criterion bench: scalar vs batched (structure-of-arrays) quantised
//! forward pass.
//!
//! The batched path's whole claim is per-query throughput: one weight load
//! feeds `LANES` multiply-accumulates and the fault-gap countdown is
//! decremented in bulk, so B queries through one layer walk should beat B
//! scalar walks. This bench pins that claim at the layer level — if a
//! refactor regresses the batched MAC loop, it shows up here without
//! running the end-to-end serving bench.
//!
//! Scalar timings are per single inference; batched timings are per
//! `LANES`-query batch, so divide by the width when comparing per-query
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use shmd_ann::builder::NetworkBuilder;
use shmd_ann::network::{BatchScratch, InferenceScratch, QuantizedNetwork};
use shmd_volt::fault::{BatchFaultStream, ExactDatapath, ExactLanes, FaultModel, FaultStream};
use std::hint::black_box;

const INPUT_DIM: usize = 32;

fn fixture() -> (QuantizedNetwork, Vec<Vec<f32>>) {
    let net = NetworkBuilder::new(INPUT_DIM)
        .hidden(24)
        .hidden(12)
        .output(1)
        .seed(7)
        .build()
        .expect("valid network")
        .quantized();
    let inputs: Vec<Vec<f32>> = (0..16)
        .map(|l| {
            (0..INPUT_DIM)
                .map(|i| ((l * INPUT_DIM + i) as f32 * 0.137).sin())
                .collect()
        })
        .collect();
    (net, inputs)
}

fn bench_width<const LANES: usize>(
    c: &mut Criterion,
    net: &QuantizedNetwork,
    inputs: &[Vec<f32>],
    model: &FaultModel,
) {
    let refs: [&[f32]; LANES] = std::array::from_fn(|l| inputs[l % inputs.len()].as_slice());
    let mut group = c.benchmark_group(format!("batch_forward/b{LANES}"));
    group.bench_function("exact", |b| {
        let mut scratch = BatchScratch::<LANES>::new();
        b.iter(|| {
            black_box(net.infer_batch_into(black_box(&refs), &mut ExactLanes, &mut scratch));
        })
    });
    group.bench_function("er_0_1", |b| {
        let mut scratch = BatchScratch::<LANES>::new();
        let seeds: [u64; LANES] = std::array::from_fn(|l| 11 + l as u64);
        b.iter(|| {
            let mut stream = BatchFaultStream::new(model, seeds);
            black_box(net.infer_batch_into(black_box(&refs), &mut stream, &mut scratch));
        })
    });
    group.finish();
}

fn bench_batch_forward(c: &mut Criterion) {
    let (net, inputs) = fixture();
    let model = FaultModel::from_error_rate(0.1)
        .expect("valid")
        .with_near_zero_width(20);

    // Scalar baseline: one query per forward pass, per-query fault stream.
    let mut group = c.benchmark_group("scalar_forward");
    group.bench_function("exact", |b| {
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            black_box(net.infer_into(
                black_box(inputs[0].as_slice()),
                &mut ExactDatapath,
                &mut scratch,
            ));
        })
    });
    group.bench_function("er_0_1", |b| {
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            let mut stream = FaultStream::new(&model, 11);
            black_box(net.infer_into(black_box(inputs[0].as_slice()), &mut stream, &mut scratch));
        })
    });
    group.finish();

    bench_width::<4>(c, &net, &inputs, &model);
    bench_width::<8>(c, &net, &inputs, &model);
    bench_width::<16>(c, &net, &inputs, &model);
}

criterion_group!(benches, bench_batch_forward);
criterion_main!(benches);

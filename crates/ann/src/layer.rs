//! A fully-connected layer.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};

/// A dense layer: `out = act(W · [in, 1])`.
///
/// Weights are stored row-major, one row of `in_dim + 1` values per output
/// neuron; the final column is the bias.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: Vec<f32>,
}

impl Layer {
    /// Creates a layer with all weights zero.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(in_dim: usize, out_dim: usize, activation: Activation) -> Layer {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        Layer {
            in_dim,
            out_dim,
            activation,
            weights: vec![0.0; out_dim * (in_dim + 1)],
        }
    }

    /// Input dimension (excluding bias).
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The activation function.
    #[inline]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Flat weight storage (row-major, bias last in each row).
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable flat weight storage.
    #[inline]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Number of weights including biases.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always `false`: a layer has at least one weight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The weight row (including bias) for output neuron `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o >= out_dim`.
    #[inline]
    pub fn row(&self, o: usize) -> &[f32] {
        let stride = self.in_dim + 1;
        &self.weights[o * stride..(o + 1) * stride]
    }

    /// Forward pass in floating point.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.out_dim);
        self.forward_into(input, &mut out);
        out
    }

    /// Forward pass reusing caller-provided output storage (cleared
    /// first) — same results as [`Layer::forward`] with no per-layer
    /// allocation once `out` has grown to `out_dim`. This keeps the float
    /// reference path's cost profile comparable to the allocation-free
    /// quantised path in baseline-vs-stochastic sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        assert_eq!(input.len(), self.in_dim, "input width mismatch");
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = self.row(o);
            let mut sum = f64::from(row[self.in_dim]); // bias
            for (w, x) in row[..self.in_dim].iter().zip(input) {
                sum += f64::from(*w) * f64::from(*x);
            }
            out.push(self.activation.apply(sum) as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_layer() -> Layer {
        let mut l = Layer::zeros(2, 2, Activation::Linear);
        // W = I, b = 0
        l.weights_mut()[0] = 1.0; // row 0: [1, 0, 0]
        l.weights_mut()[4] = 1.0; // row 1: [0, 1, 0]
        l
    }

    #[test]
    fn identity_forward() {
        let l = identity_layer();
        assert_eq!(l.forward(&[3.0, -2.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn bias_is_last_column() {
        let mut l = Layer::zeros(2, 1, Activation::Linear);
        l.weights_mut()[2] = 5.0;
        assert_eq!(l.forward(&[0.0, 0.0]), vec![5.0]);
    }

    #[test]
    fn sigmoid_layer_saturates() {
        let mut l = Layer::zeros(1, 1, Activation::Sigmoid);
        l.weights_mut()[0] = 100.0;
        assert!(l.forward(&[1.0])[0] > 0.999);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        identity_layer().forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        let _ = Layer::zeros(0, 1, Activation::Linear);
    }

    #[test]
    fn row_access() {
        let l = identity_layer();
        assert_eq!(l.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(l.row(1), &[0.0, 1.0, 0.0]);
    }
}

//! Network construction with randomised initial weights.

use crate::activation::Activation;
use crate::layer::Layer;
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Error building a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildNetworkError {
    /// No output layer was specified.
    MissingOutput,
    /// A layer width of zero was requested.
    ZeroWidth,
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetworkError::MissingOutput => f.write_str("no output layer specified"),
            BuildNetworkError::ZeroWidth => f.write_str("layer width must be positive"),
        }
    }
}

impl std::error::Error for BuildNetworkError {}

/// Builder for feed-forward networks.
///
/// # Example
///
/// ```
/// use shmd_ann::builder::NetworkBuilder;
/// use shmd_ann::Activation;
///
/// let net = NetworkBuilder::new(16)
///     .hidden(8)
///     .hidden_activation(Activation::SigmoidSymmetric)
///     .output(1)
///     .seed(42)
///     .build()?;
/// assert_eq!(net.input_dim(), 16);
/// assert_eq!(net.output_dim(), 1);
/// # Ok::<(), shmd_ann::BuildNetworkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    input: usize,
    hidden: Vec<usize>,
    output: Option<usize>,
    hidden_activation: Activation,
    output_activation: Activation,
    seed: u64,
}

impl NetworkBuilder {
    /// Starts a builder for a network with `input` features.
    pub fn new(input: usize) -> NetworkBuilder {
        NetworkBuilder {
            input,
            hidden: Vec::new(),
            output: None,
            hidden_activation: Activation::SigmoidSymmetric,
            output_activation: Activation::Sigmoid,
            seed: 0,
        }
    }

    /// Appends a hidden layer of the given width.
    #[must_use]
    pub fn hidden(mut self, width: usize) -> NetworkBuilder {
        self.hidden.push(width);
        self
    }

    /// Sets the output layer width.
    #[must_use]
    pub fn output(mut self, width: usize) -> NetworkBuilder {
        self.output = Some(width);
        self
    }

    /// Activation for hidden layers (default: symmetric sigmoid).
    #[must_use]
    pub fn hidden_activation(mut self, activation: Activation) -> NetworkBuilder {
        self.hidden_activation = activation;
        self
    }

    /// Activation for the output layer (default: sigmoid).
    #[must_use]
    pub fn output_activation(mut self, activation: Activation) -> NetworkBuilder {
        self.output_activation = activation;
        self
    }

    /// Seed for weight initialisation (default 0; builds are deterministic
    /// per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> NetworkBuilder {
        self.seed = seed;
        self
    }

    /// Builds the network with Xavier-uniform initial weights.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetworkError::MissingOutput`] if [`NetworkBuilder::output`]
    /// was never called, or [`BuildNetworkError::ZeroWidth`] if any layer
    /// width is zero.
    pub fn build(self) -> Result<Network, BuildNetworkError> {
        let output = self.output.ok_or(BuildNetworkError::MissingOutput)?;
        if self.input == 0 || output == 0 || self.hidden.contains(&0) {
            return Err(BuildNetworkError::ZeroWidth);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims = vec![self.input];
        dims.extend(&self.hidden);
        dims.push(output);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for (idx, pair) in dims.windows(2).enumerate() {
            let (fan_in, fan_out) = (pair[0], pair[1]);
            let activation = if idx == dims.len() - 2 {
                self.output_activation
            } else {
                self.hidden_activation
            };
            let mut layer = Layer::zeros(fan_in, fan_out, activation);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            for w in layer.weights_mut() {
                *w = rng.gen_range(-bound..bound) as f32;
            }
            layers.push(layer);
        }
        Ok(Network::from_layers(layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_topology() {
        let net = NetworkBuilder::new(8)
            .hidden(4)
            .hidden(3)
            .output(2)
            .build()
            .expect("valid");
        let dims: Vec<(usize, usize)> = net
            .layers()
            .iter()
            .map(|l| (l.in_dim(), l.out_dim()))
            .collect();
        assert_eq!(dims, vec![(8, 4), (4, 3), (3, 2)]);
    }

    #[test]
    fn missing_output_is_error() {
        assert_eq!(
            NetworkBuilder::new(4).hidden(2).build().unwrap_err(),
            BuildNetworkError::MissingOutput
        );
    }

    #[test]
    fn zero_width_is_error() {
        assert_eq!(
            NetworkBuilder::new(4)
                .hidden(0)
                .output(1)
                .build()
                .unwrap_err(),
            BuildNetworkError::ZeroWidth
        );
        assert_eq!(
            NetworkBuilder::new(0).output(1).build().unwrap_err(),
            BuildNetworkError::ZeroWidth
        );
    }

    #[test]
    fn same_seed_same_weights() {
        let a = NetworkBuilder::new(4)
            .hidden(4)
            .output(1)
            .seed(9)
            .build()
            .unwrap();
        let b = NetworkBuilder::new(4)
            .hidden(4)
            .output(1)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NetworkBuilder::new(4)
            .hidden(4)
            .output(1)
            .seed(1)
            .build()
            .unwrap();
        let b = NetworkBuilder::new(4)
            .hidden(4)
            .output(1)
            .seed(2)
            .build()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn output_activation_is_applied() {
        let net = NetworkBuilder::new(2)
            .output(1)
            .output_activation(Activation::Linear)
            .build()
            .unwrap();
        assert_eq!(net.layers()[0].activation(), Activation::Linear);
    }

    #[test]
    fn weights_are_within_xavier_bound() {
        let net = NetworkBuilder::new(10)
            .hidden(10)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        for layer in net.layers() {
            let bound = (6.0 / (layer.in_dim() + layer.out_dim()) as f64).sqrt() as f32;
            for &w in layer.weights() {
                assert!(w.abs() <= bound + 1e-6);
            }
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!BuildNetworkError::MissingOutput.to_string().is_empty());
        assert!(!BuildNetworkError::ZeroWidth.to_string().is_empty());
    }
}

//! MAC datapath adapters.
//!
//! The quantised inference path of [`crate::network::QuantizedNetwork`]
//! accepts any [`ProductCorruptor`]; this module adds adapters that are
//! useful around it:
//!
//! - [`CountingMac`] wraps another corruptor and counts multiplications
//!   (used by the power/latency models, which charge per MAC);
//! - [`NoisyMac`] emulates the *software* noise-injection alternative the
//!   paper compares against (§VIII "Comparison with TRNG"): additive noise
//!   drawn from an external RNG after every MAC, which costs an RNG query
//!   per multiplication instead of being free like undervolting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shmd_volt::fault::ProductCorruptor;

/// Wraps a corruptor and counts how many products pass through.
#[derive(Clone, Debug)]
pub struct CountingMac<C> {
    inner: C,
    count: u64,
}

impl<C: ProductCorruptor> CountingMac<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> CountingMac<C> {
        CountingMac { inner, count: 0 }
    }

    /// Number of multiplications observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets the counter.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Returns the wrapped corruptor.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ProductCorruptor> ProductCorruptor for CountingMac<C> {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.count += 1;
        self.inner.corrupt(product)
    }
}

/// Software noise injection: adds bounded uniform noise to every product,
/// querying an RNG per MAC.
///
/// This models the randomisation-defense baseline that needs a TRNG/PRNG
/// query for each of the `n` MAC operations — the source of the ≈62×/4×
/// performance overheads in the paper's §VIII comparison. The noise
/// amplitude is expressed in Q32.32 product LSBs.
#[derive(Clone, Debug)]
pub struct NoisyMac {
    rng: StdRng,
    amplitude: i64,
    queries: u64,
}

impl NoisyMac {
    /// Creates a noisy MAC with the given noise amplitude (Q32.32 units).
    pub fn new(amplitude: i64, seed: u64) -> NoisyMac {
        NoisyMac {
            rng: StdRng::seed_from_u64(seed),
            amplitude: amplitude.abs(),
            queries: 0,
        }
    }

    /// RNG queries issued so far (one per MAC).
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

impl ProductCorruptor for NoisyMac {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.queries += 1;
        if self.amplitude == 0 {
            return product;
        }
        let noise = self.rng.gen_range(-self.amplitude..=self.amplitude);
        product.saturating_add(noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_volt::fault::ExactDatapath;

    #[test]
    fn counting_mac_counts() {
        let mut mac = CountingMac::new(ExactDatapath);
        for i in 0..17 {
            assert_eq!(mac.corrupt(i), i);
        }
        assert_eq!(mac.count(), 17);
        mac.reset();
        assert_eq!(mac.count(), 0);
    }

    #[test]
    fn noisy_mac_queries_once_per_mac() {
        let mut mac = NoisyMac::new(1 << 20, 4);
        for _ in 0..100 {
            mac.corrupt(0);
        }
        assert_eq!(mac.queries(), 100);
    }

    #[test]
    fn noisy_mac_noise_is_bounded() {
        let amp = 1 << 24;
        let mut mac = NoisyMac::new(amp, 5);
        for _ in 0..1000 {
            let out = mac.corrupt(1 << 32);
            assert!((out - (1i64 << 32)).abs() <= amp);
        }
    }

    #[test]
    fn zero_amplitude_is_exact() {
        let mut mac = NoisyMac::new(0, 6);
        assert_eq!(mac.corrupt(12345), 12345);
    }

    #[test]
    fn counting_mac_composes_with_network() {
        use crate::builder::NetworkBuilder;
        let net = NetworkBuilder::new(3)
            .hidden(5)
            .output(1)
            .seed(1)
            .build()
            .unwrap();
        let q = net.quantized();
        let mut mac = CountingMac::new(ExactDatapath);
        q.infer(&[0.1, 0.2, 0.3], &mut mac);
        assert_eq!(mac.count() as usize, q.mac_count());
    }
}

//! Saving and loading networks in a FANN-like text format.
//!
//! FANN persists networks as self-describing text (`.net` files); deployed
//! HMDs ship as such model files. This module provides an equivalent
//! format so trained detectors can be stored, versioned, and loaded without
//! any non-text tooling:
//!
//! ```text
//! SHMD-ANN 1
//! layers 2
//! layer 16 12 sigmoid_symmetric
//! 0.125 -0.5 ... (out*(in+1) weights, row-major, bias last)
//! layer 12 1 sigmoid
//! ...
//! ```

use crate::activation::Activation;
use crate::layer::Layer;
use crate::network::Network;
use std::fmt;
use std::io::{BufReader, Read, Write};

/// Magic header of the format.
const MAGIC: &str = "SHMD-ANN";
/// Current format version.
const VERSION: u32 = 1;
/// Largest accepted layer weight count (DoS guard for untrusted files).
const MAX_LAYER_WEIGHTS: usize = 16 << 20;

/// Error parsing a serialized network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseNetworkError {
    /// Missing or wrong magic/version header.
    BadHeader(String),
    /// A structural line did not match the expected grammar.
    BadStructure(String),
    /// A weight value failed to parse.
    BadWeight(String),
    /// The declared and actual layer/weight counts disagree.
    CountMismatch(String),
    /// Unknown activation name.
    UnknownActivation(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetworkError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseNetworkError::BadStructure(s) => write!(f, "bad structure: {s}"),
            ParseNetworkError::BadWeight(s) => write!(f, "bad weight: {s}"),
            ParseNetworkError::CountMismatch(s) => write!(f, "count mismatch: {s}"),
            ParseNetworkError::UnknownActivation(s) => write!(f, "unknown activation: {s}"),
            ParseNetworkError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for ParseNetworkError {}

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Linear => "linear",
        Activation::Sigmoid => "sigmoid",
        Activation::SigmoidSymmetric => "sigmoid_symmetric",
        Activation::Relu => "relu",
    }
}

fn activation_from_name(name: &str) -> Result<Activation, ParseNetworkError> {
    match name {
        "linear" => Ok(Activation::Linear),
        "sigmoid" => Ok(Activation::Sigmoid),
        "sigmoid_symmetric" => Ok(Activation::SigmoidSymmetric),
        "relu" => Ok(Activation::Relu),
        other => Err(ParseNetworkError::UnknownActivation(other.to_string())),
    }
}

/// Serializes a network to the text format.
pub fn to_text(network: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!("{MAGIC} {VERSION}\n"));
    out.push_str(&format!("layers {}\n", network.layers().len()));
    for layer in network.layers() {
        out.push_str(&format!(
            "layer {} {} {}\n",
            layer.in_dim(),
            layer.out_dim(),
            activation_name(layer.activation())
        ));
        let weights: Vec<String> = layer.weights().iter().map(|w| format!("{w:e}")).collect();
        out.push_str(&weights.join(" "));
        out.push('\n');
    }
    out
}

/// Writes a network to any [`Write`] (pass `&mut file` to keep the file).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save<W: Write>(network: &Network, mut writer: W) -> std::io::Result<()> {
    writer.write_all(to_text(network).as_bytes())
}

/// Parses a network from the text format.
///
/// # Errors
///
/// Returns [`ParseNetworkError`] describing the first problem found.
pub fn from_text(text: &str) -> Result<Network, ParseNetworkError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| ParseNetworkError::BadHeader("empty input".to_string()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(ParseNetworkError::BadHeader(header.to_string()));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseNetworkError::BadHeader(header.to_string()))?;
    if version != VERSION {
        return Err(ParseNetworkError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }

    let count_line = lines
        .next()
        .ok_or_else(|| ParseNetworkError::BadStructure("missing layers line".to_string()))?;
    let layer_count: usize = count_line
        .strip_prefix("layers ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| ParseNetworkError::BadStructure(count_line.to_string()))?;
    if layer_count == 0 {
        return Err(ParseNetworkError::CountMismatch(
            "a network needs at least one layer".to_string(),
        ));
    }

    let mut layers = Vec::with_capacity(layer_count);
    for idx in 0..layer_count {
        let decl = lines.next().ok_or_else(|| {
            ParseNetworkError::CountMismatch(format!("expected layer {idx}, found end of input"))
        })?;
        let mut parts = decl.split_whitespace();
        if parts.next() != Some("layer") {
            return Err(ParseNetworkError::BadStructure(decl.to_string()));
        }
        let in_dim: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseNetworkError::BadStructure(decl.to_string()))?;
        let out_dim: usize = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseNetworkError::BadStructure(decl.to_string()))?;
        let activation = activation_from_name(
            parts
                .next()
                .ok_or_else(|| ParseNetworkError::BadStructure(decl.to_string()))?,
        )?;
        if in_dim == 0 || out_dim == 0 {
            return Err(ParseNetworkError::BadStructure(format!(
                "layer {idx} has a zero dimension"
            )));
        }
        if in_dim
            .checked_add(1)
            .and_then(|w| w.checked_mul(out_dim))
            .is_none_or(|n| n > MAX_LAYER_WEIGHTS)
        {
            return Err(ParseNetworkError::BadStructure(format!(
                "layer {idx} declares an implausibly large weight count"
            )));
        }

        let weights_line = lines.next().ok_or_else(|| {
            ParseNetworkError::CountMismatch(format!("layer {idx} is missing its weights"))
        })?;
        let mut layer = Layer::zeros(in_dim, out_dim, activation);
        let expected = layer.len();
        let mut parsed = 0usize;
        for (slot, token) in layer
            .weights_mut()
            .iter_mut()
            .zip(weights_line.split_whitespace())
        {
            *slot = token
                .parse()
                .map_err(|_| ParseNetworkError::BadWeight(token.to_string()))?;
            parsed += 1;
        }
        let actual_tokens = weights_line.split_whitespace().count();
        if parsed != expected || actual_tokens != expected {
            return Err(ParseNetworkError::CountMismatch(format!(
                "layer {idx}: expected {expected} weights, found {actual_tokens}"
            )));
        }
        layers.push(layer);
    }

    // Validate chaining before handing to Network (which would panic).
    for pair in layers.windows(2) {
        if pair[0].out_dim() != pair[1].in_dim() {
            return Err(ParseNetworkError::CountMismatch(format!(
                "layer widths do not chain: {} -> {}",
                pair[0].out_dim(),
                pair[1].in_dim()
            )));
        }
    }
    Ok(Network::from_layers(layers))
}

/// Reads a network from any [`Read`] (pass `&mut file` to keep the file).
///
/// # Errors
///
/// Returns [`ParseNetworkError::Io`] for reader failures and parse errors
/// otherwise.
pub fn load<R: Read>(reader: R) -> Result<Network, ParseNetworkError> {
    let mut text = String::new();
    BufReader::new(reader)
        .read_to_string(&mut text)
        .map_err(|e| ParseNetworkError::Io(e.to_string()))?;
    from_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn sample() -> Network {
        NetworkBuilder::new(5)
            .hidden(3)
            .output(1)
            .seed(17)
            .build()
            .expect("valid")
    }

    #[test]
    fn round_trip_preserves_the_network() {
        let net = sample();
        let text = to_text(&net);
        let loaded = from_text(&text).expect("parses");
        assert_eq!(net, loaded);
    }

    #[test]
    fn round_trip_preserves_inference() {
        let net = sample();
        let loaded = from_text(&to_text(&net)).expect("parses");
        let input = [0.1, -0.2, 0.3, 0.4, -0.5];
        assert_eq!(net.forward(&input), loaded.forward(&input));
    }

    #[test]
    fn save_and_load_through_io() {
        let net = sample();
        let mut buffer = Vec::new();
        save(&net, &mut buffer).expect("writes");
        let loaded = load(buffer.as_slice()).expect("reads");
        assert_eq!(net, loaded);
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(matches!(
            from_text("FANN_FLO_2.1\n"),
            Err(ParseNetworkError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        assert!(matches!(
            from_text("SHMD-ANN 99\nlayers 1\n"),
            Err(ParseNetworkError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            from_text(""),
            Err(ParseNetworkError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_zero_layers() {
        assert!(matches!(
            from_text("SHMD-ANN 1\nlayers 0\n"),
            Err(ParseNetworkError::CountMismatch(_))
        ));
    }

    #[test]
    fn rejects_truncated_weights() {
        let net = sample();
        let text = to_text(&net);
        // Drop the last weight token.
        let truncated = text.trim_end().rsplit_once(' ').expect("has weights").0;
        assert!(matches!(
            from_text(truncated),
            Err(ParseNetworkError::CountMismatch(_))
        ));
    }

    #[test]
    fn rejects_garbage_weights() {
        let net = sample();
        let text = to_text(&net).replace(char::is_numeric, "x");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn rejects_unknown_activation() {
        let text = "SHMD-ANN 1\nlayers 1\nlayer 1 1 softmax\n0 0\n";
        assert_eq!(
            from_text(text),
            Err(ParseNetworkError::UnknownActivation("softmax".to_string()))
        );
    }

    #[test]
    fn rejects_unchained_layers() {
        let text = "SHMD-ANN 1\nlayers 2\nlayer 2 3 sigmoid\n0 0 0 0 0 0 0 0 0\nlayer 4 1 sigmoid\n0 0 0 0 0\n";
        assert!(matches!(
            from_text(text),
            Err(ParseNetworkError::CountMismatch(_))
        ));
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            ParseNetworkError::BadHeader("h".into()),
            ParseNetworkError::BadStructure("s".into()),
            ParseNetworkError::BadWeight("w".into()),
            ParseNetworkError::CountMismatch("c".into()),
            ParseNetworkError::UnknownActivation("a".into()),
            ParseNetworkError::Io("i".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_input_never_panics(text in proptest::string::string_regex(".{0,200}").unwrap()) {
            let _ = from_text(&text); // must return Err, never panic
        }

        #[test]
        fn mangled_valid_files_never_panic(cut in 0usize..400) {
            let net = sample();
            let text = to_text(&net);
            let truncated: String = text.chars().take(cut).collect();
            let _ = from_text(&truncated);
        }
    }

    #[test]
    fn oversized_declared_layers_are_rejected_without_allocating() {
        let text = "SHMD-ANN 1\nlayers 1\nlayer 99999999 99999999 sigmoid\n0\n";
        assert!(matches!(
            from_text(text),
            Err(ParseNetworkError::BadStructure(_))
        ));
    }

    #[test]
    fn weights_survive_with_full_precision() {
        let mut net = sample();
        net.layers_mut()[0].weights_mut()[0] = f32::MIN_POSITIVE;
        net.layers_mut()[0].weights_mut()[1] = -1.234_567_9e-12;
        let loaded = from_text(&to_text(&net)).expect("parses");
        assert_eq!(net, loaded, "scientific notation keeps full f32 precision");
    }
}

//! Feed-forward networks: the float training path and the quantised,
//! fault-injectable inference path.

use crate::activation::Activation;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};
use shmd_fixed::{Accumulator, Q16};
use shmd_volt::fault::ProductCorruptor;

/// A feed-forward multi-layer perceptron (float weights).
///
/// Build one with [`crate::builder::NetworkBuilder`]; train it with the
/// algorithms in [`crate::train`]; deploy it on the fault-injectable
/// datapath via [`Network::quantized`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions mismatch.
    pub fn from_layers(layers: Vec<Layer>) -> Network {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "consecutive layer dimensions must match"
            );
        }
        Network { layers }
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by trainers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of weights (including biases).
    pub fn num_weights(&self) -> usize {
        self.layers.iter().map(Layer::len).sum()
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim() * l.out_dim()).sum()
    }

    /// Exact floating-point forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`Network::input_dim`].
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass that records every layer's activations (input first,
    /// final output last). Used by backpropagation.
    pub fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Quantises the network to the Q16.16 datapath.
    pub fn quantized(&self) -> QuantizedNetwork {
        QuantizedNetwork {
            layers: self
                .layers
                .iter()
                .map(|l| QuantizedLayer {
                    in_dim: l.in_dim(),
                    out_dim: l.out_dim(),
                    activation: l.activation(),
                    weights: l.weights().iter().map(|&w| Q16::from_f32(w)).collect(),
                })
                .collect(),
        }
    }
}

/// A layer with Q16.16 weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct QuantizedLayer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: Vec<Q16>,
}

impl QuantizedLayer {
    fn forward(&self, input: &[Q16], corruptor: &mut dyn ProductCorruptor) -> Vec<Q16> {
        let stride = self.in_dim + 1;
        let mut out = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * stride..(o + 1) * stride];
            let mut acc = Accumulator::new();
            for (w, x) in row[..self.in_dim].iter().zip(input) {
                acc.mac(*w, *x, |p| corruptor.corrupt(p));
            }
            acc.add_q16(row[self.in_dim]);
            // Activations are computed by LUT/dedicated logic off the
            // multiplier's critical path, so they evaluate exactly.
            let activated = self.activation.apply(acc.to_q16().to_f64());
            out.push(Q16::from_f64(activated));
        }
        out
    }
}

/// A network quantised to Q16.16 whose multiplications run through a
/// [`ProductCorruptor`] — the deployment form of a (Stochastic-)HMD.
///
/// With [`shmd_volt::fault::ExactDatapath`] this reproduces the float
/// network up to quantisation error; with a
/// [`shmd_volt::fault::FaultInjector`] it becomes the undervolted detector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedNetwork {
    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim * l.out_dim).sum()
    }

    /// Approximate model size in bytes when stored as Q16.16 weights.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() * 4).sum()
    }

    /// Forward pass over Q16.16 inputs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward(&self, input: &[Q16], corruptor: &mut dyn ProductCorruptor) -> Vec<Q16> {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x, corruptor);
        }
        x
    }

    /// Convenience: quantises an `f32` input, runs the forward pass, and
    /// returns `f32` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer(&self, input: &[f32], corruptor: &mut dyn ProductCorruptor) -> Vec<f32> {
        let q: Vec<Q16> = input.iter().map(|&v| Q16::from_f32(v)).collect();
        self.forward(&q, corruptor)
            .into_iter()
            .map(Q16::to_f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use proptest::prelude::*;
    use shmd_volt::fault::{ExactDatapath, FaultInjector, FaultModel};

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .hidden(6)
            .output(1)
            .seed(seed)
            .build()
            .expect("valid network")
    }

    #[test]
    fn dims_and_counts() {
        let net = small_net(1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.mac_count(), 4 * 6 + 6);
        assert_eq!(net.num_weights(), 6 * 5 + 7);
    }

    #[test]
    fn forward_trace_matches_forward() {
        let net = small_net(2);
        let input = [0.1, -0.2, 0.3, 0.4];
        let trace = net.forward_trace(&input);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().expect("output"), &net.forward(&input));
    }

    #[test]
    fn quantized_exact_path_matches_float() {
        let net = small_net(3);
        let q = net.quantized();
        for trial in 0..20 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.07) % 1.0)
                .collect();
            let float_out = net.forward(&input)[0];
            let q_out = q.infer(&input, &mut ExactDatapath)[0];
            assert!(
                (float_out - q_out).abs() < 1e-2,
                "float {float_out} vs quantized {q_out}"
            );
        }
    }

    #[test]
    fn faulty_path_perturbs_scores() {
        let net = small_net(4);
        let q = net.quantized();
        let input = [0.3, 0.3, 0.3, 0.3];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).unwrap(), 9);
        let mut any_different = false;
        for _ in 0..50 {
            if (q.infer(&input, &mut inj)[0] - exact).abs() > 1e-4 {
                any_different = true;
            }
        }
        assert!(any_different, "er = 1 should visibly perturb scores");
    }

    #[test]
    fn faulty_scores_vary_across_runs() {
        // The moving-target property: the same input yields different
        // scores on different invocations.
        let net = small_net(5);
        let q = net.quantized();
        let input = [0.2, 0.4, 0.6, 0.8];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.3).unwrap(), 10);
        let scores: Vec<f32> = (0..100).map(|_| q.infer(&input, &mut inj)[0]).collect();
        let distinct = scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 2, "only {distinct} distinct scores");
    }

    #[test]
    fn zero_error_rate_injector_is_exact() {
        let net = small_net(6);
        let q = net.quantized();
        let input = [0.5, 0.1, -0.3, 0.9];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::exact(), 11);
        assert_eq!(q.infer(&input, &mut inj)[0], exact);
    }

    #[test]
    #[should_panic(expected = "consecutive layer dimensions must match")]
    fn mismatched_layers_panic() {
        use crate::layer::Layer;
        let _ = Network::from_layers(vec![
            Layer::zeros(2, 3, Activation::Sigmoid),
            Layer::zeros(4, 1, Activation::Sigmoid),
        ]);
    }

    #[test]
    fn size_bytes_counts_weights() {
        let q = small_net(7).quantized();
        assert_eq!(q.size_bytes(), (6 * 5 + 7) * 4);
    }

    proptest! {
        #[test]
        fn sigmoid_output_is_bounded_even_under_faults(
            seed in any::<u64>(),
            input in proptest::collection::vec(-1.0f32..1.0, 4)
        ) {
            let q = small_net(12).quantized();
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.8).unwrap(), seed);
            let out = q.infer(&input, &mut inj)[0];
            prop_assert!((0.0..=1.0).contains(&out), "sigmoid output {out} out of range");
        }
    }
}

//! Feed-forward networks: the float training path and the quantised,
//! fault-injectable inference path.

use crate::activation::Activation;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};
use shmd_fixed::{Accumulator, Q16};
use shmd_volt::fault::ProductCorruptor;

/// A feed-forward multi-layer perceptron (float weights).
///
/// Build one with [`crate::builder::NetworkBuilder`]; train it with the
/// algorithms in [`crate::train`]; deploy it on the fault-injectable
/// datapath via [`Network::quantized`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions mismatch.
    pub fn from_layers(layers: Vec<Layer>) -> Network {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "consecutive layer dimensions must match"
            );
        }
        Network { layers }
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by trainers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of weights (including biases).
    pub fn num_weights(&self) -> usize {
        self.layers.iter().map(Layer::len).sum()
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim() * l.out_dim()).sum()
    }

    /// Exact floating-point forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`Network::input_dim`].
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass that records every layer's activations (input first,
    /// final output last). Used by backpropagation.
    pub fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Quantises the network to the Q16.16 datapath.
    pub fn quantized(&self) -> QuantizedNetwork {
        QuantizedNetwork {
            layers: self
                .layers
                .iter()
                .map(|l| QuantizedLayer {
                    in_dim: l.in_dim(),
                    out_dim: l.out_dim(),
                    activation: l.activation(),
                    weights: l.weights().iter().map(|&w| Q16::from_f32(w)).collect(),
                })
                .collect(),
        }
    }
}

/// A layer with Q16.16 weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct QuantizedLayer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: Vec<Q16>,
}

impl QuantizedLayer {
    /// Writes the layer's activations into `out` (cleared first).
    ///
    /// Monomorphic over the corruptor so the per-MAC `corrupt` call inlines
    /// into the accumulation loop instead of going through a vtable.
    fn forward_into<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        out: &mut Vec<Q16>,
        corruptor: &mut C,
    ) {
        let stride = self.in_dim + 1;
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * stride..(o + 1) * stride];
            let mut acc = Accumulator::new();
            for (w, x) in row[..self.in_dim].iter().zip(input) {
                acc.mac(*w, *x, |p| corruptor.corrupt(p));
            }
            acc.add_q16(row[self.in_dim]);
            // Activations are computed by LUT/dedicated logic off the
            // multiplier's critical path, so they evaluate exactly.
            let activated = self.activation.apply(acc.to_q16().to_f64());
            out.push(Q16::from_f64(activated));
        }
    }
}

/// Reusable activation buffers for the allocation-free inference path.
///
/// One scratch serves any number of inferences (and any network): each
/// [`QuantizedNetwork::infer_into`] / [`QuantizedNetwork::forward_into`]
/// call clears and refills the buffers, so the steady-state query path
/// performs zero heap allocations once the buffers have grown to the
/// largest layer width seen.
#[derive(Clone, Debug, Default)]
pub struct InferenceScratch {
    /// Quantised copy of the `f32` input.
    qin: Vec<Q16>,
    /// Ping-pong activation buffers.
    ping: Vec<Q16>,
    pong: Vec<Q16>,
}

impl InferenceScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> InferenceScratch {
        InferenceScratch::default()
    }
}

/// Runs `input` through `layers`, ping-ponging activations between the two
/// scratch buffers, and returns a borrow of the buffer holding the output.
fn forward_loop<'s, C: ProductCorruptor + ?Sized>(
    layers: &[QuantizedLayer],
    input: &[Q16],
    ping: &'s mut Vec<Q16>,
    pong: &'s mut Vec<Q16>,
    corruptor: &mut C,
) -> &'s [Q16] {
    let (mut cur, mut next) = (ping, pong);
    layers[0].forward_into(input, cur, corruptor);
    for layer in &layers[1..] {
        layer.forward_into(cur, next, corruptor);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// A network quantised to Q16.16 whose multiplications run through a
/// [`ProductCorruptor`] — the deployment form of a (Stochastic-)HMD.
///
/// With [`shmd_volt::fault::ExactDatapath`] this reproduces the float
/// network up to quantisation error; with a
/// [`shmd_volt::fault::FaultInjector`] it becomes the undervolted detector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedNetwork {
    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim * l.out_dim).sum()
    }

    /// Approximate model size in bytes when stored as Q16.16 weights.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() * 4).sum()
    }

    /// Forward pass over Q16.16 inputs (object-safe entry point; thin
    /// wrapper over [`QuantizedNetwork::forward_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward(&self, input: &[Q16], corruptor: &mut dyn ProductCorruptor) -> Vec<Q16> {
        self.forward_with(input, corruptor)
    }

    /// Monomorphic forward pass over Q16.16 inputs: identical results to
    /// [`QuantizedNetwork::forward`], with the corruptor statically
    /// dispatched.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward_with<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        corruptor: &mut C,
    ) -> Vec<Q16> {
        let mut scratch = InferenceScratch::new();
        self.forward_into(input, corruptor, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: activations ping-pong through
    /// `scratch`, and the returned slice borrows the buffer holding the
    /// output layer. Bit-identical to [`QuantizedNetwork::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward_into<'s, C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        corruptor: &mut C,
        scratch: &'s mut InferenceScratch,
    ) -> &'s [Q16] {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let InferenceScratch { ping, pong, .. } = scratch;
        forward_loop(&self.layers, input, ping, pong, corruptor)
    }

    /// Convenience: quantises an `f32` input, runs the forward pass, and
    /// returns `f32` outputs (object-safe entry point; thin wrapper over
    /// [`QuantizedNetwork::infer_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer(&self, input: &[f32], corruptor: &mut dyn ProductCorruptor) -> Vec<f32> {
        self.infer_with(input, corruptor)
    }

    /// Monomorphic [`QuantizedNetwork::infer`]: identical results, with the
    /// corruptor statically dispatched so the per-MAC fault hook inlines.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer_with<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[f32],
        corruptor: &mut C,
    ) -> Vec<f32> {
        let mut scratch = InferenceScratch::new();
        self.infer_into(input, corruptor, &mut scratch)
            .iter()
            .map(|q| q.to_f32())
            .collect()
    }

    /// The steady-state query path: quantises the input and runs the
    /// forward pass entirely inside `scratch`, performing no heap
    /// allocation once the scratch buffers have warmed up. The returned
    /// Q16.16 slice borrows `scratch`; convert with [`Q16::to_f32`] as
    /// needed. Bit-identical to [`QuantizedNetwork::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer_into<'s, C: ProductCorruptor + ?Sized>(
        &self,
        input: &[f32],
        corruptor: &mut C,
        scratch: &'s mut InferenceScratch,
    ) -> &'s [Q16] {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let InferenceScratch { qin, ping, pong } = scratch;
        qin.clear();
        qin.extend(input.iter().map(|&v| Q16::from_f32(v)));
        forward_loop(&self.layers, qin, ping, pong, corruptor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use proptest::prelude::*;
    use shmd_volt::fault::{ExactDatapath, FaultInjector, FaultModel};

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .hidden(6)
            .output(1)
            .seed(seed)
            .build()
            .expect("valid network")
    }

    #[test]
    fn dims_and_counts() {
        let net = small_net(1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.mac_count(), 4 * 6 + 6);
        assert_eq!(net.num_weights(), 6 * 5 + 7);
    }

    #[test]
    fn forward_trace_matches_forward() {
        let net = small_net(2);
        let input = [0.1, -0.2, 0.3, 0.4];
        let trace = net.forward_trace(&input);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().expect("output"), &net.forward(&input));
    }

    #[test]
    fn quantized_exact_path_matches_float() {
        let net = small_net(3);
        let q = net.quantized();
        for trial in 0..20 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.07) % 1.0)
                .collect();
            let float_out = net.forward(&input)[0];
            let q_out = q.infer(&input, &mut ExactDatapath)[0];
            assert!(
                (float_out - q_out).abs() < 1e-2,
                "float {float_out} vs quantized {q_out}"
            );
        }
    }

    #[test]
    fn faulty_path_perturbs_scores() {
        let net = small_net(4);
        let q = net.quantized();
        let input = [0.3, 0.3, 0.3, 0.3];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).unwrap(), 9);
        let mut any_different = false;
        for _ in 0..50 {
            if (q.infer(&input, &mut inj)[0] - exact).abs() > 1e-4 {
                any_different = true;
            }
        }
        assert!(any_different, "er = 1 should visibly perturb scores");
    }

    #[test]
    fn faulty_scores_vary_across_runs() {
        // The moving-target property: the same input yields different
        // scores on different invocations.
        let net = small_net(5);
        let q = net.quantized();
        let input = [0.2, 0.4, 0.6, 0.8];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.3).unwrap(), 10);
        let scores: Vec<f32> = (0..100).map(|_| q.infer(&input, &mut inj)[0]).collect();
        let distinct = scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 2, "only {distinct} distinct scores");
    }

    #[test]
    fn zero_error_rate_injector_is_exact() {
        let net = small_net(6);
        let q = net.quantized();
        let input = [0.5, 0.1, -0.3, 0.9];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::exact(), 11);
        assert_eq!(q.infer(&input, &mut inj)[0], exact);
    }

    #[test]
    fn infer_with_and_infer_into_are_bit_identical_to_infer() {
        // The monomorphic and allocation-free entry points must be exact
        // drop-in replacements for the dyn path, faulty or not.
        let net = small_net(8);
        let q = net.quantized();
        let model = FaultModel::from_error_rate(0.4).unwrap();
        let mut scratch = InferenceScratch::new();
        for trial in 0..40i64 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.13).sin())
                .collect();
            // Same-seeded injectors: identical RNG streams per path.
            let mut a = FaultInjector::new(model.clone(), trial as u64);
            let mut b = FaultInjector::new(model.clone(), trial as u64);
            let mut c = FaultInjector::new(model.clone(), trial as u64);
            let via_dyn = q.infer(&input, &mut a);
            let via_generic = q.infer_with(&input, &mut b);
            let via_scratch: Vec<f32> = q
                .infer_into(&input, &mut c, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(via_dyn, via_generic, "infer_with diverged on {input:?}");
            assert_eq!(via_dyn, via_scratch, "infer_into diverged on {input:?}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_networks() {
        // A single scratch serves differently-shaped networks back to back.
        let small = small_net(9).quantized();
        let wide = NetworkBuilder::new(4)
            .hidden(11)
            .hidden(5)
            .output(2)
            .seed(10)
            .build()
            .expect("valid network")
            .quantized();
        let input = [0.2, -0.4, 0.6, 0.8];
        let mut scratch = InferenceScratch::new();
        let expect_small = small.infer(&input, &mut ExactDatapath);
        let expect_wide = wide.infer(&input, &mut ExactDatapath);
        for _ in 0..3 {
            let s: Vec<f32> = small
                .infer_into(&input, &mut ExactDatapath, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(s, expect_small);
            let w: Vec<f32> = wide
                .infer_into(&input, &mut ExactDatapath, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(w, expect_wide);
        }
    }

    #[test]
    fn new_path_preserves_sign_and_immune_lsb_invariants() {
        // The paper's structural immunities must survive the hot-path
        // rewrite: across many faulty inferences, the sign bit and the 8
        // immune LSBs of the raw product never flip.
        use shmd_volt::multiplier::{IMMUNE_LSBS, SIGN_BIT};
        let q = small_net(13).quantized();
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).unwrap(), 14);
        let mut scratch = InferenceScratch::new();
        for trial in 0..200i64 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.31).cos())
                .collect();
            let _ = q.infer_into(&input, &mut inj, &mut scratch);
        }
        let stats = inj.stats();
        assert!(stats.faulty > 0, "the workload must actually fault");
        assert_eq!(stats.bit_flips[SIGN_BIT], 0, "sign bit flipped");
        for bit in 0..IMMUNE_LSBS {
            assert_eq!(stats.bit_flips[bit], 0, "immune LSB {bit} flipped");
        }
    }

    #[test]
    #[should_panic(expected = "consecutive layer dimensions must match")]
    fn mismatched_layers_panic() {
        use crate::layer::Layer;
        let _ = Network::from_layers(vec![
            Layer::zeros(2, 3, Activation::Sigmoid),
            Layer::zeros(4, 1, Activation::Sigmoid),
        ]);
    }

    #[test]
    fn size_bytes_counts_weights() {
        let q = small_net(7).quantized();
        assert_eq!(q.size_bytes(), (6 * 5 + 7) * 4);
    }

    proptest! {
        #[test]
        fn sigmoid_output_is_bounded_even_under_faults(
            seed in any::<u64>(),
            input in proptest::collection::vec(-1.0f32..1.0, 4)
        ) {
            let q = small_net(12).quantized();
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.8).unwrap(), seed);
            let out = q.infer(&input, &mut inj)[0];
            prop_assert!((0.0..=1.0).contains(&out), "sigmoid output {out} out of range");
        }
    }
}

//! Feed-forward networks: the float training path and the quantised,
//! fault-injectable inference path.

use crate::activation::Activation;
use crate::fast_tanh::fast_tanh;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};
use shmd_fixed::{Accumulator, LaneAccumulator, Q16};
use shmd_volt::fault::{LaneCorruptor, ProductCorruptor};

/// A feed-forward multi-layer perceptron (float weights).
///
/// Build one with [`crate::builder::NetworkBuilder`]; train it with the
/// algorithms in [`crate::train`]; deploy it on the fault-injectable
/// datapath via [`Network::quantized`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions mismatch.
    pub fn from_layers(layers: Vec<Layer>) -> Network {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "consecutive layer dimensions must match"
            );
        }
        Network { layers }
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by trainers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of weights (including biases).
    pub fn num_weights(&self) -> usize {
        self.layers.iter().map(Layer::len).sum()
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim() * l.out_dim()).sum()
    }

    /// Exact floating-point forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`Network::input_dim`].
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        // Ping-pong between two buffers so a pass allocates twice in
        // total, not once per layer (see `Layer::forward_into`).
        let mut cur = input.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass that records every layer's activations (input first,
    /// final output last). Used by backpropagation.
    pub fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Quantises the network to the Q16.16 datapath.
    pub fn quantized(&self) -> QuantizedNetwork {
        QuantizedNetwork {
            layers: self
                .layers
                .iter()
                .map(|l| {
                    let weights: Vec<Q16> = l.weights().iter().map(|&w| Q16::from_f32(w)).collect();
                    let row_abs = row_abs_sums(&weights, l.in_dim(), l.out_dim());
                    QuantizedLayer {
                        in_dim: l.in_dim(),
                        out_dim: l.out_dim(),
                        activation: l.activation(),
                        weights,
                        row_abs,
                    }
                })
                .collect(),
        }
    }
}

/// Per-neuron sum of weight magnitudes (weights only, bias excluded),
/// the precomputed half of the batched MAC's no-overflow bound: with
/// `|x| ≤ 2³¹` for any Q16.16 activation, every product in neuron `o`'s
/// row is bounded by `row_abs[o] · 2³¹` in total magnitude.
fn row_abs_sums(weights: &[Q16], in_dim: usize, out_dim: usize) -> Vec<u64> {
    let stride = in_dim + 1;
    (0..out_dim)
        .map(|o| {
            weights[o * stride..o * stride + in_dim]
                .iter()
                .map(|w| u64::from(w.to_bits().unsigned_abs()))
                .sum()
        })
        .collect()
}

/// A layer with Q16.16 weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct QuantizedLayer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: Vec<Q16>,
    /// Per-neuron `Σ|w_raw|` (see [`row_abs_sums`]); derived from
    /// `weights`, never serialized independently.
    row_abs: Vec<u64>,
}

impl QuantizedLayer {
    /// Writes the layer's activations into `out` (cleared first).
    ///
    /// Monomorphic over the corruptor so the per-MAC `corrupt` call inlines
    /// into the accumulation loop instead of going through a vtable.
    fn forward_into<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        out: &mut Vec<Q16>,
        corruptor: &mut C,
    ) {
        let stride = self.in_dim + 1;
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * stride..(o + 1) * stride];
            let mut acc = Accumulator::new();
            for (w, x) in row[..self.in_dim].iter().zip(input) {
                acc.mac(*w, *x, |p| corruptor.corrupt(p));
            }
            acc.add_q16(row[self.in_dim]);
            // Activations are computed by LUT/dedicated logic off the
            // multiplier's critical path, so they evaluate exactly.
            let activated = self.activation.apply(acc.to_q16().to_f64());
            out.push(Q16::from_f64(activated));
        }
    }

    /// Batched forward pass over a lane-major activation plane: `input`
    /// holds `in_dim × LANES` values with lane `l`'s activation for input
    /// `i` at `input[i * LANES + l]`, and `out` is filled the same way
    /// (`out[o * LANES + l]`).
    ///
    /// The weight row is walked once for the whole batch, in two phases
    /// that keep the MAC loop free of *any* per-product stream logic:
    ///
    /// 1. **Event walk.** The corruptor's gap countdowns are drained over
    ///    the row ([`LaneCorruptor::lane_run`] hands back whole fault-free
    ///    runs per lane); each fault event computes just its own lane's
    ///    product, corrupts it, and records the substitution. Every lane
    ///    sees its draws in exactly the per-`(neuron, input)` order the
    ///    scalar path uses, so each lane's corruption stream stays
    ///    bit-identical.
    /// 2. **Span + patch.** One uninterrupted
    ///    [`LaneAccumulator::mac_span`] accumulates the whole row for all
    ///    lanes — the straight-line kernel the vectorizer chews on — and
    ///    the recorded substitutions are then patched into the affected
    ///    lane sums. A per-row magnitude bound (`row_abs · 2³¹` plus the
    ///    bias and every substituted product) proves no partial sum could
    ///    have left the `i64` range, which makes the patched sum
    ///    bit-identical to the sequential saturating accumulation; in the
    ///    adversarial case where the bound cannot prove it, the affected
    ///    lane is replayed sequentially with the recorded substitutions —
    ///    the scalar law verbatim.
    fn forward_batch_into<const LANES: usize, C: LaneCorruptor<LANES> + ?Sized>(
        &self,
        input: &[Q16],
        out: &mut Vec<Q16>,
        corruptor: &mut C,
        events: &mut Vec<RowEvent>,
    ) {
        debug_assert_eq!(input.len(), self.in_dim * LANES);
        let stride = self.in_dim + 1;
        out.clear();
        out.reserve(self.out_dim * LANES);
        for o in 0..self.out_dim {
            let row = &self.weights[o * stride..(o + 1) * stride];
            let bias = row[self.in_dim];
            // Phase 1: drain this row's fault events lane by lane. Each
            // lane's (lane_run, fault) call sequence — and so its RNG
            // draw sequence — is exactly the per-`(neuron, input)` walk
            // the scalar path issues over this row, so per-lane
            // bit-identity is untouched, and the MAC loop below stays
            // free of any per-product stream logic. A lane's whole
            // fault-free row is consumed by a single `lane_run` call.
            events.clear();
            let mut sub_mag = [0u128; LANES];
            let span = self.in_dim as u64;
            for l in 0..LANES {
                let mut at = 0u64;
                while at < span {
                    match corruptor.lane_run(l, span - at) {
                        Some(offset) => {
                            let j = (at + offset) as usize;
                            let p = Q16::raw_product(row[j], input[j * LANES + l]);
                            let c = corruptor.fault(l, p);
                            if c != p {
                                events.push(RowEvent {
                                    index: j as u32,
                                    lane: l as u32,
                                    product: p,
                                    corrupted: c,
                                });
                                // Double-counts |p| (already inside
                                // row_abs's bound) — conservative is fine.
                                sub_mag[l] +=
                                    u128::from(p.unsigned_abs()) + u128::from(c.unsigned_abs());
                            }
                            at += offset + 1;
                        }
                        None => break,
                    }
                }
            }
            // Phase 2: one straight-line span over the whole row…
            let bias_mag = u128::from(bias.to_bits().unsigned_abs()) << 16;
            let row_bound = (u128::from(self.row_abs[o]) << 31) + bias_mag;
            let mut acc = LaneAccumulator::<LANES>::new();
            if row_bound <= i64::MAX as u128 {
                // The magnitude bound already proves no partial sum can
                // leave i64, so the saturating clamps are dead code and
                // the span can use plain wrapping adds (about half the
                // vectorized cost). Real quantized rows land here.
                acc.mac_span_wrapping(&row[..self.in_dim], &input[..self.in_dim * LANES]);
            } else {
                acc.mac_span(&row[..self.in_dim], &input[..self.in_dim * LANES]);
            }
            // …then patch the (rare) substituted products in.
            if !events.is_empty() {
                for ev in events.iter() {
                    let l = ev.lane as usize;
                    if row_bound + sub_mag[l] <= i64::MAX as u128 {
                        acc.patch(l, ev.product, ev.corrupted);
                    }
                }
                // Lanes whose bound cannot rule out saturation replay the
                // scalar law verbatim with the recorded substitutions.
                for l in 0..LANES {
                    if sub_mag[l] != 0 && row_bound + sub_mag[l] > i64::MAX as u128 {
                        let mut sum = 0i64;
                        let mut next = events.iter().filter(|e| e.lane as usize == l);
                        let mut pending = next.next();
                        for (j, &w) in row[..self.in_dim].iter().enumerate() {
                            let mut p = Q16::raw_product(w, input[j * LANES + l]);
                            if let Some(e) = pending {
                                if e.index as usize == j {
                                    p = e.corrupted;
                                    pending = next.next();
                                }
                            }
                            sum = sum.saturating_add(p);
                        }
                        acc.set_raw(l, sum);
                    }
                }
            }
            acc.add_q16(bias);
            // The activation stage is the batched path's largest
            // non-event cost (one libm call per neuron per lane), so
            // hidden tanh layers go through the exhaustively verified
            // fast table instead — see the `fast_tanh` module for why
            // that is bit-identical to `Activation::apply`, which the
            // scalar path keeps as the oracle.
            if self.activation == Activation::SigmoidSymmetric {
                let table = fast_tanh();
                for l in 0..LANES {
                    out.push(table.apply(acc.to_q16(l)));
                }
            } else {
                for l in 0..LANES {
                    let activated = self.activation.apply(acc.to_q16(l).to_f64());
                    out.push(Q16::from_f64(activated));
                }
            }
        }
    }
}

/// Reusable activation buffers for the allocation-free inference path.
///
/// One scratch serves any number of inferences (and any network): each
/// [`QuantizedNetwork::infer_into`] / [`QuantizedNetwork::forward_into`]
/// call clears and refills the buffers, so the steady-state query path
/// performs zero heap allocations once the buffers have grown to the
/// largest layer width seen.
#[derive(Clone, Debug, Default)]
pub struct InferenceScratch {
    /// Quantised copy of the `f32` input.
    qin: Vec<Q16>,
    /// Ping-pong activation buffers.
    ping: Vec<Q16>,
    pong: Vec<Q16>,
}

impl InferenceScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> InferenceScratch {
        InferenceScratch::default()
    }
}

/// Runs `input` through `layers`, ping-ponging activations between the two
/// scratch buffers, and returns a borrow of the buffer holding the output.
fn forward_loop<'s, C: ProductCorruptor + ?Sized>(
    layers: &[QuantizedLayer],
    input: &[Q16],
    ping: &'s mut Vec<Q16>,
    pong: &'s mut Vec<Q16>,
    corruptor: &mut C,
) -> &'s [Q16] {
    let (mut cur, mut next) = (ping, pong);
    layers[0].forward_into(input, cur, corruptor);
    for layer in &layers[1..] {
        layer.forward_into(cur, next, corruptor);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// One recorded fault substitution inside a neuron row: lane `lane`'s
/// product at weight `index` came out of the corruptor as `corrupted`
/// instead of `product`. Collected during the batched MAC's event walk and
/// patched into the lane sums after the straight-line span (see
/// [`QuantizedLayer::forward_batch_into`]).
#[derive(Clone, Copy, Debug)]
struct RowEvent {
    index: u32,
    lane: u32,
    product: i64,
    corrupted: i64,
}

/// Reusable lane-major activation planes for the batched inference path —
/// the structure-of-arrays counterpart of [`InferenceScratch`].
///
/// One ping/pong pair serves the *whole batch*: a plane stores layer
/// activations for all `LANES` queries interleaved lane-major
/// (`plane[i * LANES + l]` is query `l`'s activation `i`), which is what
/// lets the per-weight MAC touch `LANES` adjacent values. Buffers grow to
/// the largest `layer width × LANES` seen and are reused thereafter.
#[derive(Clone, Debug)]
pub struct BatchScratch<const LANES: usize> {
    /// Lane-major quantised copy of the `f32` inputs.
    qin: Vec<Q16>,
    /// Ping-pong lane-major activation planes.
    ping: Vec<Q16>,
    pong: Vec<Q16>,
    /// Per-row fault-substitution records (cleared every neuron row).
    events: Vec<RowEvent>,
}

impl<const LANES: usize> BatchScratch<LANES> {
    /// An empty scratch; planes grow on first use.
    pub fn new() -> BatchScratch<LANES> {
        BatchScratch {
            qin: Vec::new(),
            ping: Vec::new(),
            pong: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl<const LANES: usize> Default for BatchScratch<LANES> {
    fn default() -> BatchScratch<LANES> {
        BatchScratch::new()
    }
}

/// Batched counterpart of [`forward_loop`] over lane-major planes.
fn forward_batch_loop<'s, const LANES: usize, C: LaneCorruptor<LANES> + ?Sized>(
    layers: &[QuantizedLayer],
    input: &[Q16],
    ping: &'s mut Vec<Q16>,
    pong: &'s mut Vec<Q16>,
    corruptor: &mut C,
    events: &mut Vec<RowEvent>,
) -> &'s [Q16] {
    let (mut cur, mut next) = (ping, pong);
    layers[0].forward_batch_into(input, cur, corruptor, events);
    for layer in &layers[1..] {
        layer.forward_batch_into(cur, next, corruptor, events);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// A network quantised to Q16.16 whose multiplications run through a
/// [`ProductCorruptor`] — the deployment form of a (Stochastic-)HMD.
///
/// With [`shmd_volt::fault::ExactDatapath`] this reproduces the float
/// network up to quantisation error; with a
/// [`shmd_volt::fault::FaultInjector`] it becomes the undervolted detector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedNetwork {
    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Number of multiply–accumulate operations per inference.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.in_dim * l.out_dim).sum()
    }

    /// Approximate model size in bytes when stored as Q16.16 weights.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len() * 4).sum()
    }

    /// Forward pass over Q16.16 inputs (object-safe entry point; thin
    /// wrapper over [`QuantizedNetwork::forward_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward(&self, input: &[Q16], corruptor: &mut dyn ProductCorruptor) -> Vec<Q16> {
        self.forward_with(input, corruptor)
    }

    /// Monomorphic forward pass over Q16.16 inputs: identical results to
    /// [`QuantizedNetwork::forward`], with the corruptor statically
    /// dispatched.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward_with<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        corruptor: &mut C,
    ) -> Vec<Q16> {
        let mut scratch = InferenceScratch::new();
        self.forward_into(input, corruptor, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: activations ping-pong through
    /// `scratch`, and the returned slice borrows the buffer holding the
    /// output layer. Bit-identical to [`QuantizedNetwork::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn forward_into<'s, C: ProductCorruptor + ?Sized>(
        &self,
        input: &[Q16],
        corruptor: &mut C,
        scratch: &'s mut InferenceScratch,
    ) -> &'s [Q16] {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let InferenceScratch { ping, pong, .. } = scratch;
        forward_loop(&self.layers, input, ping, pong, corruptor)
    }

    /// Convenience: quantises an `f32` input, runs the forward pass, and
    /// returns `f32` outputs (object-safe entry point; thin wrapper over
    /// [`QuantizedNetwork::infer_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer(&self, input: &[f32], corruptor: &mut dyn ProductCorruptor) -> Vec<f32> {
        self.infer_with(input, corruptor)
    }

    /// Monomorphic [`QuantizedNetwork::infer`]: identical results, with the
    /// corruptor statically dispatched so the per-MAC fault hook inlines.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer_with<C: ProductCorruptor + ?Sized>(
        &self,
        input: &[f32],
        corruptor: &mut C,
    ) -> Vec<f32> {
        let mut scratch = InferenceScratch::new();
        self.infer_into(input, corruptor, &mut scratch)
            .iter()
            .map(|q| q.to_f32())
            .collect()
    }

    /// The steady-state query path: quantises the input and runs the
    /// forward pass entirely inside `scratch`, performing no heap
    /// allocation once the scratch buffers have warmed up. The returned
    /// Q16.16 slice borrows `scratch`; convert with [`Q16::to_f32`] as
    /// needed. Bit-identical to [`QuantizedNetwork::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`QuantizedNetwork::input_dim`].
    pub fn infer_into<'s, C: ProductCorruptor + ?Sized>(
        &self,
        input: &[f32],
        corruptor: &mut C,
        scratch: &'s mut InferenceScratch,
    ) -> &'s [Q16] {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let InferenceScratch { qin, ping, pong } = scratch;
        qin.clear();
        qin.extend(input.iter().map(|&v| Q16::from_f32(v)));
        forward_loop(&self.layers, qin, ping, pong, corruptor)
    }

    /// Batched allocation-free forward pass over a lane-major Q16.16 input
    /// plane (`input[i * LANES + l]` is lane `l`'s input `i`). Returns the
    /// lane-major output plane (`out[o * LANES + l]`), borrowing `scratch`.
    ///
    /// Lane `l`'s outputs are bit-identical to a scalar
    /// [`QuantizedNetwork::forward_into`] run with a corruptor walking the
    /// same per-lane corruption stream — the batch only changes memory
    /// layout and instruction scheduling, never arithmetic or fault law.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from
    /// [`QuantizedNetwork::input_dim`]` × LANES`.
    pub fn forward_batch_into<'s, const LANES: usize, C: LaneCorruptor<LANES> + ?Sized>(
        &self,
        input: &[Q16],
        corruptor: &mut C,
        scratch: &'s mut BatchScratch<LANES>,
    ) -> &'s [Q16] {
        assert_eq!(
            input.len(),
            self.input_dim() * LANES,
            "lane-major input plane width mismatch"
        );
        let BatchScratch {
            ping, pong, events, ..
        } = scratch;
        forward_batch_loop(&self.layers, input, ping, pong, corruptor, events)
    }

    /// The batched steady-state query path: quantises `LANES` `f32` inputs
    /// into the lane-major plane and runs the whole batch through every
    /// layer simultaneously, allocation-free once `scratch` has warmed up.
    /// Returns the lane-major Q16.16 output plane (`out[o * LANES + l]`),
    /// borrowing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if any `inputs[l].len()` differs from
    /// [`QuantizedNetwork::input_dim`].
    pub fn infer_batch_into<'s, const LANES: usize, C: LaneCorruptor<LANES> + ?Sized>(
        &self,
        inputs: &[&[f32]; LANES],
        corruptor: &mut C,
        scratch: &'s mut BatchScratch<LANES>,
    ) -> &'s [Q16] {
        let in_dim = self.input_dim();
        for input in inputs {
            assert_eq!(input.len(), in_dim, "input width mismatch");
        }
        let BatchScratch {
            qin,
            ping,
            pong,
            events,
        } = scratch;
        qin.clear();
        qin.reserve(in_dim * LANES);
        for i in 0..in_dim {
            for input in inputs {
                qin.push(Q16::from_f32(input[i]));
            }
        }
        forward_batch_loop(&self.layers, qin, ping, pong, corruptor, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use proptest::prelude::*;
    use shmd_volt::fault::{ExactDatapath, FaultInjector, FaultModel};

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new(4)
            .hidden(6)
            .output(1)
            .seed(seed)
            .build()
            .expect("valid network")
    }

    #[test]
    fn dims_and_counts() {
        let net = small_net(1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.mac_count(), 4 * 6 + 6);
        assert_eq!(net.num_weights(), 6 * 5 + 7);
    }

    #[test]
    fn forward_trace_matches_forward() {
        let net = small_net(2);
        let input = [0.1, -0.2, 0.3, 0.4];
        let trace = net.forward_trace(&input);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.last().expect("output"), &net.forward(&input));
    }

    #[test]
    fn quantized_exact_path_matches_float() {
        let net = small_net(3);
        let q = net.quantized();
        for trial in 0..20 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.07) % 1.0)
                .collect();
            let float_out = net.forward(&input)[0];
            let q_out = q.infer(&input, &mut ExactDatapath)[0];
            assert!(
                (float_out - q_out).abs() < 1e-2,
                "float {float_out} vs quantized {q_out}"
            );
        }
    }

    #[test]
    fn faulty_path_perturbs_scores() {
        let net = small_net(4);
        let q = net.quantized();
        let input = [0.3, 0.3, 0.3, 0.3];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).unwrap(), 9);
        let mut any_different = false;
        for _ in 0..50 {
            if (q.infer(&input, &mut inj)[0] - exact).abs() > 1e-4 {
                any_different = true;
            }
        }
        assert!(any_different, "er = 1 should visibly perturb scores");
    }

    #[test]
    fn faulty_scores_vary_across_runs() {
        // The moving-target property: the same input yields different
        // scores on different invocations.
        let net = small_net(5);
        let q = net.quantized();
        let input = [0.2, 0.4, 0.6, 0.8];
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.3).unwrap(), 10);
        let scores: Vec<f32> = (0..100).map(|_| q.infer(&input, &mut inj)[0]).collect();
        let distinct = scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 2, "only {distinct} distinct scores");
    }

    #[test]
    fn zero_error_rate_injector_is_exact() {
        let net = small_net(6);
        let q = net.quantized();
        let input = [0.5, 0.1, -0.3, 0.9];
        let exact = q.infer(&input, &mut ExactDatapath)[0];
        let mut inj = FaultInjector::new(FaultModel::exact(), 11);
        assert_eq!(q.infer(&input, &mut inj)[0], exact);
    }

    #[test]
    fn infer_with_and_infer_into_are_bit_identical_to_infer() {
        // The monomorphic and allocation-free entry points must be exact
        // drop-in replacements for the dyn path, faulty or not.
        let net = small_net(8);
        let q = net.quantized();
        let model = FaultModel::from_error_rate(0.4).unwrap();
        let mut scratch = InferenceScratch::new();
        for trial in 0..40i64 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.13).sin())
                .collect();
            // Same-seeded injectors: identical RNG streams per path.
            let mut a = FaultInjector::new(model.clone(), trial as u64);
            let mut b = FaultInjector::new(model.clone(), trial as u64);
            let mut c = FaultInjector::new(model.clone(), trial as u64);
            let via_dyn = q.infer(&input, &mut a);
            let via_generic = q.infer_with(&input, &mut b);
            let via_scratch: Vec<f32> = q
                .infer_into(&input, &mut c, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(via_dyn, via_generic, "infer_with diverged on {input:?}");
            assert_eq!(via_dyn, via_scratch, "infer_into diverged on {input:?}");
        }
    }

    #[test]
    fn scratch_is_reusable_across_networks() {
        // A single scratch serves differently-shaped networks back to back.
        let small = small_net(9).quantized();
        let wide = NetworkBuilder::new(4)
            .hidden(11)
            .hidden(5)
            .output(2)
            .seed(10)
            .build()
            .expect("valid network")
            .quantized();
        let input = [0.2, -0.4, 0.6, 0.8];
        let mut scratch = InferenceScratch::new();
        let expect_small = small.infer(&input, &mut ExactDatapath);
        let expect_wide = wide.infer(&input, &mut ExactDatapath);
        for _ in 0..3 {
            let s: Vec<f32> = small
                .infer_into(&input, &mut ExactDatapath, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(s, expect_small);
            let w: Vec<f32> = wide
                .infer_into(&input, &mut ExactDatapath, &mut scratch)
                .iter()
                .map(|v| v.to_f32())
                .collect();
            assert_eq!(w, expect_wide);
        }
    }

    #[test]
    fn new_path_preserves_sign_and_immune_lsb_invariants() {
        // The paper's structural immunities must survive the hot-path
        // rewrite: across many faulty inferences, the sign bit and the 8
        // immune LSBs of the raw product never flip.
        use shmd_volt::multiplier::{IMMUNE_LSBS, SIGN_BIT};
        let q = small_net(13).quantized();
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).unwrap(), 14);
        let mut scratch = InferenceScratch::new();
        for trial in 0..200i64 {
            let input: Vec<f32> = (0..4)
                .map(|i| ((trial * 4 + i) as f32 * 0.31).cos())
                .collect();
            let _ = q.infer_into(&input, &mut inj, &mut scratch);
        }
        let stats = inj.stats();
        assert!(stats.faulty > 0, "the workload must actually fault");
        assert_eq!(stats.bit_flips[SIGN_BIT], 0, "sign bit flipped");
        for bit in 0..IMMUNE_LSBS {
            assert_eq!(stats.bit_flips[bit], 0, "immune LSB {bit} flipped");
        }
    }

    fn batch_matches_scalar_at_width<const LANES: usize>(seed: u64) {
        use shmd_volt::fault::{BatchFaultStream, FaultStream};
        // A deeper, wider net than the smoke fixture so multiple layers,
        // ping-pong swaps, and multi-output planes are all exercised.
        let net = NetworkBuilder::new(4)
            .hidden(9)
            .hidden(5)
            .output(2)
            .seed(seed)
            .build()
            .expect("valid network")
            .quantized();
        let model = FaultModel::from_error_rate(0.4)
            .unwrap()
            .with_near_zero_width(20);
        let inputs_owned: Vec<Vec<f32>> = (0..LANES)
            .map(|l| {
                (0..4)
                    .map(|i| ((seed as f32).mul_add(0.01, (l * 4 + i) as f32 * 0.17)).sin())
                    .collect()
            })
            .collect();
        let inputs: [&[f32]; LANES] = std::array::from_fn(|l| inputs_owned[l].as_slice());
        let seeds: [u64; LANES] = std::array::from_fn(|l| seed ^ (l as u64).wrapping_mul(0x9e37));
        let mut batch_scratch = BatchScratch::<LANES>::new();
        let mut stream = BatchFaultStream::new(&model, seeds);
        let plane = net
            .infer_batch_into(&inputs, &mut stream, &mut batch_scratch)
            .to_vec();
        assert_eq!(plane.len(), 2 * LANES);
        let mut scratch = InferenceScratch::new();
        for l in 0..LANES {
            let mut scalar_stream = FaultStream::new(&model, seeds[l]);
            let scalar = net.infer_into(inputs[l], &mut scalar_stream, &mut scratch);
            for (o, &expected) in scalar.iter().enumerate() {
                assert_eq!(
                    plane[o * LANES + l],
                    expected,
                    "width {LANES}, lane {l}, output {o} diverged"
                );
            }
            assert_eq!(
                stream.stats(l),
                scalar_stream.stats(),
                "width {LANES}, lane {l} fault statistics diverged"
            );
        }
    }

    #[test]
    fn batch_inference_is_bit_identical_to_scalar_at_every_width() {
        // The tentpole determinism claim, at every batch width the serving
        // layer can dispatch: lane l of the batched path reproduces the
        // scalar path bit for bit — outputs *and* fault statistics.
        batch_matches_scalar_at_width::<1>(101);
        batch_matches_scalar_at_width::<2>(102);
        batch_matches_scalar_at_width::<3>(103);
        batch_matches_scalar_at_width::<4>(104);
        batch_matches_scalar_at_width::<5>(105);
        batch_matches_scalar_at_width::<6>(106);
        batch_matches_scalar_at_width::<7>(107);
        batch_matches_scalar_at_width::<8>(108);
        batch_matches_scalar_at_width::<9>(109);
        batch_matches_scalar_at_width::<10>(110);
        batch_matches_scalar_at_width::<11>(111);
        batch_matches_scalar_at_width::<12>(112);
        batch_matches_scalar_at_width::<13>(113);
        batch_matches_scalar_at_width::<14>(114);
        batch_matches_scalar_at_width::<15>(115);
        batch_matches_scalar_at_width::<16>(116);
    }

    #[test]
    fn exact_batch_matches_exact_scalar() {
        use shmd_volt::fault::ExactLanes;
        const LANES: usize = 8;
        let net = small_net(21).quantized();
        let inputs_owned: Vec<Vec<f32>> = (0..LANES)
            .map(|l| (0..4).map(|i| ((l * 4 + i) as f32 * 0.23).cos()).collect())
            .collect();
        let inputs: [&[f32]; LANES] = std::array::from_fn(|l| inputs_owned[l].as_slice());
        let mut scratch = BatchScratch::<LANES>::new();
        let plane = net
            .infer_batch_into(&inputs, &mut ExactLanes, &mut scratch)
            .to_vec();
        for (l, input) in inputs.iter().enumerate() {
            let scalar = net.infer(input, &mut ExactDatapath);
            for (o, &expected) in scalar.iter().enumerate() {
                assert_eq!(plane[o * LANES + l].to_f32(), expected, "lane {l}");
            }
        }
    }

    proptest! {
        #[test]
        fn batch_bit_identity_holds_for_arbitrary_inputs_and_seeds(
            seed in any::<u64>(),
            er in 0.05f64..0.9,
            inputs in proptest::collection::vec(
                proptest::collection::vec(-1.0f32..1.0, 4), 8)
        ) {
            use shmd_volt::fault::{BatchFaultStream, FaultStream};
            const LANES: usize = 8;
            let net = small_net(31).quantized();
            let model = FaultModel::from_error_rate(er).unwrap().with_near_zero_width(20);
            let input_refs: [&[f32]; LANES] =
                std::array::from_fn(|l| inputs[l].as_slice());
            let seeds: [u64; LANES] =
                std::array::from_fn(|l| seed.wrapping_add(l as u64));
            let mut batch_scratch = BatchScratch::<LANES>::new();
            let mut stream = BatchFaultStream::new(&model, seeds);
            let plane = net
                .infer_batch_into(&input_refs, &mut stream, &mut batch_scratch)
                .to_vec();
            let mut scratch = InferenceScratch::new();
            for l in 0..LANES {
                let mut scalar_stream = FaultStream::new(&model, seeds[l]);
                let scalar = net.infer_into(input_refs[l], &mut scalar_stream, &mut scratch);
                for (o, &expected) in scalar.iter().enumerate() {
                    prop_assert_eq!(plane[o * LANES + l], expected,
                        "lane {} output {} diverged", l, o);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "consecutive layer dimensions must match")]
    fn mismatched_layers_panic() {
        use crate::layer::Layer;
        let _ = Network::from_layers(vec![
            Layer::zeros(2, 3, Activation::Sigmoid),
            Layer::zeros(4, 1, Activation::Sigmoid),
        ]);
    }

    #[test]
    fn size_bytes_counts_weights() {
        let q = small_net(7).quantized();
        assert_eq!(q.size_bytes(), (6 * 5 + 7) * 4);
    }

    proptest! {
        #[test]
        fn sigmoid_output_is_bounded_even_under_faults(
            seed in any::<u64>(),
            input in proptest::collection::vec(-1.0f32..1.0, 4)
        ) {
            let q = small_net(12).quantized();
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.8).unwrap(), seed);
            let out = q.infer(&input, &mut inj)[0];
            prop_assert!((0.0..=1.0).contains(&out), "sigmoid output {out} out of range");
        }
    }
}

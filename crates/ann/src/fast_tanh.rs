//! A bit-identical fast path for the batched activation stage.
//!
//! The batched inference engine spends more time applying `tanh` to layer
//! accumulators than it spends on the MAC lanes it vectorized: libm's
//! `tanh` costs ~15 ns per call and a hidden layer applies it once per
//! neuron per lane. This module replaces it — for the batched path only —
//! with a segmented polynomial whose output is *proven* equal to the
//! scalar oracle `Q16::from_f64(x.to_f64().tanh())` on the entire input
//! domain, so the batched engine stays bit-identical to the scalar
//! reference path by construction, not by sampling.
//!
//! The proof is exhaustive enumeration, which is only possible because
//! the activation input is not a general `f64`: it is `acc.to_q16(l)`, a
//! Q16.16 value, so the whole domain is the 2³² grid points of an `i32`.
//! Symmetry and saturation shrink that to something enumerable in tens of
//! milliseconds:
//!
//! - **Saturation**: for `|x| ≥ 8.0`, `65536·tanh(|x|)` lies in
//!   `[65535.98…, 65536)`, so half-away-from-zero rounding gives exactly
//!   `±1.0` in Q16.16. The build asserts the endpoint and monotonicity of
//!   `tanh` covers the rest. Only `|x| < 8.0` — 2 × 524 288 grid points —
//!   needs the table.
//! - **Exhaustive verification**: at build time, *every* non-saturated
//!   grid point (positive and negative; the build does not assume libm's
//!   `tanh` is odd) is evaluated through the exact same code the hot path
//!   runs and compared against the oracle. Any segment containing a
//!   mismatch is flagged, and the hot path falls back to libm for that
//!   segment forever. Equality is therefore machine-checked over the full
//!   domain every time the table is built.
//!
//! The approximation itself is a degree-5 Newton-form Chebyshev
//! interpolant of `tanh` per segment, 256 segments of width 1/32 over
//! `[0, 8)`. Interpolation error is ~1e-13 — about five orders of
//! magnitude below the half-ulp-of-Q16 distance that could change a
//! rounding decision — which is why the fallback set is expected (and
//! observed) to be empty; the flag exists so correctness never rests on
//! that expectation.
//!
//! The table builds lazily on first use (a few tens of milliseconds,
//! once per process) and costs 12 KiB.

use shmd_fixed::Q16;
use std::sync::OnceLock;

/// log2 of raw Q16 steps per segment: 2¹¹ steps → segment width 1/32.
const SEG_SHIFT: u32 = 11;
/// Segments covering `[0, 8)`: `8·65536 / 2¹¹`.
const SEG_COUNT: usize = 256;
/// Raw magnitude at and above which `tanh` rounds to exactly ±1.0.
const SAT_BITS: u64 = (SEG_COUNT as u64) << SEG_SHIFT;
/// Interpolation nodes (degree 5) per segment.
const NODES: usize = 6;
/// Raw Q16 bits of 1.0, the saturated output.
const ONE_BITS: i32 = 1 << 16;

/// The verified segmented-polynomial `tanh` table.
pub struct FastTanh {
    /// Newton-form divided-difference coefficients per segment, for the
    /// variable `t = |x| − seg_left`.
    coeffs: Box<[[f64; NODES]; SEG_COUNT]>,
    /// Chebyshev node offsets relative to the segment's left edge
    /// (identical for every segment).
    nodes: [f64; NODES],
    /// Segments where verification found any rounding mismatch; the hot
    /// path uses libm there. Expected empty — see the module docs.
    fallback: [bool; SEG_COUNT],
}

impl FastTanh {
    /// `Q16::from_f64(x.to_f64().tanh())`, bit-for-bit, via the table.
    #[inline]
    pub fn apply(&self, x: Q16) -> Q16 {
        let bits = i64::from(x.to_bits());
        let mag = bits.unsigned_abs();
        if mag >= SAT_BITS {
            return Q16::from_bits(if bits < 0 { -ONE_BITS } else { ONE_BITS });
        }
        let seg = (mag >> SEG_SHIFT) as usize;
        if self.fallback[seg] {
            return Q16::from_f64(x.to_f64().tanh());
        }
        // t and seg_left are exact in f64 (small integers / 2¹⁶).
        let seg_left = ((seg as u64) << SEG_SHIFT) as f64 / 65536.0;
        let t = mag as f64 / 65536.0 - seg_left;
        let c = &self.coeffs[seg];
        let mut y = c[NODES - 1];
        for i in (0..NODES - 1).rev() {
            y = y * (t - self.nodes[i]) + c[i];
        }
        // Half-away-from-zero rounding of `y·65536`, matching
        // `Q16::from_f64` for non-negative inputs: the +0.5 addition is
        // exact below 2⁵² and the `as` cast truncates toward zero. `y` is
        // a tanh approximation on `[0, 8)`, so `y·65536 + 0.5` stays far
        // inside i32 range and the cast cannot saturate differently.
        let r = (y * 65536.0 + 0.5) as i32;
        Q16::from_bits(if bits < 0 { -r } else { r })
    }

    fn build() -> FastTanh {
        // Saturation endpoint: tanh(8)·65536 must round to 65536. tanh is
        // strictly increasing and bounded by 1, so every grid point at or
        // beyond 8.0 rounds identically.
        assert_eq!(Q16::from_f64(8.0f64.tanh()).to_bits(), ONE_BITS);
        assert_eq!(Q16::from_f64((-8.0f64).tanh()).to_bits(), -ONE_BITS);

        // Chebyshev nodes of [0, h), shared by every segment.
        let h = f64::from(1u32 << SEG_SHIFT) / 65536.0;
        let mut nodes = [0.0; NODES];
        for (i, n) in nodes.iter_mut().enumerate() {
            let theta = (2 * i + 1) as f64 / (2 * NODES) as f64 * std::f64::consts::PI;
            *n = h / 2.0 * (1.0 + theta.cos());
        }

        let mut coeffs = Box::new([[0.0; NODES]; SEG_COUNT]);
        for (seg, c) in coeffs.iter_mut().enumerate() {
            let seg_left = ((seg as u64) << SEG_SHIFT) as f64 / 65536.0;
            // Divided differences over (nodes, tanh(seg_left + node)).
            let mut d = [0.0; NODES];
            for (i, v) in d.iter_mut().enumerate() {
                *v = (seg_left + nodes[i]).tanh();
            }
            for order in 1..NODES {
                for i in (order..NODES).rev() {
                    d[i] = (d[i] - d[i - 1]) / (nodes[i] - nodes[i - order]);
                }
            }
            *c = d;
        }

        let mut table = FastTanh {
            coeffs,
            nodes,
            fallback: [false; SEG_COUNT],
        };

        // Exhaustive verification of every non-saturated grid point, both
        // signs, through the exact hot-path code. A segment is poisoned on
        // its first mismatch and re-checked against the (libm) fallback.
        for seg in 0..SEG_COUNT {
            let lo = (seg as u64) << SEG_SHIFT;
            let hi = lo + (1 << SEG_SHIFT);
            'points: for mag in lo..hi {
                for bits in [mag as i64, -(mag as i64)] {
                    let x = Q16::from_bits(bits as i32);
                    if table.apply(x) != Q16::from_f64(x.to_f64().tanh()) {
                        table.fallback[seg] = true;
                        break 'points;
                    }
                }
            }
        }
        table
    }

    /// Number of segments routed to the libm fallback (diagnostics).
    pub fn fallback_segments(&self) -> usize {
        self.fallback.iter().filter(|&&f| f).count()
    }
}

/// The process-wide table, built and verified on first use.
pub fn fast_tanh() -> &'static FastTanh {
    static TABLE: OnceLock<FastTanh> = OnceLock::new();
    TABLE.get_or_init(FastTanh::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The build itself exhaustively proves `apply` equals the oracle on
    /// every grid point in `(-8, 8)` — any mismatch only flips a segment
    /// to the libm fallback, which is oracle-identical by definition. This
    /// test re-checks a sample independently (including both saturation
    /// regions and i32::MIN, which the build handles by branch, not by
    /// enumeration) so a bug in the build loop itself cannot hide.
    #[test]
    fn matches_oracle_on_grid_sample_and_edges() {
        let t = fast_tanh();
        let edges = [
            0i32,
            1,
            -1,
            ONE_BITS,
            -ONE_BITS,
            SAT_BITS as i32 - 1,
            SAT_BITS as i32,
            -(SAT_BITS as i32),
            i32::MAX,
            i32::MIN,
        ];
        for &bits in &edges {
            let x = Q16::from_bits(bits);
            assert_eq!(
                t.apply(x),
                Q16::from_f64(x.to_f64().tanh()),
                "edge bits {bits}"
            );
        }
        // Deterministic stride sweep across the full i32 domain.
        let mut bits = i32::MIN;
        loop {
            let x = Q16::from_bits(bits);
            assert_eq!(t.apply(x), Q16::from_f64(x.to_f64().tanh()), "bits {bits}");
            match bits.checked_add(40_503) {
                Some(b) => bits = b,
                None => break,
            }
        }
    }

    /// The interpolant is accurate enough that no segment should need the
    /// libm fallback; if this ever fires, correctness is unaffected (the
    /// fallback is the oracle) but the perf win shrank — worth knowing.
    #[test]
    fn no_segment_falls_back_to_libm() {
        assert_eq!(fast_tanh().fallback_segments(), 0);
    }
}

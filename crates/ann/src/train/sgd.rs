//! Incremental stochastic gradient descent with momentum
//! (FANN's `FANN_TRAIN_INCREMENTAL`).

use super::{gradients, TrainData};
use crate::network::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Incremental SGD trainer.
///
/// Weights update after every sample; sample order is reshuffled per epoch
/// with a deterministic seed.
#[derive(Clone, Debug)]
pub struct SgdTrainer {
    learning_rate: f64,
    momentum: f64,
    epochs: usize,
    target_mse: f64,
    seed: u64,
}

impl SgdTrainer {
    /// A trainer with FANN-like defaults (η = 0.7, no momentum).
    pub fn new() -> SgdTrainer {
        SgdTrainer {
            learning_rate: 0.7,
            momentum: 0.0,
            epochs: 500,
            target_mse: 1e-4,
            seed: 0,
        }
    }

    /// Sets the learning rate.
    #[must_use]
    pub fn learning_rate(mut self, lr: f64) -> SgdTrainer {
        self.learning_rate = lr;
        self
    }

    /// Sets the momentum coefficient.
    #[must_use]
    pub fn momentum(mut self, m: f64) -> SgdTrainer {
        self.momentum = m;
        self
    }

    /// Sets the maximum number of epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> SgdTrainer {
        self.epochs = epochs;
        self
    }

    /// Stops early when the MSE drops below this value.
    #[must_use]
    pub fn target_mse(mut self, mse: f64) -> SgdTrainer {
        self.target_mse = mse;
        self
    }

    /// Sets the shuffle seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> SgdTrainer {
        self.seed = seed;
        self
    }

    /// Trains the network in place; returns the final MSE.
    pub fn train(&self, net: &mut Network, data: &TrainData) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut velocity: Vec<Vec<f32>> = net.layers().iter().map(|l| vec![0.0; l.len()]).collect();
        let mut last_mse = f64::INFINITY;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (input, target) = data.sample(i);
                let grads = gradients(net, input, target);
                for (l, layer) in net.layers_mut().iter_mut().enumerate() {
                    for (w, (wt, &g)) in layer.weights_mut().iter_mut().zip(&grads[l]).enumerate() {
                        let v = self.momentum * f64::from(velocity[l][w])
                            - self.learning_rate * f64::from(g);
                        velocity[l][w] = v as f32;
                        *wt += v as f32;
                    }
                }
            }
            last_mse = super::mse(net, data);
            if last_mse < self.target_mse {
                break;
            }
        }
        last_mse
    }
}

impl Default for SgdTrainer {
    fn default() -> SgdTrainer {
        SgdTrainer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::train::mse;

    fn and_data() -> TrainData {
        TrainData::new(
            vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
            vec![vec![0.], vec![0.], vec![0.], vec![1.]],
        )
        .unwrap()
    }

    #[test]
    fn learns_linearly_separable_problem() {
        let mut net = NetworkBuilder::new(2).output(1).seed(1).build().unwrap();
        let data = and_data();
        let final_mse = SgdTrainer::new().epochs(2000).train(&mut net, &data);
        assert!(final_mse < 0.05, "mse = {final_mse}");
    }

    #[test]
    fn early_stops_at_target() {
        let mut net = NetworkBuilder::new(2).output(1).seed(1).build().unwrap();
        let data = and_data();
        let final_mse = SgdTrainer::new()
            .epochs(100_000)
            .target_mse(0.05)
            .train(&mut net, &data);
        assert!(final_mse < 0.06);
    }

    #[test]
    fn momentum_does_not_break_training() {
        let mut net = NetworkBuilder::new(2).output(1).seed(2).build().unwrap();
        let data = and_data();
        let final_mse = SgdTrainer::new()
            .momentum(0.5)
            .epochs(2000)
            .train(&mut net, &data);
        assert!(final_mse < 0.05, "mse = {final_mse}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = and_data();
        let mut a = NetworkBuilder::new(2)
            .hidden(3)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        let mut b = a.clone();
        SgdTrainer::new().seed(9).epochs(50).train(&mut a, &data);
        SgdTrainer::new().seed(9).epochs(50).train(&mut b, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn mse_decreases_with_training() {
        let data = and_data();
        let mut net = NetworkBuilder::new(2)
            .hidden(3)
            .output(1)
            .seed(4)
            .build()
            .unwrap();
        let before = mse(&net, &data);
        SgdTrainer::new().epochs(500).train(&mut net, &data);
        assert!(mse(&net, &data) < before);
    }
}

//! Quantisation-aware fine-tuning.
//!
//! The deployed HMD runs in Q16.16, but training happens in `f32`; the
//! quantisation gap slightly shifts scores near the decision boundary.
//! Quantisation-aware training (QAT) closes it: after ordinary training, a
//! few fine-tuning epochs run the *forward* pass through the quantised
//! datapath (straight-through estimator: gradients flow as if the forward
//! pass were exact). The paper needs no QAT — its defense explicitly avoids
//! retraining — but a deployment that wants the last fraction of a percent
//! of baseline accuracy can apply it before enabling undervolting.

use super::{gradients, TrainData};
use crate::network::Network;
use shmd_fixed::Q16;

/// Quantisation-aware fine-tuner (straight-through estimator).
#[derive(Clone, Debug)]
pub struct QatTrainer {
    learning_rate: f64,
    epochs: usize,
}

impl QatTrainer {
    /// A fine-tuner with a deliberately small learning rate (QAT polishes,
    /// it does not re-learn).
    pub fn new() -> QatTrainer {
        QatTrainer {
            learning_rate: 0.05,
            epochs: 30,
        }
    }

    /// Sets the learning rate.
    #[must_use]
    pub fn learning_rate(mut self, lr: f64) -> QatTrainer {
        self.learning_rate = lr;
        self
    }

    /// Sets the number of fine-tuning epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> QatTrainer {
        self.epochs = epochs;
        self
    }

    /// Fine-tunes the network so that its *quantised* weights fit the data:
    /// each epoch snaps weights to Q16.16, computes gradients at the
    /// snapped point (straight-through), and applies them to the full-
    /// precision weights. Returns the quantised-forward MSE after tuning.
    pub fn fine_tune(&self, net: &mut Network, data: &TrainData) -> f64 {
        // Keep full-precision "shadow" weights; gradients accumulate there.
        let mut shadow: Vec<Vec<f32>> = net.layers().iter().map(|l| l.weights().to_vec()).collect();
        for _ in 0..self.epochs {
            // Snap the working network to the quantised grid.
            for (layer, sw) in net.layers_mut().iter_mut().zip(&shadow) {
                for (w, &s) in layer.weights_mut().iter_mut().zip(sw) {
                    *w = Q16::from_f32(s).to_f32();
                }
            }
            // Batch gradient at the snapped point.
            let shape: Vec<usize> = net.layers().iter().map(|l| l.len()).collect();
            let mut batch: Vec<Vec<f64>> = shape.iter().map(|&n| vec![0.0; n]).collect();
            for (input, target) in data.iter() {
                let g = gradients(net, input, target);
                for (acc, gl) in batch.iter_mut().zip(&g) {
                    for (a, &v) in acc.iter_mut().zip(gl) {
                        *a += f64::from(v);
                    }
                }
            }
            let n = data.len() as f64;
            // Straight-through: apply to the shadow weights.
            for (sw, gl) in shadow.iter_mut().zip(&batch) {
                for (s, &g) in sw.iter_mut().zip(gl) {
                    *s -= (self.learning_rate * g / n) as f32;
                }
            }
        }
        // Leave the network holding the quantised weights.
        for (layer, sw) in net.layers_mut().iter_mut().zip(&shadow) {
            for (w, &s) in layer.weights_mut().iter_mut().zip(sw) {
                *w = Q16::from_f32(s).to_f32();
            }
        }
        super::mse(net, data)
    }
}

impl Default for QatTrainer {
    fn default() -> QatTrainer {
        QatTrainer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::train::{mse, RpropTrainer};
    use shmd_volt::fault::ExactDatapath;

    fn xor_data() -> TrainData {
        TrainData::new(
            vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
            vec![vec![0.], vec![1.], vec![1.], vec![0.]],
        )
        .expect("valid")
    }

    #[test]
    fn qat_leaves_weights_on_the_q16_grid() {
        let mut net = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        let data = xor_data();
        RpropTrainer::new().epochs(400).train(&mut net, &data);
        QatTrainer::new().epochs(5).fine_tune(&mut net, &data);
        for layer in net.layers() {
            for &w in layer.weights() {
                assert_eq!(
                    w,
                    shmd_fixed::Q16::from_f32(w).to_f32(),
                    "weight {w} is off the Q16.16 grid"
                );
            }
        }
    }

    #[test]
    fn qat_does_not_destroy_a_trained_network() {
        let mut net = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        let data = xor_data();
        RpropTrainer::new().epochs(600).train(&mut net, &data);
        let before = mse(&net, &data);
        let after = QatTrainer::new().fine_tune(&mut net, &data);
        assert!(after < before + 0.05, "QAT regressed: {before} -> {after}");
    }

    #[test]
    fn qat_shrinks_the_quantisation_gap() {
        let mut plain = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(5)
            .build()
            .unwrap();
        let data = xor_data();
        RpropTrainer::new().epochs(600).train(&mut plain, &data);
        let mut tuned = plain.clone();
        QatTrainer::new().fine_tune(&mut tuned, &data);

        // Measure quantised-path MSE for both.
        let q_mse = |net: &Network| {
            let q = net.quantized();
            let mut scratch = crate::network::InferenceScratch::new();
            let mut total = 0.0;
            for (input, target) in data.iter() {
                let y =
                    f64::from(q.infer_into(input, &mut ExactDatapath, &mut scratch)[0].to_f32());
                total += (y - f64::from(target[0])).powi(2);
            }
            total / data.len() as f64
        };
        assert!(
            q_mse(&tuned) <= q_mse(&plain) + 1e-6,
            "QAT should not widen the quantised-path error: {} vs {}",
            q_mse(&tuned),
            q_mse(&plain)
        );
    }
}

//! Batch iRPROP− training (FANN's default algorithm).
//!
//! Resilient propagation adapts a per-weight step size from the *sign* of
//! the batch gradient only, which makes it insensitive to gradient magnitude
//! and very fast on small dense networks like HMDs. The iRPROP− variant
//! zeroes the stored gradient after a sign change instead of backtracking.

use super::{gradients, TrainData};
use crate::network::Network;

/// iRPROP− trainer with FANN's default hyper-parameters.
#[derive(Clone, Debug)]
pub struct RpropTrainer {
    increase: f64,
    decrease: f64,
    delta_zero: f64,
    delta_min: f64,
    delta_max: f64,
    epochs: usize,
    target_mse: f64,
}

impl RpropTrainer {
    /// A trainer with the canonical constants
    /// (η⁺ = 1.2, η⁻ = 0.5, Δ₀ = 0.1, Δmin = 10⁻⁶, Δmax = 50).
    pub fn new() -> RpropTrainer {
        RpropTrainer {
            increase: 1.2,
            decrease: 0.5,
            delta_zero: 0.1,
            delta_min: 1e-6,
            delta_max: 50.0,
            epochs: 500,
            target_mse: 1e-4,
        }
    }

    /// Sets the maximum number of epochs.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> RpropTrainer {
        self.epochs = epochs;
        self
    }

    /// Stops early when the MSE drops below this value.
    #[must_use]
    pub fn target_mse(mut self, mse: f64) -> RpropTrainer {
        self.target_mse = mse;
        self
    }

    /// Trains the network in place; returns the final MSE.
    pub fn train(&self, net: &mut Network, data: &TrainData) -> f64 {
        let shape: Vec<usize> = net.layers().iter().map(|l| l.len()).collect();
        let mut step: Vec<Vec<f64>> = shape.iter().map(|&n| vec![self.delta_zero; n]).collect();
        let mut prev_grad: Vec<Vec<f64>> = shape.iter().map(|&n| vec![0.0; n]).collect();
        let mut last_mse = f64::INFINITY;

        for _ in 0..self.epochs {
            // Accumulate the batch gradient.
            let mut batch: Vec<Vec<f64>> = shape.iter().map(|&n| vec![0.0; n]).collect();
            for (input, target) in data.iter() {
                let g = gradients(net, input, target);
                for (acc, gl) in batch.iter_mut().zip(&g) {
                    for (a, &v) in acc.iter_mut().zip(gl) {
                        *a += f64::from(v);
                    }
                }
            }
            // Per-weight sign-based update.
            for (l, layer) in net.layers_mut().iter_mut().enumerate() {
                for (w, wt) in layer.weights_mut().iter_mut().enumerate() {
                    let g = batch[l][w];
                    let sign_product = g * prev_grad[l][w];
                    if sign_product > 0.0 {
                        step[l][w] = (step[l][w] * self.increase).min(self.delta_max);
                        *wt -= (g.signum() * step[l][w]) as f32;
                        prev_grad[l][w] = g;
                    } else if sign_product < 0.0 {
                        step[l][w] = (step[l][w] * self.decrease).max(self.delta_min);
                        // iRPROP−: no weight revert, just forget the gradient.
                        prev_grad[l][w] = 0.0;
                    } else {
                        *wt -= (g.signum() * step[l][w]) as f32;
                        prev_grad[l][w] = g;
                    }
                }
            }
            last_mse = super::mse(net, data);
            if last_mse < self.target_mse {
                break;
            }
        }
        last_mse
    }
}

impl Default for RpropTrainer {
    fn default() -> RpropTrainer {
        RpropTrainer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::train::mse;

    fn or_data() -> TrainData {
        TrainData::new(
            vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
            vec![vec![0.], vec![1.], vec![1.], vec![1.]],
        )
        .unwrap()
    }

    #[test]
    fn learns_or() {
        let mut net = NetworkBuilder::new(2).output(1).seed(1).build().unwrap();
        let data = or_data();
        let final_mse = RpropTrainer::new().epochs(300).train(&mut net, &data);
        assert!(final_mse < 0.05, "mse = {final_mse}");
    }

    #[test]
    fn is_deterministic() {
        let data = or_data();
        let mut a = NetworkBuilder::new(2)
            .hidden(3)
            .output(1)
            .seed(2)
            .build()
            .unwrap();
        let mut b = a.clone();
        RpropTrainer::new().epochs(60).train(&mut a, &data);
        RpropTrainer::new().epochs(60).train(&mut b, &data);
        assert_eq!(a, b, "rprop is a deterministic batch algorithm");
    }

    #[test]
    fn early_stops_at_target() {
        let mut net = NetworkBuilder::new(2).output(1).seed(3).build().unwrap();
        let data = or_data();
        let final_mse = RpropTrainer::new()
            .epochs(1_000_000)
            .target_mse(0.05)
            .train(&mut net, &data);
        assert!(final_mse < 0.06);
    }

    #[test]
    fn mse_decreases() {
        let data = or_data();
        let mut net = NetworkBuilder::new(2)
            .hidden(3)
            .output(1)
            .seed(4)
            .build()
            .unwrap();
        let before = mse(&net, &data);
        RpropTrainer::new().epochs(100).train(&mut net, &data);
        assert!(mse(&net, &data) < before);
    }
}

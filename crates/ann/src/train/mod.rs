//! Training algorithms: incremental SGD and batch iRPROP− (FANN's default).

mod data;
mod quantaware;
mod rprop;
mod sgd;

pub use data::{TrainData, TrainDataError};
pub use quantaware::QatTrainer;
pub use rprop::RpropTrainer;
pub use sgd::SgdTrainer;

use crate::network::Network;

/// Per-weight gradients of the half-squared error on one sample, laid out
/// exactly like the network's layers.
#[allow(clippy::needless_range_loop)] // lock-step indexing across arrays
pub(crate) fn gradients(net: &Network, input: &[f32], target: &[f32]) -> Vec<Vec<f32>> {
    let acts = net.forward_trace(input);
    let output = acts.last().expect("trace has output");
    // Output delta: (y - t) * f'(y)
    let out_layer = net.layers().last().expect("non-empty");
    let mut delta: Vec<f64> = output
        .iter()
        .zip(target)
        .map(|(&y, &t)| {
            f64::from(y - t) * out_layer.activation().derivative_from_output(f64::from(y))
        })
        .collect();

    let mut grads: Vec<Vec<f32>> = net.layers().iter().map(|l| vec![0.0; l.len()]).collect();

    for l in (0..net.layers().len()).rev() {
        let layer = &net.layers()[l];
        let prev = &acts[l];
        let stride = layer.in_dim() + 1;
        for o in 0..layer.out_dim() {
            let d = delta[o];
            let row = &mut grads[l][o * stride..(o + 1) * stride];
            for (g, &x) in row[..layer.in_dim()].iter_mut().zip(prev) {
                *g = (d * f64::from(x)) as f32;
            }
            row[layer.in_dim()] = d as f32; // bias
        }
        if l > 0 {
            // Propagate delta to the previous layer.
            let prev_layer = &net.layers()[l - 1];
            let mut next_delta = vec![0.0f64; layer.in_dim()];
            for o in 0..layer.out_dim() {
                let row = layer.row(o);
                let d = delta[o];
                for (nd, &w) in next_delta.iter_mut().zip(&row[..layer.in_dim()]) {
                    *nd += d * f64::from(w);
                }
            }
            for (nd, &a) in next_delta.iter_mut().zip(prev.iter()) {
                *nd *= prev_layer.activation().derivative_from_output(f64::from(a));
            }
            delta = next_delta;
        }
    }
    grads
}

/// Mean squared error of a network over a dataset.
pub fn mse(net: &Network, data: &TrainData) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (input, target) in data.iter() {
        let out = net.forward(input);
        for (&y, &t) in out.iter().zip(target) {
            total += f64::from(y - t) * f64::from(y - t);
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn xor_data() -> TrainData {
        TrainData::new(
            vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
            vec![vec![0.], vec![1.], vec![1.], vec![0.]],
        )
        .expect("valid")
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // lock-step indexing across arrays
    fn numeric_gradient_check() {
        let mut net = NetworkBuilder::new(2)
            .hidden(3)
            .output(1)
            .seed(11)
            .build()
            .unwrap();
        let input = [0.4f32, -0.7];
        let target = [1.0f32];
        let analytic = gradients(&net, &input, &target);
        let eps = 1e-3f32;
        let loss = |n: &Network| {
            let y = n.forward(&input)[0];
            0.5 * f64::from(y - target[0]) * f64::from(y - target[0])
        };
        for l in 0..net.layers().len() {
            for w in 0..net.layers()[l].len() {
                let orig = net.layers()[l].weights()[w];
                net.layers_mut()[l].weights_mut()[w] = orig + eps;
                let hi = loss(&net);
                net.layers_mut()[l].weights_mut()[w] = orig - eps;
                let lo = loss(&net);
                net.layers_mut()[l].weights_mut()[w] = orig;
                let numeric = (hi - lo) / (2.0 * f64::from(eps));
                let got = f64::from(analytic[l][w]);
                assert!(
                    (numeric - got).abs() < 2e-2,
                    "layer {l} weight {w}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn sgd_learns_xor() {
        let mut net = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(7)
            .build()
            .unwrap();
        let data = xor_data();
        SgdTrainer::new()
            .epochs(5000)
            .learning_rate(0.7)
            .train(&mut net, &data);
        assert!(mse(&net, &data) < 0.05, "mse = {}", mse(&net, &data));
    }

    #[test]
    fn rprop_learns_xor() {
        let mut net = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(5)
            .build()
            .unwrap();
        let data = xor_data();
        RpropTrainer::new().epochs(800).train(&mut net, &data);
        assert!(mse(&net, &data) < 0.05, "mse = {}", mse(&net, &data));
    }

    #[test]
    fn rprop_converges_faster_than_sgd_per_epoch() {
        // Motivation for FANN's default choice on this tiny problem.
        let data = xor_data();
        let mut a = NetworkBuilder::new(2)
            .hidden(4)
            .output(1)
            .seed(5)
            .build()
            .unwrap();
        let mut b = a.clone();
        RpropTrainer::new().epochs(300).train(&mut a, &data);
        SgdTrainer::new()
            .epochs(300)
            .learning_rate(0.3)
            .train(&mut b, &data);
        assert!(mse(&a, &data) <= mse(&b, &data) + 0.05);
    }
}

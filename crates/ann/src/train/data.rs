//! Training datasets.

use std::fmt;

/// Error constructing a [`TrainData`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainDataError {
    /// The dataset contains no samples.
    Empty,
    /// Input and target sample counts differ.
    LengthMismatch {
        /// Number of inputs supplied.
        inputs: usize,
        /// Number of targets supplied.
        targets: usize,
    },
    /// A sample's width differs from the first sample's.
    RaggedSample(usize),
}

impl fmt::Display for TrainDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainDataError::Empty => f.write_str("training data is empty"),
            TrainDataError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} inputs but {targets} targets")
            }
            TrainDataError::RaggedSample(i) => {
                write!(f, "sample {i} has a different width than sample 0")
            }
        }
    }
}

impl std::error::Error for TrainDataError {}

/// A supervised dataset of `(input, target)` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainData {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl TrainData {
    /// Validates and wraps paired inputs and targets.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainDataError`] when the sets are empty, mismatched in
    /// length, or ragged.
    pub fn new(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Result<TrainData, TrainDataError> {
        if inputs.is_empty() {
            return Err(TrainDataError::Empty);
        }
        if inputs.len() != targets.len() {
            return Err(TrainDataError::LengthMismatch {
                inputs: inputs.len(),
                targets: targets.len(),
            });
        }
        let in_w = inputs[0].len();
        let t_w = targets[0].len();
        for (i, (x, t)) in inputs.iter().zip(&targets).enumerate() {
            if x.len() != in_w || t.len() != t_w {
                return Err(TrainDataError::RaggedSample(i));
            }
        }
        Ok(TrainData { inputs, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when there are no samples (cannot occur after validation).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target width.
    pub fn target_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// Iterates `(input, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], &[f32])> {
        self.inputs
            .iter()
            .map(Vec::as_slice)
            .zip(self.targets.iter().map(Vec::as_slice))
    }

    /// The sample at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn sample(&self, idx: usize) -> (&[f32], &[f32]) {
        (&self.inputs[idx], &self.targets[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_data_reports_dims() {
        let d = TrainData::new(vec![vec![1., 2.], vec![3., 4.]], vec![vec![0.], vec![1.]])
            .expect("valid");
        assert_eq!(d.len(), 2);
        assert_eq!(d.input_dim(), 2);
        assert_eq!(d.target_dim(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(
            TrainData::new(vec![], vec![]).unwrap_err(),
            TrainDataError::Empty
        );
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let err = TrainData::new(vec![vec![1.]], vec![]).unwrap_err();
        assert_eq!(
            err,
            TrainDataError::LengthMismatch {
                inputs: 1,
                targets: 0
            }
        );
    }

    #[test]
    fn ragged_is_rejected() {
        let err =
            TrainData::new(vec![vec![1., 2.], vec![3.]], vec![vec![0.], vec![1.]]).unwrap_err();
        assert_eq!(err, TrainDataError::RaggedSample(1));
    }

    #[test]
    fn iter_yields_pairs() {
        let d = TrainData::new(vec![vec![1.], vec![2.]], vec![vec![3.], vec![4.]]).unwrap();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs[0], (&[1.0f32][..], &[3.0f32][..]));
        assert_eq!(pairs[1], (&[2.0f32][..], &[4.0f32][..]));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(TrainDataError::RaggedSample(5).to_string().contains('5'));
    }
}

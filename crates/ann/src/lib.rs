//! A FANN-style feed-forward neural-network library with a fault-injectable
//! inference datapath.
//!
//! The paper trains its HMD with the Fast Artificial Neural Network library
//! (FANN) and integrates a stochastic fault-injection tool into FANN's
//! inference path to emulate undervolting. This crate reproduces both
//! halves:
//!
//! - training runs in ordinary `f32` floating point with either incremental
//!   SGD or batch iRPROP− (FANN's default algorithm) — see [`train`];
//! - inference can additionally run over a quantised Q16.16 datapath
//!   ([`network::QuantizedNetwork`]) whose every multiplication product is
//!   routed through a [`shmd_volt::fault::ProductCorruptor`], the hook the
//!   undervolting fault model plugs into.
//!
//! # Example
//!
//! ```
//! use shmd_ann::builder::NetworkBuilder;
//! use shmd_ann::train::{SgdTrainer, TrainData};
//! use shmd_volt::fault::ExactDatapath;
//!
//! // Learn XOR.
//! let mut net = NetworkBuilder::new(2)
//!     .hidden(4)
//!     .output(1)
//!     .seed(7)
//!     .build()?;
//! let data = TrainData::new(
//!     vec![vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]],
//!     vec![vec![0.], vec![1.], vec![1.], vec![0.]],
//! )?;
//! SgdTrainer::new().epochs(4000).learning_rate(0.7).train(&mut net, &data);
//! assert!(net.forward(&[1.0, 0.0])[0] > 0.5);
//!
//! // The quantised path gives the same answer through an exact datapath.
//! let q = net.quantized();
//! assert!(q.infer(&[1.0, 0.0], &mut shmd_volt::fault::ExactDatapath)[0] > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod builder;
pub mod fast_tanh;
pub mod io;
pub mod layer;
pub mod mac;
pub mod network;
pub mod train;

pub use activation::Activation;
pub use builder::{BuildNetworkError, NetworkBuilder};
pub use network::{Network, QuantizedNetwork};

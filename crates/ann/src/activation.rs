//! Neuron activation functions (the FANN subset used by HMDs).

use serde::{Deserialize, Serialize};

/// An activation function applied to a neuron's weighted sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity: `f(x) = x`.
    Linear,
    /// Logistic sigmoid: `f(x) = 1 / (1 + e^(−x))`, output in `(0, 1)`.
    /// FANN's `FANN_SIGMOID`; the output activation of the paper's HMD,
    /// whose score distribution Figure 2(b) plots.
    #[default]
    Sigmoid,
    /// Symmetric sigmoid `f(x) = tanh(x)`, output in `(−1, 1)`.
    /// FANN's `FANN_SIGMOID_SYMMETRIC`.
    SigmoidSymmetric,
    /// Rectified linear unit: `f(x) = max(0, x)`.
    Relu,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::SigmoidSymmetric => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// The derivative expressed in terms of the activation *output* `y`
    /// (how FANN computes it during backpropagation).
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            // Clamp away from 0 like FANN does to keep training moving when
            // neurons saturate.
            Activation::Sigmoid => (y * (1.0 - y)).max(0.01),
            Activation::SigmoidSymmetric => (1.0 - y * y).max(0.01),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The output range `(lo, hi)` of the activation, unbounded sides as
    /// infinities.
    pub fn output_range(self) -> (f64, f64) {
        match self {
            Activation::Linear => (f64::NEG_INFINITY, f64::INFINITY),
            Activation::Sigmoid => (0.0, 1.0),
            Activation::SigmoidSymmetric => (-1.0, 1.0),
            Activation::Relu => (0.0, f64::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_fixed_points() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(10.0) > 0.9999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.0001);
    }

    #[test]
    fn symmetric_sigmoid_is_tanh() {
        for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((Activation::SigmoidSymmetric.apply(x) - f64::tanh(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn relu_clips_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn linear_is_identity() {
        assert_eq!(Activation::Linear.apply(4.2), 4.2);
        assert_eq!(Activation::Linear.derivative_from_output(4.2), 1.0);
    }

    #[test]
    fn sigmoid_derivative_peaks_at_half() {
        let d_half = Activation::Sigmoid.derivative_from_output(0.5);
        assert!((d_half - 0.25).abs() < 1e-12);
        assert!(Activation::Sigmoid.derivative_from_output(0.99) < d_half);
    }

    proptest! {
        #[test]
        fn outputs_stay_in_range(x in -50.0f64..50.0) {
            for act in [Activation::Linear, Activation::Sigmoid,
                        Activation::SigmoidSymmetric, Activation::Relu] {
                let y = act.apply(x);
                let (lo, hi) = act.output_range();
                prop_assert!(y >= lo && y <= hi);
            }
        }

        #[test]
        fn sigmoid_is_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            prop_assume!(a < b);
            prop_assert!(Activation::Sigmoid.apply(a) < Activation::Sigmoid.apply(b));
        }
    }
}
